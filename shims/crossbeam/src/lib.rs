//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Provides [`channel`] with `bounded` / `unbounded` constructors and
//! `Sender` / `Receiver` handles matching the crossbeam-channel
//! signatures the amacl threaded runtime uses, implemented over
//! `std::sync::mpsc`, plus [`thread::scope`] scoped threads (matching
//! the crossbeam-utils signature where the spawn closure receives the
//! scope handle) implemented over `std::thread::scope`. The runtime's
//! channel usage is strictly multi-producer / single-consumer (senders
//! are cloned, each receiver lives on one thread), which `mpsc` covers
//! exactly; swapping the real crate back in requires no call-site
//! changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread as stdthread;

    pub use std::thread::Result;

    /// A scope for spawning borrowing threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to join one scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(stdthread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam (and unlike
        /// `std::thread::Scope::spawn`), the closure receives the
        /// scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame; all spawned threads are joined before `scope`
    /// returns. Always `Ok` in this shim (`std::thread::scope`
    /// propagates panics instead of collecting them), but the
    /// `Result` return matches crossbeam's signature so call sites
    /// keep their `.unwrap()`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a channel; clonable for multi-producer use.
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Backed by an unbounded `mpsc::Sender`.
        Unbounded(mpsc::Sender<T>),
        /// Backed by a rendezvous/bounded `mpsc::SyncSender`.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking if the channel is bounded and full.
        /// Errors only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(msg),
                Sender::Bounded(tx) => tx.send(msg),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterator over received messages, ending when senders are gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_multi_producer() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        tx.send(9).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 9]);
    }

    #[test]
    fn bounded_holds_capacity() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn scoped_threads_can_nest_via_the_handle() {
        let n = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
