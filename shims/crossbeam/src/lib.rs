//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Provides [`channel`] with `bounded` / `unbounded` constructors and
//! `Sender` / `Receiver` handles matching the crossbeam-channel
//! signatures the amacl threaded runtime uses, implemented over
//! `std::sync::mpsc`. The runtime's usage is strictly multi-producer /
//! single-consumer (senders are cloned, each receiver lives on one
//! thread), which `mpsc` covers exactly; swapping the real crate back
//! in requires no call-site changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a channel; clonable for multi-producer use.
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Backed by an unbounded `mpsc::Sender`.
        Unbounded(mpsc::Sender<T>),
        /// Backed by a rendezvous/bounded `mpsc::SyncSender`.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking if the channel is bounded and full.
        /// Errors only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(msg),
                Sender::Bounded(tx) => tx.send(msg),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterator over received messages, ending when senders are gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_multi_producer() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        tx.send(9).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 9]);
    }

    #[test]
    fn bounded_holds_capacity() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
