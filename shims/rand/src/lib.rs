//! Offline, API-compatible subset of the `rand` crate.
//!
//! The amacl workspace builds in environments with no registry access,
//! so this shim provides the exact surface the workspace uses — a
//! deterministic [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] — with the same
//! module layout as rand 0.8 so the real crate can be swapped back in
//! without touching call sites.
//!
//! The generator is `splitmix64` for seeding into `xoshiro256++` for
//! the stream: deterministic, high-quality for simulation workloads,
//! and stable across platforms, which is what the seeded schedulers and
//! topology builders need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed; equal seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range from which [`Rng::gen_range`] can draw a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`; `p` must be in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++),
    /// stand-in for rand's feature-gated `SmallRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
