//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Supports the surface the amacl experiment benches use —
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], and [`Bencher::iter`] — and reports a plain-text
//! min / median / mean line per benchmark instead of criterion's full
//! statistical machinery. Passing `--test` (as `cargo test --benches`
//! does) runs each benchmark body once for validation instead of
//! timing it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `n/64`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one wall-clock sample per
    /// call; in `--test` mode it runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // One warmup call so lazy setup doesn't pollute the first sample.
        black_box(routine());
        self.recorded.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }
}

fn report(group: &str, bench: &str, recorded: &mut [Duration]) {
    if recorded.is_empty() {
        println!("{group}/{bench}: ok (test mode)");
        return;
    }
    recorded.sort_unstable();
    let min = recorded[0];
    let median = recorded[recorded.len() / 2];
    let total: Duration = recorded.iter().sum();
    let mean = total / recorded.len() as u32;
    println!(
        "{group}/{bench}: min {min:?}, median {median:?}, mean {mean:?} ({} samples)",
        recorded.len()
    );
}

/// Top-level benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Honoured for API compatibility; CLI configuration is read in
    /// [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: 10,
            test_mode: self.test_mode,
            recorded: Vec::new(),
        };
        f(&mut b);
        report("bench", &id.name, &mut b.recorded);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            recorded: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.name, &mut b.recorded);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            recorded: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.name, &mut b.recorded);
        self
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Defines a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($bench_fn(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: false };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("n", 4), &4u32, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            g.finish();
        }
        // 3 samples + 1 warmup.
        assert_eq!(ran, 4);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u32;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }
}
