//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the surface the amacl test suites use — the
//! [`proptest!`] macro with `#![proptest_config(..)]`, range and tuple
//! strategies, [`strategy::Just`], [`arbitrary::any`],
//! [`collection::vec`], `prop_map` / `prop_flat_map`, [`prop_oneof!`],
//! and the `prop_assert*` macros — as a *sampling* property tester:
//! each test draws `cases` deterministic pseudo-random inputs (seeded
//! from the test's name, so runs are reproducible) and executes the
//! body. Failing cases panic with the sampled inputs in the message.
//!
//! Differences from real proptest, accepted for offline builds:
//! no shrinking, no failure persistence, and integer `any::<T>()`
//! draws from the full range uniformly rather than proptest's biased
//! edge-case distribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! The per-test driver: configuration and deterministic RNG.

    pub use rand::rngs::SmallRng as TestRng;
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::ProptestConfig`: only the
    /// `cases` knob is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim keeps that so
            // unconfigured blocks behave identically.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG for one property, seeded from its name so
    /// every run (and every machine) replays the same cases.
    pub fn rng_for(test_name: &str) -> TestRng {
        // FNV-1a over the name: stable, dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    //! Value-generation strategies (sampling only, no shrinking).

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples the strategy `f` builds
        /// from it — for dependent inputs.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives; the expansion of
    /// [`crate::prop_oneof!`].
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// A union over `alternatives`; must be non-empty.
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union(alternatives)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`]: a fixed size or range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition. Expands to `continue` on the per-case loop the
/// [`proptest!`] macro generates, so it must appear at the top level
/// of a property body (not inside a nested loop) — which matches how
/// real proptest code uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a property; panics with the formatted
/// message (and the condition text) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!($($fmt)*);
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice among several strategies producing the same value
/// type. Weighted arms are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its inputs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($param:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $param = $crate::strategy::Strategy::sample(&$strategy, &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = usize> {
        (0usize..50).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, x in 0u64..=5) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(x <= 5);
        }

        #[test]
        fn oneof_map_and_vec_compose(
            v in crate::collection::vec(0u64..4, 2..=5),
            e in small_even(),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            b in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 2);
            let _ = b;
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (n, v) in (1usize..6).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u64..10, n))
            }),
        ) {
            prop_assert_eq!(v.len(), n);
        }
    }
}
