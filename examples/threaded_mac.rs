//! The deployability claim: the same algorithm code on a real
//! concurrent MAC layer.
//!
//! Runs Two-Phase Consensus and wPAXOS — the identical `Process`
//! implementations the discrete-event simulator executes — on the
//! threaded channel-based MAC runtime, with OS-scheduler timing and
//! injected jitter instead of a simulated clock.
//!
//! Run with: `cargo run --example threaded_mac`

use std::time::Duration;

use amacl::algorithms::two_phase::TwoPhase;
use amacl::algorithms::wpaxos::wpaxos_node;
use amacl::model::prelude::*;
use amacl::runtime::{MacRuntime, RuntimeConfig};

fn main() {
    let cfg = RuntimeConfig {
        max_jitter: Duration::from_micros(400),
        seed: 7,
        timeout: Duration::from_secs(20),
        ..RuntimeConfig::default()
    };

    println!("Two-Phase Consensus on the threaded MAC (clique of 8):");
    let rt = MacRuntime::new(Topology::clique(8), cfg.clone());
    let report = rt.run(|s| TwoPhase::new((s.index() % 2) as Value));
    assert!(report.all_decided, "undecided: {:?}", report.decisions);
    let values = report.decided_values();
    assert_eq!(values.len(), 1, "agreement violated: {values:?}");
    println!(
        "  all 8 threads agreed on {} in {:?} ({} broadcasts, {} deliveries)\n",
        values[0], report.elapsed, report.broadcasts, report.deliveries
    );

    println!("wPAXOS on the threaded MAC (4x3 grid):");
    let topo = Topology::grid(4, 3);
    let n = topo.len();
    let rt = MacRuntime::new(topo, cfg);
    let report = rt.run(|s| wpaxos_node((s.index() % 2) as Value, n));
    assert!(report.all_decided, "undecided: {:?}", report.decisions);
    let values = report.decided_values();
    assert_eq!(values.len(), 1, "agreement violated: {values:?}");
    let slowest = report
        .decision_latency
        .iter()
        .flatten()
        .max()
        .expect("decisions");
    println!(
        "  all {n} threads agreed on {} — slowest decision after {:?}",
        values[0], slowest
    );
    println!("\nSame structs, same trait impls as the simulator — only the MAC changed.");
}
