//! Multi-valued consensus without knowing who is out there.
//!
//! Scenario: an ad-hoc swarm of sensors must agree on a full 16-bit
//! configuration word (say, a radio channel map). Nobody knows how
//! many sensors deployed successfully, so wPAXOS — which needs `n`
//! for its majorities — is off the table. Bitwise composition of
//! Two-Phase Consensus closes the gap: `B` sequential binary
//! agreements, `O(B * F_ack)` total, still with zero knowledge of `n`
//! or the participants.
//!
//! The paper calls efficient multi-valued generalization "non-trivial
//! and open" (Section 2); this example shows the baseline the open
//! question is measured against.
//!
//! Run with: `cargo run --example multivalued_vote`

use amacl::algorithms::multivalued::BitwiseTwoPhase;
use amacl::algorithms::verify::check_consensus;
use amacl::model::prelude::*;

fn main() {
    let bits = 16;
    let f_ack = 8;
    println!("Bitwise Two-Phase: {bits}-bit values, F_ack = {f_ack}, unknown n\n");
    println!(
        "{:>6} {:>22} {:>14} {:>14} {:>12}",
        "n", "proposals", "agreed", "latest(ticks)", "/(B*F_ack)"
    );
    for n in [2usize, 5, 9, 17] {
        // Conflicting proposals: alternating complementary bit patterns.
        let inputs: Vec<Value> = (0..n)
            .map(|i| match i % 3 {
                0 => 0xA5A5,
                1 => 0x5A5A,
                _ => 0xFF00,
            })
            .collect();
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| {
            BitwiseTwoPhase::new(iv[s.index()], bits)
        })
        .scheduler(RandomScheduler::new(f_ack, n as u64))
        .message_id_budget(1)
        .build();
        let report = sim.run();
        let check = check_consensus(&inputs, &report, &[]);
        check.assert_ok();
        let agreed = check.decided.expect("agreed");
        assert!(
            inputs.contains(&agreed),
            "validity: agreed value was proposed"
        );
        let ticks = report.max_decision_time().expect("decided").ticks();
        println!(
            "{:>6} {:>22} {:>#14x} {:>14} {:>12.2}",
            n,
            format!("{:#x}/{:#x}/{:#x}", 0xA5A5, 0x5A5A, 0xFF00),
            agreed,
            ticks,
            ticks as f64 / (bits as u64 * f_ack) as f64,
        );
    }
    println!();
    println!("The agreed word is always one of the proposals (prefix-constrained");
    println!("candidate adoption — naive per-bit voting could assemble a value");
    println!("nobody proposed), and no node ever learned n.");
}
