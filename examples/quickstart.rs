//! Quickstart: Two-Phase Consensus on a single-hop network.
//!
//! Runs the paper's Algorithm 1 on cliques of growing size under an
//! adversarial random scheduler and shows the headline property of
//! Theorem 4.1: decision time is `O(F_ack)` — flat in `n` — and the
//! algorithm never needed to know `n` at all.
//!
//! Run with: `cargo run --example quickstart`

use amacl::algorithms::harness::{alternating_inputs, run_two_phase};
use amacl::model::prelude::*;

fn main() {
    let f_ack = 16;
    println!("Two-Phase Consensus (Algorithm 1), F_ack = {f_ack} ticks");
    println!(
        "{:>6} {:>10} {:>14} {:>12}",
        "n", "decided", "latest (ticks)", "x F_ack"
    );
    for n in [2usize, 4, 8, 16, 32, 64, 128] {
        let inputs = alternating_inputs(n);
        let run = run_two_phase(&inputs, RandomScheduler::new(f_ack, n as u64));
        run.check.assert_ok();
        println!(
            "{n:>6} {:>10} {:>14} {:>12.2}",
            run.check.decided.expect("agreed value"),
            run.decision_ticks(),
            run.decision_over_f_ack(f_ack),
        );
    }
    println!();
    println!("Note: no node was told n — the constructor takes only the input");
    println!("value. In the plain asynchronous broadcast model this is");
    println!("impossible (Abboud et al.); the MAC layer ack is what makes it work.");
}
