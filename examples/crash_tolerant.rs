//! Circumventing Theorem 3.2: deterministic crash tolerance from a
//! failure detector.
//!
//! The paper proves deterministic consensus impossible with one crash
//! and suggests (Section 5) that failure detectors — the classical
//! fix — might restore it. The abstract MAC layer's `F_ack` bound
//! makes an eventually-perfect detector *implementable* (heartbeats +
//! doubling timeouts), and Paxos guided by it tolerates any minority
//! of crashes, including the mid-broadcast partial deliveries that
//! drive the impossibility proof.
//!
//! This example crashes the current leader mid-broadcast — the worst
//! moment — at each crash count from 0 up to the minority limit and
//! shows survivors still reaching consensus, with detector
//! diagnostics.
//!
//! Run with: `cargo run --example crash_tolerant`

use amacl::algorithms::extensions::fd_paxos::FdPaxos;
use amacl::algorithms::verify::check_consensus;
use amacl::model::prelude::*;

fn main() {
    let n = 7;
    println!("FD-guided Paxos on a clique of {n}: crashing leaders mid-broadcast\n");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>18}",
        "crashes", "survivors", "agreed value", "latest (ticks)", "false suspicions"
    );
    for crashes in 0..=2 {
        let inputs: Vec<Value> = (0..n).map(|i| (10 + i) as Value).collect();
        let iv = inputs.clone();
        // Ids equal slot indices here, so slots 0..crashes are exactly
        // the successive leaders the detector will elect — each dies
        // partway through delivering a broadcast.
        let specs: Vec<CrashSpec> = (0..crashes)
            .map(|k| CrashSpec::MidBroadcast {
                slot: Slot(k),
                nth_broadcast: 1,
                delivered: 2,
            })
            .collect();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| FdPaxos::new(iv[s.index()], n, 4))
            .scheduler(RandomScheduler::new(5, 7 + crashes as u64))
            .crashes(CrashPlan::new(specs))
            .message_id_budget(3)
            .max_time(Time(500_000))
            .build();
        let report = sim.run();
        let crashed: Vec<bool> = (0..n).map(|i| i < crashes).collect();
        let check = check_consensus(&inputs, &report, &crashed);
        check.assert_ok();
        let worst_fs = (0..n)
            .map(|i| sim.process(Slot(i)).detector().false_suspicions())
            .max()
            .unwrap();
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>18}",
            crashes,
            n - crashes,
            check.decided.expect("agreed"),
            report.max_decision_time().expect("decided").ticks(),
            worst_fs,
        );
    }
    println!();
    println!("Two-Phase Consensus would strand survivors under any of these crashes");
    println!("(see `cargo run --example lower_bounds_tour`); the detector is exactly");
    println!("the extra power Theorem 3.2 shows is needed.");
}
