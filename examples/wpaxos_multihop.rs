//! wPAXOS on multihop topologies.
//!
//! Runs the paper's Section 4.2 algorithm on a line, a grid, and a
//! random connected graph, printing the stabilized leader, the
//! decision times against the `O(D * F_ack)` bound, and the
//! instrumentation the analysis cares about (proposal counts, message
//! id budget).
//!
//! Run with: `cargo run --example wpaxos_multihop`

use amacl::algorithms::verify::check_consensus;
use amacl::algorithms::wpaxos::wpaxos_node;
use amacl::model::prelude::*;

fn run_one(name: &str, topo: Topology, f_ack: u64, seed: u64) {
    let n = topo.len();
    let d = topo.diameter() as u64;
    let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
    let iv = inputs.clone();
    let mut sim = SimBuilder::new(topo, |s| wpaxos_node(iv[s.index()], n))
        .scheduler(RandomScheduler::new(f_ack, seed))
        .message_id_budget(10)
        .build();
    let report = sim.run();
    let check = check_consensus(&inputs, &report, &[]);
    check.assert_ok();

    let leader = sim.process(Slot(0)).omega().expect("started");
    let proposals: u64 = (0..n)
        .map(|i| sim.process(Slot(i)).proposals_started())
        .sum();
    let latest = report.max_decision_time().expect("decided").ticks();
    println!(
        "{name:<22} n={n:<4} D={d:<3} decided={} latest={latest:>6} ticks  ({:.1} x D*F_ack)  leader={leader}  proposals={proposals}  max_msg_ids={}",
        check.decided.expect("agreed"),
        latest as f64 / (d.max(1) * f_ack) as f64,
        sim.metrics().max_message_ids,
    );
}

fn main() {
    let f_ack = 8;
    println!("wPAXOS (Section 4.2), random adversarial scheduler, F_ack = {f_ack}\n");
    run_one("line(16)", Topology::line(16), f_ack, 1);
    run_one("grid(6x4)", Topology::grid(6, 4), f_ack, 2);
    run_one("ring(20)", Topology::ring(20), f_ack, 3);
    run_one("star(24)", Topology::star(24), f_ack, 4);
    run_one(
        "random(24, p=0.15)",
        Topology::random_connected(24, 0.15, 7),
        f_ack,
        5,
    );
    run_one("torus(5x5)", Topology::torus(5, 5), f_ack, 6);
    println!();
    println!("Decision time scales with D * F_ack (Theorem 4.6), and every");
    println!("message stayed within the O(1) id budget despite aggregation.");
}
