//! Exhaustive model checking: covering *every* schedule.
//!
//! The paper's correctness claims quantify over all message schedulers.
//! This example uses `amacl-checker` to enumerate that quantifier for
//! small instances:
//!
//! 1. verifies Two-Phase Consensus over its entire scheduler space on
//!    a 3-clique (a machine-checked Theorem 4.1 for n = 3);
//! 2. lets the explorer *rediscover* the pseudocode discrepancy in the
//!    paper's Algorithm 1 line 23, printing the violating schedule;
//! 3. gives the explored scheduler a single crash and watches it find
//!    the execution Theorem 3.2 promises must exist.
//!
//! Run with: `cargo run --release --example exhaustive_check`

use amacl::algorithms::two_phase::TwoPhase;
use amacl::checker::{ExploreConfig, Explorer, ViolationKind};
use amacl::model::prelude::*;

fn main() {
    // 1. Full verification, no crashes.
    let inputs = vec![0, 1, 1];
    let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
    let explorer = Explorer::new(Topology::clique(3), procs, inputs.clone(), 0);
    let out = explorer.run(ExploreConfig::default());
    println!("Two-Phase on clique(3), inputs {inputs:?}, every schedule:");
    println!(
        "  {} distinct states, {} terminal, deepest schedule {} moves",
        out.states, out.terminal_states, out.max_depth_reached
    );
    out.assert_verified();
    println!("  verified: agreement, validity, and termination hold on ALL schedules\n");

    // 2. The literal line-23 pseudocode, found guilty automatically.
    let procs = vec![
        TwoPhase::with_literal_r2_check(0),
        TwoPhase::with_literal_r2_check(1),
    ];
    let explorer = Explorer::new(Topology::clique(2), procs, vec![0, 1], 0);
    let out = explorer.run(ExploreConfig::default());
    let v = &out.violations[0];
    assert_eq!(v.kind, ViolationKind::Agreement);
    println!("Literal R_2-only check (the paper's line 23 as written):");
    println!("  violation: {:?} after {} moves", v.kind, v.schedule.len());
    println!("  schedule: {:?}", v.schedule);
    let bad = explorer.replay(&v.schedule);
    println!("  replayed decisions: {:?}\n", bad.decisions());

    // 3. One crash is enough to break any deterministic algorithm
    //    (Theorem 3.2); the explorer exhibits the failure.
    let inputs = vec![0, 1, 1];
    let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
    let explorer = Explorer::new(Topology::clique(3), procs, inputs, 1);
    let out = explorer.run(ExploreConfig::default());
    let v = &out.violations[0];
    println!("Same algorithm, scheduler allowed one crash:");
    println!("  violation: {:?} after {} moves", v.kind, v.schedule.len());
    println!("  schedule: {:?}", v.schedule);
    println!("  (Theorem 3.2 says some such schedule must exist; here it is.)");
}
