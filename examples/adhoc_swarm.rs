//! An ad hoc sensor swarm reaching agreement.
//!
//! The scenario the paper's introduction motivates: devices dropped
//! into the world with no knowledge of the topology, communicating
//! through a vendor MAC layer with unpredictable timing. Here a swarm
//! of sensors must agree on a binary actuation decision (e.g. "raise
//! the alarm or not") across many deployments: random connected
//! topologies, random schedulers, and randomly-assigned ids, with a
//! crashed deployment thrown in for the randomized extension.
//!
//! Run with: `cargo run --example adhoc_swarm`

use amacl::algorithms::extensions::ben_or::BenOr;
use amacl::algorithms::harness::run_wpaxos;
use amacl::algorithms::verify::check_consensus;
use amacl::model::prelude::*;

fn main() {
    println!("Ad hoc swarm: wPAXOS across 20 random deployments\n");
    let f_ack = 6;
    let mut worst = 0u64;
    for deployment in 0..20u64 {
        let n = 8 + (deployment as usize % 17);
        let topo = Topology::random_connected(n, 0.12, deployment);
        let d = topo.diameter() as u64;
        let inputs: Vec<Value> = (0..n)
            .map(|i| ((i as u64 + deployment) % 2) as Value)
            .collect();
        let run = run_wpaxos(
            topo,
            &inputs,
            RandomScheduler::new(f_ack, deployment * 31 + 7),
        );
        run.check.assert_ok();
        let t = run.decision_ticks();
        worst = worst.max(t);
        println!(
            "deployment {deployment:>2}: n={n:<3} D={d:<2} agreed on {} in {t:>5} ticks",
            run.check.decided.expect("agreed"),
        );
    }
    println!("\nworst-case decision time: {worst} ticks; every deployment agreed.\n");

    println!("One deployment loses a node mid-broadcast (randomized Ben-Or):");
    let n = 7;
    let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
    let iv = inputs.clone();
    let mut sim = SimBuilder::new(Topology::clique(n), |s| BenOr::new(iv[s.index()], n))
        .scheduler(RandomScheduler::new(f_ack, 99))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(3),
            nth_broadcast: 1,
            delivered: 2,
        }]))
        .seed(99)
        .build();
    let report = sim.run();
    let mut crashed = vec![false; n];
    crashed[3] = true;
    let check = check_consensus(&inputs, &report, &crashed);
    check.assert_ok();
    println!(
        "  node 3 crashed after delivering to 2 of 6 neighbors; survivors agreed on {} anyway",
        check.decided.expect("agreed"),
    );
    println!("  (deterministic algorithms cannot do this — Theorem 3.2)");
}
