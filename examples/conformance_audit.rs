//! Auditing an execution against the model contract.
//!
//! Runs wPAXOS with tracing enabled, then replays the trace through the
//! independent conformance checker, which verifies every abstract MAC
//! layer guarantee actually held: exactly-once delivery to each
//! neighbor, acks only after all live neighbors received, `F_ack`
//! latency, crash semantics. Then it breaks a trace on purpose to show
//! the checker catching it.
//!
//! Run with: `cargo run --example conformance_audit`

use amacl::algorithms::wpaxos::wpaxos_node;
use amacl::model::prelude::*;
use amacl::model::sim::conformance::check_trace;
use amacl::model::sim::trace::{Trace, TraceEvent};

fn main() {
    let n = 12;
    let f_ack = 5;
    let topo = Topology::random_connected(n, 0.2, 11);
    println!(
        "Running wPAXOS on a random graph (n={n}, D={}), tracing every event...",
        topo.diameter()
    );
    let mut sim = SimBuilder::new(topo, |s| wpaxos_node((s.index() % 2) as Value, n))
        .scheduler(RandomScheduler::new(f_ack, 42))
        .trace(true)
        .build();
    let report = sim.run();
    assert!(report.all_decided());

    let audit = check_trace(sim.topology(), sim.trace(), Some(f_ack), None);
    println!(
        "audit: {} broadcasts, {} deliveries, {} acks checked — violations: {}",
        audit.broadcasts,
        audit.deliveries,
        audit.acks,
        audit.violations.len()
    );
    audit.assert_ok();
    println!("every model guarantee held.\n");

    // Now sabotage a copy of the story: claim an ack landed without one
    // of the deliveries.
    println!("Sabotage check — an ack with a delivery missing:");
    let mut forged = Trace::new(true);
    forged.push(TraceEvent::Broadcast {
        time: Time(0),
        slot: Slot(0),
        ids: 0,
    });
    forged.push(TraceEvent::Deliver {
        time: Time(1),
        from: Slot(0),
        to: Slot(1),
        unreliable: false,
    });
    forged.push(TraceEvent::Ack {
        time: Time(2),
        slot: Slot(0),
    });
    let line = Topology::line(3); // slot 0 is an endpoint: 1 neighbor...
    let star = Topology::star(3); // ...but on a star, slot 0 has two.
    let clean = check_trace(&line, &forged, Some(2), None);
    let caught = check_trace(&star, &forged, Some(2), None);
    println!("  judged against line(3):  ok = {}", clean.ok());
    println!(
        "  judged against star(3):  ok = {} -> {}",
        caught.ok(),
        caught.violations.first().map(String::as_str).unwrap_or("")
    );
    assert!(clean.ok() && !caught.ok());
}
