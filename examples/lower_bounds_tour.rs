//! A guided tour of the paper's four lower bounds, executed.
//!
//! Run with: `cargo run --example lower_bounds_tour`

use amacl::algorithms::two_phase::TwoPhase;
use amacl::lowerbounds::anonymity::run_anonymity_demo;
use amacl::lowerbounds::bivalence::{lemma_3_1_extension, Explorer, Valency};
use amacl::lowerbounds::crash_demo::run_crash_demo;
use amacl::lowerbounds::step::StepMachine;
use amacl::lowerbounds::time_lb::{earliest_decision, partition_violation, Algorithm};
use amacl::lowerbounds::unknown_n::run_unknown_n_demo;

fn main() {
    println!("== Theorem 3.2: consensus is impossible with one crash failure ==\n");
    let machine = StepMachine::new(vec![TwoPhase::new(0), TwoPhase::new(1)]);
    let mut explorer = Explorer::new(1, 100);
    let valency = explorer.classify(&machine);
    println!("  initial config (0,1) under valid-step schedules, 1 crash allowed: {valency:?}");
    assert_eq!(valency, Valency::Bivalent);
    let critical = (0..2).find(|&u| lemma_3_1_extension(&machine, u, 1, 8, 80).is_none());
    println!(
        "  critical configuration found for node {:?} — by Lemma 3.1's contrapositive,",
        critical.expect("exists")
    );
    println!("  Two-Phase Consensus cannot tolerate a crash. Concretely:");
    let demo = run_crash_demo();
    println!(
        "  with a mid-broadcast crash: termination = {}, quiescent = {} (node 1 waits forever)",
        demo.with_crash.termination, demo.with_crash_quiescent
    );
    println!(
        "  same schedule, no crash:    consensus ok = {}\n",
        demo.without_crash.ok()
    );

    println!("== Theorem 3.3: consensus is impossible without unique ids ==\n");
    let out = run_anonymity_demo(8, 24);
    println!(
        "  Networks A and B: n' = {}, diameter = {} (Claim 3.4 verified by construction tests)",
        out.n_prime, out.diameter
    );
    println!(
        "  alpha_B^0 decided {:?}, alpha_B^1 decided {:?}, both by step t = {}",
        out.alpha_b[0].decided, out.alpha_b[1].decided, out.t
    );
    println!(
        "  Lemma 3.6: {} state comparisons across S_u copies, all equal: {}",
        out.states_compared, out.indistinguishable
    );
    println!(
        "  alpha_A (same size, same diameter, q silenced): agreement = {} <- the impossibility\n",
        out.alpha_a.agreement
    );

    println!("== Theorem 3.9: consensus is impossible without knowledge of n ==\n");
    let out = run_unknown_n_demo(4);
    println!(
        "  K_4: n = {} (never told to the algorithm), line-execution horizon t = {}",
        out.n, out.t
    );
    println!(
        "  copy states identical to standalone-line states for t steps: {} ({} comparisons)",
        out.indistinguishable, out.states_compared
    );
    println!(
        "  copy 1 decided {:?}, copy 2 decided {:?}: agreement = {}\n",
        out.copy_decisions[0], out.copy_decisions[1], out.beta_d.agreement
    );

    println!("== Theorem 3.10: consensus needs floor(D/2) * F_ack time ==\n");
    for (d, f_ack) in [(8usize, 4u64), (16, 2)] {
        let m = earliest_decision(Algorithm::Wpaxos, d, f_ack);
        println!(
            "  wPAXOS, line D={d}, F_ack={f_ack}: earliest decision {} >= bound {} : {}",
            m.earliest,
            m.bound,
            m.respects_bound()
        );
    }
    let (check, earliest) = partition_violation(12, 2, 2);
    println!(
        "  an 'eager' algorithm deciding at {} (< bound {}): agreement = {} <- partitioned",
        earliest,
        (12u64 / 2) * 2,
        check.agreement
    );
}
