//! Simulator ↔ runtime conformance cross-checking through the shared
//! [`MacLayer`] trait.
//!
//! The two execution backends — the discrete-event engine
//! ([`SimBackend`](amacl_model::mac::SimBackend)) and the threaded
//! runtime (`MacRuntime` in `amacl-runtime`) — implement one trait, so
//! one algorithm can be run on both and the outcomes diffed. This
//! module does exactly that and reports the result the useful way:
//! not "the backends mismatched" but *which slot diverged first and
//! what each backend saw there* (via
//! [`compare_reports`]).
//!
//! What must match depends on the instance:
//!
//! * **Always**: each backend individually satisfies agreement (at
//!   most one decided value) and completes (every expected node
//!   decides).
//! * **When the algorithm's decision is input-determined** (uniform
//!   inputs, or min/max-style deterministic rules): the two backends'
//!   per-slot decisions must be identical — request this with
//!   [`CrossCheckConfig::expect_identical_decisions`].
//!
//! For mixed-input executions of adversarially-scheduled algorithms,
//! identical decisions are *not* required by the model (both 0 and 1
//! can be correct outcomes of two-phase consensus on mixed inputs);
//! demanding them would reject correct backends.

use amacl_model::ids::Slot;
use amacl_model::mac::{MacLayer, MacReport};
use amacl_model::proc::{Process, Value};
use amacl_model::sim::conformance::{compare_reports, Divergence};

/// What the cross-check should require beyond per-backend agreement
/// and completion.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrossCheckConfig {
    /// Require the two backends' per-slot decisions to be identical
    /// (only sound when the algorithm's outcome is input-determined).
    pub expect_identical_decisions: bool,
    /// When set, every decided value must appear in this input vector
    /// (validity).
    pub check_validity: bool,
}

/// Outcome of one cross-check: both reports, the first divergence (if
/// any), and the per-backend property verdicts.
#[derive(Clone, Debug)]
pub struct CrossCheckOutcome {
    /// The first backend's report.
    pub left: MacReport,
    /// The second backend's report.
    pub right: MacReport,
    /// First diverging slot with both backends' views (`None` when
    /// the reports coincide).
    pub divergence: Option<Divergence>,
    /// Human-readable failures, empty when the check passed.
    pub failures: Vec<String>,
}

impl CrossCheckOutcome {
    /// `true` when every required property held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Panics with the failure list, for use in tests.
    pub fn assert_ok(&self) {
        assert!(
            self.ok(),
            "cross-check failed ({} issues): {}",
            self.failures.len(),
            self.failures.join("; ")
        );
    }
}

/// Runs the same processes (built per-backend by `init`) on two
/// [`MacLayer`] backends and checks the outcomes against each other.
///
/// `inputs` is consulted only when
/// [`CrossCheckConfig::check_validity`] is set.
pub fn cross_check<P: Process>(
    left: &mut dyn MacLayer<P>,
    right: &mut dyn MacLayer<P>,
    init: &mut dyn FnMut(Slot) -> P,
    inputs: &[Value],
    cfg: CrossCheckConfig,
) -> CrossCheckOutcome {
    let left_report = left.execute(init);
    let right_report = right.execute(init);
    let divergence = compare_reports(&left_report, &right_report);

    let mut failures = Vec::new();
    for report in [&left_report, &right_report] {
        if !report.all_decided {
            failures.push(format!(
                "{}: termination failed, decisions {:?}",
                report.backend, report.decisions
            ));
        }
        if report.decided_values().len() > 1 {
            failures.push(format!(
                "{}: agreement violated, decided {:?}",
                report.backend,
                report.decided_values()
            ));
        }
        if cfg.check_validity {
            for v in report.decided_values() {
                if !inputs.contains(&v) {
                    failures.push(format!(
                        "{}: validity violated, decided {v} not among inputs {inputs:?}",
                        report.backend
                    ));
                }
            }
        }
    }
    if cfg.expect_identical_decisions {
        if let Some(d) = &divergence {
            failures.push(d.to_string());
        }
    }

    CrossCheckOutcome {
        left: left_report,
        right: right_report,
        divergence,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amacl_core::two_phase::TwoPhase;
    use amacl_model::mac::{BackendSched, SimBackend};
    use amacl_model::topo::Topology;
    use amacl_runtime::{MacRuntime, RuntimeConfig};
    use std::time::Duration;

    fn runtime(n: usize, seed: u64) -> MacRuntime {
        MacRuntime::new(
            Topology::clique(n),
            RuntimeConfig {
                max_jitter: Duration::from_micros(200),
                seed,
                timeout: Duration::from_secs(10),
                ..RuntimeConfig::default()
            },
        )
    }

    #[test]
    fn uniform_two_phase_matches_exactly_across_backends() {
        let n = 5;
        let mut sim = SimBackend::new(
            Topology::clique(n),
            BackendSched::Random { f_ack: 4, seed: 3 },
        );
        let mut rt = runtime(n, 3);
        let outcome = cross_check(
            &mut sim,
            &mut rt,
            &mut |_s| TwoPhase::new(1),
            &[1; 5],
            CrossCheckConfig {
                expect_identical_decisions: true,
                check_validity: true,
            },
        );
        outcome.assert_ok();
        assert_eq!(outcome.divergence, None);
        assert_eq!(outcome.left.decided_values(), vec![1]);
        assert_eq!(outcome.right.decided_values(), vec![1]);
    }

    #[test]
    fn mixed_two_phase_agrees_within_each_backend() {
        let n = 6;
        let mut sim = SimBackend::new(
            Topology::clique(n),
            BackendSched::Random { f_ack: 4, seed: 11 },
        );
        let mut rt = runtime(n, 11);
        let inputs: Vec<Value> = (0..n as u64).map(|i| i % 2).collect();
        let iv = inputs.clone();
        let outcome = cross_check(
            &mut sim,
            &mut rt,
            &mut |s| TwoPhase::new(iv[s.index()]),
            &inputs,
            CrossCheckConfig {
                expect_identical_decisions: false,
                check_validity: true,
            },
        );
        outcome.assert_ok();
        assert!(outcome.left.agreement_value().is_some());
        assert!(outcome.right.agreement_value().is_some());
    }

    /// Node 0 floods a seeded random draw; everyone (including node 0)
    /// decides whatever node 0 drew. Agreement always holds within one
    /// backend, but the decided value is a function of the backend's
    /// per-node seed — so two differently-seeded engines diverge.
    struct FloodDraw {
        leader: bool,
    }

    #[derive(Clone, Debug)]
    struct Drawn(Value);
    impl amacl_model::msg::Payload for Drawn {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for FloodDraw {
        type Msg = Drawn;
        fn on_start(&mut self, ctx: &mut amacl_model::proc::Context<'_, Drawn>) {
            if self.leader {
                use rand::Rng;
                let v = ctx.rng().gen_range(0..1_000_000u64);
                ctx.broadcast(Drawn(v));
                ctx.decide(v);
            }
        }
        fn on_receive(&mut self, msg: Drawn, ctx: &mut amacl_model::proc::Context<'_, Drawn>) {
            ctx.decide(msg.0);
        }
        fn on_ack(&mut self, _ctx: &mut amacl_model::proc::Context<'_, Drawn>) {}
    }

    #[test]
    fn divergence_is_reported_with_both_views() {
        let n = 4;
        let mut a = SimBackend::new(
            Topology::clique(n),
            BackendSched::Random { f_ack: 4, seed: 0 },
        )
        .seed(1);
        let mut b = SimBackend::new(
            Topology::clique(n),
            BackendSched::Random { f_ack: 4, seed: 0 },
        )
        .seed(2);
        let outcome = cross_check(
            &mut a,
            &mut b,
            &mut |s| FloodDraw { leader: s.0 == 0 },
            &[],
            CrossCheckConfig {
                expect_identical_decisions: true,
                check_validity: false,
            },
        );
        // Each backend agrees internally...
        assert!(outcome.left.agreement_value().is_some());
        assert!(outcome.right.agreement_value().is_some());
        // ...but the values differ, and the divergence names the slot
        // and both views.
        let d = outcome.divergence.as_ref().expect("seeds 1 and 2 diverge");
        assert!(!outcome.ok());
        assert!(d.left_view.starts_with("decided"), "{d}");
        assert!(d.right_view.starts_with("decided"), "{d}");
        assert!(outcome.failures.iter().any(|f| f.contains("divergence")));
    }
}
