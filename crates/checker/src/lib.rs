//! # `amacl-checker`: exhaustive model checking for the abstract MAC layer
//!
//! The paper's guarantees quantify over *every* message scheduler: "the
//! scheduler" may deliver the in-flight messages in any order and
//! acknowledge completed broadcasts at any point. Randomized and
//! scripted schedulers (in [`amacl_model`]) sample that space; this
//! crate *enumerates* it. For small networks, [`Explorer`] walks every
//! reachable execution of a [`Process`](amacl_model::proc::Process)
//! implementation — every delivery interleaving, every ack placement,
//! and optionally every crash placement up to a budget — and checks
//! the consensus properties in every state it visits:
//!
//! * **agreement** and **validity** are checked in *every* reachable
//!   state (safety must never be violated, even transiently);
//! * **termination** is checked in every *terminal* state (a state
//!   with no enabled delivery or ack is one the scheduler can make
//!   permanent, so an undecided live node there is a genuine liveness
//!   failure — the scheduler has run out of fairness obligations).
//!
//! A clean exhaustive run is a machine-checked proof of the algorithm's
//! correctness *for that network and those inputs* — stronger than any
//! number of randomized trials. A failure comes with the exact
//! scheduler choice sequence that produced it, replayable through
//! [`ExploreMachine`].
//!
//! The state space is tamed by memoizing global-state fingerprints
//! (different interleavings frequently converge to the same state), a
//! state-count cap, and a depth cap; truncated runs are reported as
//! such rather than silently passing.
//!
//! This complements the bivalence explorer in `amacl-lowerbounds`:
//! that tool searches for the *existence* of adversarial extensions
//! (the FLP argument); this one verifies the *absence* of bad states.
//!
//! For instances too large to cover, [`fuzz`] runs random walks over
//! the same unrestricted-adversary branching structure — strictly more
//! adversarial than the delay-based `RandomScheduler` (which cannot
//! starve a node indefinitely or decouple order from time), while
//! scaling far past the exhaustive walk.
//!
//! Orthogonally, [`crosscheck`] validates the *executors* against each
//! other: the same algorithm runs on the discrete-event engine and the
//! threaded runtime through the shared
//! [`MacLayer`](amacl_model::mac::MacLayer) trait, and any mismatch is
//! reported as the first diverging slot with both backends' views.
//!
//! [`explore_mac`] is the next generation of the exhaustive walk: it
//! drives the *real* [`BcastLedger`](amacl_model::mac::BcastLedger)
//! (the bookkeeping both backends share) instead of a re-implemented
//! branching machine, applies dynamic partial-order reduction so
//! commuting deliveries are not re-explored, and lowers every
//! counterexample into a [`Scenario`] that joins the sweep catalogue —
//! closing the loop from search to regression suite.
//!
//! ## Scope
//!
//! The explorer treats executions as untimed event sequences — all
//! callbacks observe clock value zero — which merges states that
//! differ only in timing and matches the paper's safety arguments
//! (they never appeal to real time). Algorithms whose *logic* reads
//! the clock (e.g. failure-detector timeouts) should be checked with
//! randomized schedulers instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crosscheck;
pub mod explore;
pub mod explore_mac;
pub mod fuzz;
pub mod machine;
pub mod scenario;
pub mod workload;

pub use crosscheck::{cross_check, CrossCheckConfig, CrossCheckOutcome};
pub use explore::{ExploreConfig, ExploreOutcome, Explorer, SearchOrder, Violation, ViolationKind};
pub use explore_mac::{
    LedgerMutation, MacExploreConfig, MacExploreDescriptor, MacExploreOutcome, MacExplorer,
    MacMachine, MacViolation, Reduction,
};
pub use fuzz::{FuzzConfig, FuzzOutcome};
pub use machine::{Choice, ExploreMachine};
pub use scenario::{
    sweep_scenario, Scenario, ScenarioAlgo, ScenarioInputs, ScenarioSched, ScenarioTopo,
    SweepOutcome, SweepRow,
};
pub use workload::{
    render_load_rows, run_load, sweep_load, ArrivalKind, LatencyHistogram, LoadRun, LoadScenario,
    LoadSweepRow, WorkloadSpec,
};
