//! DPOR model checking on the `MacLayer` seam, with counterexamples
//! that lower into regression scenarios.
//!
//! The [`Explorer`](crate::explore::Explorer) enumerates schedules of
//! a hand-rolled branching machine; this module instead drives the
//! **real** [`BcastLedger`] — the delivery/ack/crash bookkeeping both
//! execution backends share — so exhaustive interleaving search
//! exercises the exact semantic object production code runs on. Three
//! things are new relative to [`crate::explore`]:
//!
//! 1. **Partial-order reduction.** [`MacExplorer`] implements a
//!    conservative Flanagan–Godefroid DPOR: *sleep sets* prune
//!    re-exploration of commuting choices within a subtree, and
//!    *backtrack (persistent) sets* — grown by race analysis against
//!    the current stack — ensure only non-commuting alternatives fork
//!    new branches. [`Reduction::Naive`] keeps the old
//!    DFS-with-state-dedup strategy for comparison; a regression test
//!    asserts DPOR expands measurably fewer states on a config with
//!    real concurrency.
//! 2. **Seeded ledger bugs.** [`LedgerMutation`] plants two historical
//!    bug classes behind the seam — acks that fire before every
//!    delivery lands ([`LedgerMutation::AckEarly`]) and crashes that
//!    fail to release the obligations awaiting the dead node
//!    ([`LedgerMutation::DropReleases`]). The explorer must find both
//!    (mutation testing for the checker itself).
//! 3. **Counterexamples become scenarios.** Every [`MacViolation`]
//!    carries its full schedule; [`MacExploreDescriptor::lower`]
//!    converts a schedule into a [`ScriptedScheduler`]-plus-crash-plan
//!    [`Scenario`] descriptor, so each counterexample joins the
//!    `amacl sweep` catalogue and runs on *both* backends, every queue
//!    core, and every shard count from then on.
//!
//! # Reduction soundness
//!
//! The independence relation is [`MacChoice::independent`]:
//! deliveries to distinct receivers commute, acks of distinct nodes
//! commute, a delivery and an ack commute when the acked node is
//! neither endpoint, crashes commute with nothing. Each case is a
//! state-commutation argument over the ledger tables plus per-node
//! process state (disjoint footprints), and each holds *under the
//! mutations too* (an early ack touches only the acked node's own
//! obligation). The relation is deliberately conservative: extra
//! dependence only adds backtrack points, never unsoundness.
//!
//! Race analysis is performed FG-style at every state push: for every
//! enabled choice, the deepest stack transition dependent with it gets
//! a backtrack point (the choice itself when it was enabled there, the
//! whole enabled set otherwise — the classical conservative fallback).
//! Sleep sets use the standard propagation: a child's sleep set keeps
//! the parent's sleep set plus its already-explored siblings, filtered
//! to choices independent of the taken one.
//!
//! Because sleep sets make cross-branch state dedup unsound (a state
//! reached with a different sleep set must be re-expanded), DPOR mode
//! keeps **no** visited-set pruning; fingerprints are still collected,
//! but only to report how many distinct states the walk saw.
//!
//! # What bounded search proves
//!
//! A [`MacExploreOutcome`] with [`verified`](MacExploreOutcome::verified)
//! `true` is a machine-checked proof that agreement and validity hold
//! in every reachable state, and termination in every quiescent state,
//! *for that topology, those inputs, and that crash budget* — the
//! explored executions are untimed (callbacks observe clock zero),
//! which is exactly the generality of the paper's safety arguments. A
//! truncated run (state or depth cap hit) proves nothing beyond the
//! frontier and says so: `truncated` is reported honestly and
//! `verified()` returns `false`. Determinism contract: the same
//! descriptor and config always produce byte-identical outcomes, and
//! [`MacExplorer::replay`] of any emitted schedule reproduces the
//! violating state exactly.
//!
//! [`BcastLedger`]: amacl_model::mac::BcastLedger
//! [`ScriptedScheduler`]: amacl_model::sim::sched::scripted::ScriptedScheduler

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt::Write as _;

use amacl_core::two_phase::TwoPhase;
use amacl_core::wpaxos::{WpaxosConfig, WpaxosNode};
use amacl_model::ids::{NodeId, Slot};
use amacl_model::mac::{Admission, BcastLedger, MacChoice};
use amacl_model::prelude::*;
use amacl_model::proc::NodeCell;

use crate::explore::ViolationKind;
use crate::scenario::{Scenario, ScenarioAlgo, ScenarioInputs, ScenarioSched, ScenarioTopo};

/// A deliberately seeded ledger bug, for mutation-testking the
/// explorer: a checker that cannot find a planted bug proves nothing
/// by finding none.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LedgerMutation {
    /// The faithful semantics (no bug).
    None,
    /// Acks may fire while deliveries are still owed: the ledger
    /// behaves as if the remaining confirmations had arrived, and the
    /// undelivered messages are lost. Breaks **agreement** (a sender
    /// can complete a phase nobody else witnessed).
    AckEarly,
    /// A crash fails to release the ack obligations awaiting the dead
    /// node, wedging every sender that was waiting on it. Breaks
    /// **termination** under any positive crash budget.
    DropReleases,
}

impl LedgerMutation {
    /// Parses the CLI spelling (`ack-early` / `drop-releases`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(LedgerMutation::None),
            "ack-early" => Some(LedgerMutation::AckEarly),
            "drop-releases" => Some(LedgerMutation::DropReleases),
            _ => None,
        }
    }

    /// The stable CLI/report spelling.
    pub fn label(self) -> &'static str {
        match self {
            LedgerMutation::None => "none",
            LedgerMutation::AckEarly => "ack-early",
            LedgerMutation::DropReleases => "drop-releases",
        }
    }
}

/// One in-flight broadcast, machine-side: the ledger keeps the
/// obligation, the machine keeps the payload and the bookkeeping the
/// scenario converter needs.
#[derive(Debug)]
struct InFlight<M> {
    /// Ledger broadcast id.
    bcast: u64,
    /// The sender's 0-indexed accepted-broadcast sequence number.
    nth: u64,
    /// Deliveries performed so far (for mid-broadcast crash lowering).
    delivered: usize,
    /// The payload.
    msg: M,
}

impl<M: Clone> Clone for InFlight<M> {
    fn clone(&self) -> Self {
        Self {
            bcast: self.bcast,
            nth: self.nth,
            delivered: self.delivered,
            msg: self.msg.clone(),
        }
    }
}

/// A forkable global state driving the real [`BcastLedger`]: process
/// states, per-node in-flight broadcasts, and the shared ledger the
/// backends use for every semantic delivery/ack/crash question.
///
/// The machine is the [`MacChoice`]-level sibling of
/// [`ExploreMachine`](crate::machine::ExploreMachine): where that
/// machine re-implements delivery bookkeeping for exploration, this
/// one delegates every semantic question to the ledger, so the
/// explorer checks the object production backends actually run on.
pub struct MacMachine<P: Process + Clone + std::fmt::Debug> {
    topo: Topology,
    procs: Vec<P>,
    cells: Vec<NodeCell<P::Msg>>,
    ids: Vec<NodeId>,
    ledger: BcastLedger,
    in_flight: Vec<Option<InFlight<P::Msg>>>,
    next_bcast: u64,
    crash_budget: usize,
    mutation: LedgerMutation,
    moves_taken: u64,
}

impl<P> Clone for MacMachine<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        // NodeCell owns an RNG and is not Clone; rebuild with
        // deterministic seeds and copy the observable state. Only
        // deterministic algorithms are explored (see the module docs),
        // so RNG state is irrelevant.
        let mut cells: Vec<NodeCell<P::Msg>> = (0..self.procs.len())
            .map(|i| NodeCell::new(i as u64))
            .collect();
        for (i, cell) in cells.iter_mut().enumerate() {
            cell.decision = self.cells[i].decision;
            cell.ts_seq = self.cells[i].ts_seq;
            cell.busy_discards = self.cells[i].busy_discards;
        }
        Self {
            topo: self.topo.clone(),
            procs: self.procs.clone(),
            cells,
            ids: self.ids.clone(),
            ledger: self.ledger.clone(),
            in_flight: self.in_flight.clone(),
            next_bcast: self.next_bcast,
            crash_budget: self.crash_budget,
            mutation: self.mutation,
            moves_taken: self.moves_taken,
        }
    }
}

impl<P> MacMachine<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    /// Builds the machine, runs every `on_start` at clock zero, and
    /// registers the initial broadcasts with the ledger.
    ///
    /// # Panics
    ///
    /// Panics if `procs` does not provide one process per topology
    /// vertex.
    pub fn new(
        topo: Topology,
        mut procs: Vec<P>,
        crash_budget: usize,
        mutation: LedgerMutation,
    ) -> Self {
        let n = topo.len();
        assert_eq!(procs.len(), n, "one process per node");
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u64)).collect();
        let mut cells: Vec<NodeCell<P::Msg>> = (0..n).map(|i| NodeCell::new(i as u64)).collect();
        for i in 0..n {
            let mut ctx = cells[i].ctx(ids[i], Time::ZERO, false);
            procs[i].on_start(&mut ctx);
        }
        let mut m = Self {
            topo,
            procs,
            cells,
            ids,
            ledger: BcastLedger::new(n),
            in_flight: (0..n).map(|_| None).collect(),
            next_bcast: 0,
            crash_budget,
            mutation,
            moves_taken: 0,
        };
        for i in 0..n {
            if let Some(msg) = m.cells[i].outbox.take() {
                m.launch_broadcast(i, msg);
            }
        }
        m
    }

    /// Admits a fresh broadcast from `slot` into the ledger and arms
    /// its ack obligation over the live neighbors.
    fn launch_broadcast(&mut self, slot: usize, msg: P::Msg) {
        debug_assert!(self.in_flight[slot].is_none(), "one outstanding broadcast");
        let bcast = self.next_bcast;
        self.next_bcast += 1;
        let admission = self.ledger.admit_broadcast(slot, bcast);
        // The explorer injects crashes as explicit choices, never as
        // armed watches, so admission is always plain delivery.
        debug_assert_eq!(admission, Admission::Deliver);
        let nth = self.ledger.broadcast_count(slot) - 1;
        let live: BTreeSet<usize> = self
            .topo
            .neighbors(Slot(slot))
            .iter()
            .map(|s| s.index())
            .filter(|&v| !self.ledger.is_crashed(v))
            .collect();
        // An empty obligation (all neighbors dead) completes at once:
        // the ledger stores nothing and the ack is immediately enabled.
        self.ledger.register_ack_obligation(bcast, slot, live);
        self.in_flight[slot] = Some(InFlight {
            bcast,
            nth,
            delivered: 0,
            msg,
        });
    }

    fn outstanding_flags(&self) -> Vec<bool> {
        self.in_flight.iter().map(Option::is_some).collect()
    }

    fn choices_with_budget(&self, crash_budget: usize) -> Vec<MacChoice> {
        let mut out = self
            .ledger
            .enabled_choices(&self.outstanding_flags(), crash_budget);
        if self.mutation == LedgerMutation::AckEarly {
            // The seeded bug: an ack may fire while confirmations are
            // still owed.
            for (slot, inf) in self.in_flight.iter().enumerate() {
                if inf.is_some()
                    && !self.ledger.is_crashed(slot)
                    && self.ledger.awaiting_confirmations(slot).is_some()
                {
                    out.push(MacChoice::Ack(slot));
                }
            }
            out.sort_unstable();
            out.dedup();
        }
        out
    }

    /// Every scheduler choice enabled in this state, in deterministic
    /// [`MacChoice`] order.
    pub fn choices(&self) -> Vec<MacChoice> {
        self.choices_with_budget(self.crash_budget)
    }

    /// `true` when no delivery or ack is enabled: the scheduler may
    /// stay here forever without violating any model obligation (it is
    /// never *obliged* to crash anyone), so liveness is judged in
    /// these states.
    pub fn quiescent(&self) -> bool {
        self.choices_with_budget(0).is_empty()
    }

    /// Applies one scheduler choice.
    ///
    /// # Panics
    ///
    /// Panics if the choice is not currently enabled — the replay
    /// determinism contract turns a stale schedule into a loud error,
    /// never a silently different execution.
    pub fn apply(&mut self, choice: MacChoice) {
        self.moves_taken += 1;
        let now = Time::ZERO;
        match choice {
            MacChoice::Deliver { from, to } => {
                assert!(
                    !self.ledger.is_crashed(from) && !self.ledger.is_crashed(to),
                    "dead endpoint"
                );
                let (bcast, msg) = {
                    let inf = self.in_flight[from].as_mut().expect("message in flight");
                    let (ob, set) = self
                        .ledger
                        .awaiting_confirmations(from)
                        .expect("obligation pending");
                    assert_eq!(ob, inf.bcast, "obligation tracks the in-flight broadcast");
                    assert!(set.contains(&to), "no pending delivery");
                    inf.delivered += 1;
                    (inf.bcast, inf.msg.clone())
                };
                // No countdown is armed in the explorer; the call keeps
                // the ledger's delivery accounting faithful regardless.
                self.ledger.note_delivery(bcast);
                let busy = self.in_flight[to].is_some();
                let mut ctx = self.cells[to].ctx(self.ids[to], now, busy);
                self.procs[to].on_receive(msg, &mut ctx);
                if let Some(m) = self.cells[to].outbox.take() {
                    self.launch_broadcast(to, m);
                }
                self.ledger.confirm(bcast, to);
            }
            MacChoice::Ack(u) => {
                assert!(!self.ledger.is_crashed(u), "dead node");
                let inf = self.in_flight[u].take().expect("broadcast outstanding");
                if let Some((bcast, set)) = self.ledger.awaiting_confirmations(u) {
                    assert_eq!(
                        self.mutation,
                        LedgerMutation::AckEarly,
                        "ack requires a completed obligation"
                    );
                    assert_eq!(bcast, inf.bcast);
                    // The seeded bug in action: the ledger counts
                    // confirmations it never received, and the
                    // undelivered messages are lost forever.
                    let members: Vec<usize> = set.iter().copied().collect();
                    for m in members {
                        self.ledger.confirm(bcast, m);
                    }
                }
                let mut ctx = self.cells[u].ctx(self.ids[u], now, false);
                self.procs[u].on_ack(&mut ctx);
                if let Some(m) = self.cells[u].outbox.take() {
                    self.launch_broadcast(u, m);
                }
            }
            MacChoice::Crash(u) => {
                assert!(self.crash_budget > 0, "crash budget exhausted");
                self.crash_budget -= 1;
                assert!(self.ledger.mark_crashed(u), "node already crashed");
                if self.mutation == LedgerMutation::DropReleases {
                    // The seeded bug: obligations keep awaiting the
                    // dead node, wedging their senders' acks.
                } else {
                    // Acks never wait on crashed neighbors; releasing
                    // may complete (and thus enable) other senders'
                    // acks. The dead node's own in-flight broadcast is
                    // frozen — the ledger cancels a crashed sender's
                    // remaining deliveries.
                    let _released = self.ledger.release_obligations_of(u);
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` if the machine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Whether `slot` has crashed.
    pub fn is_crashed(&self, slot: usize) -> bool {
        self.ledger.is_crashed(slot)
    }

    /// Remaining crash budget.
    pub fn crash_budget(&self) -> usize {
        self.crash_budget
    }

    /// Scheduler moves applied so far on this branch.
    pub fn moves_taken(&self) -> u64 {
        self.moves_taken
    }

    /// The `(nth broadcast, deliveries so far)` of `slot`'s in-flight
    /// broadcast — what the scenario converter needs to place scripted
    /// delays and mid-broadcast crash specs.
    pub fn in_flight_nth(&self, slot: usize) -> Option<(u64, usize)> {
        self.in_flight[slot].as_ref().map(|f| (f.nth, f.delivered))
    }

    /// Per-slot decisions so far.
    pub fn decisions(&self) -> Vec<Option<Value>> {
        self.cells
            .iter()
            .map(|c| c.decision.map(|d| d.value))
            .collect()
    }

    /// Distinct decided values so far.
    pub fn decided_values(&self) -> BTreeSet<Value> {
        self.cells
            .iter()
            .filter_map(|c| c.decision.map(|d| d.value))
            .collect()
    }

    /// `true` when every non-crashed node has decided.
    pub fn all_alive_decided(&self) -> bool {
        (0..self.len()).all(|i| self.ledger.is_crashed(i) || self.cells[i].decision.is_some())
    }

    /// Deterministic fingerprint of the global state: the ledger's own
    /// fingerprint combined with process states, in-flight payloads,
    /// decisions, and the remaining crash budget. Excludes
    /// `moves_taken` so converging interleavings merge.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.ledger.fingerprint().hash(&mut h);
        for i in 0..self.len() {
            format!("{:?}", self.procs[i]).hash(&mut h);
            match &self.in_flight[i] {
                Some(f) => {
                    1u8.hash(&mut h);
                    f.bcast.hash(&mut h);
                    f.nth.hash(&mut h);
                    f.delivered.hash(&mut h);
                    format!("{:?}", f.msg).hash(&mut h);
                }
                None => 0u8.hash(&mut h),
            }
            self.cells[i].decision.map(|d| d.value).hash(&mut h);
        }
        self.crash_budget.hash(&mut h);
        h.finish()
    }
}

/// Which search strategy [`MacExplorer::run`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reduction {
    /// Plain DFS with full state-fingerprint deduplication (the
    /// [`crate::explore`] strategy), as the baseline DPOR is measured
    /// against.
    Naive,
    /// Sleep-set + backtrack-set dynamic partial-order reduction. No
    /// cross-branch state dedup (unsound under sleep sets); commuting
    /// interleavings are pruned instead of memoized.
    Dpor,
}

impl Reduction {
    /// The stable CLI/report spelling.
    pub fn label(self) -> &'static str {
        match self {
            Reduction::Naive => "naive",
            Reduction::Dpor => "dpor",
        }
    }
}

/// Bounds and strategy for one [`MacExplorer::run`].
#[derive(Clone, Copy, Debug)]
pub struct MacExploreConfig {
    /// Stop (and report truncation) after expanding this many states.
    pub max_states: usize,
    /// Do not expand states deeper than this many moves (reported as
    /// truncation when the frontier is cut).
    pub max_depth: usize,
    /// Stop after collecting this many violations.
    pub max_violations: usize,
    /// Search strategy.
    pub reduction: Reduction,
}

impl Default for MacExploreConfig {
    fn default() -> Self {
        Self {
            max_states: 500_000,
            max_depth: 10_000,
            max_violations: 1,
            reduction: Reduction::Dpor,
        }
    }
}

/// A property violation, with the exact replayable schedule that
/// produced it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MacViolation {
    /// Which property failed.
    pub kind: ViolationKind,
    /// The scheduler choices from the initial state to the violating
    /// state; [`MacExplorer::replay`] reproduces it exactly.
    pub schedule: Vec<MacChoice>,
    /// Per-slot decisions in the violating state.
    pub decisions: Vec<Option<Value>>,
}

impl MacViolation {
    /// Deterministic plain-text rendering (the byte-identity witness
    /// the replay proptests compare).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "VIOLATION: {:?}", self.kind);
        let _ = writeln!(out, "decisions: {:?}", self.decisions);
        let _ = writeln!(out, "schedule ({} moves):", self.schedule.len());
        for (i, c) in self.schedule.iter().enumerate() {
            let _ = writeln!(out, "  {i:>3}. {c:?}");
        }
        out
    }
}

/// The outcome of one bounded exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MacExploreOutcome {
    /// Strategy that produced this outcome.
    pub reduction: Reduction,
    /// States expanded (the DPOR-vs-naive comparison counter).
    pub states: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Distinct state fingerprints seen (reporting only; DPOR does not
    /// prune on them).
    pub distinct_states: u64,
    /// Quiescent states seen (where termination was judged).
    pub quiescent_states: u64,
    /// Deepest schedule expanded.
    pub max_depth_reached: usize,
    /// `true` when a state/depth cap cut the frontier: the cover is
    /// incomplete and a clean run proves nothing beyond it.
    pub truncated: bool,
    /// Violations found (bounded by
    /// [`MacExploreConfig::max_violations`]).
    pub violations: Vec<MacViolation>,
}

impl MacExploreOutcome {
    /// `true` when the walk covered the whole space and found nothing:
    /// agreement/validity hold in every reachable state, termination
    /// in every quiescent one.
    pub fn verified(&self) -> bool {
        !self.truncated && self.violations.is_empty()
    }

    /// Panics with a rendered violation/truncation report unless
    /// [`verified`](Self::verified).
    pub fn assert_verified(&self) {
        if let Some(v) = self.violations.first() {
            panic!("{}", v.render());
        }
        assert!(!self.truncated, "exploration truncated — nothing proven");
    }
}

/// One DPOR stack frame: the state, what is enabled there, and the
/// sleep/done/backtrack sets steering which alternatives fork.
///
/// All three steering sets are `BTreeSet`s: selection takes the
/// *minimum* eligible choice, so the walk order is a pure function of
/// the state — never of hash iteration order (the PR 2 ack-order leak
/// class).
struct Frame<P: Process + Clone + std::fmt::Debug> {
    machine: MacMachine<P>,
    enabled: Vec<MacChoice>,
    sleep: BTreeSet<MacChoice>,
    done: BTreeSet<MacChoice>,
    backtrack: BTreeSet<MacChoice>,
}

/// Exhaustive (or DPOR-reduced) search over every schedule of a
/// [`MacMachine`].
pub struct MacExplorer<P: Process + Clone + std::fmt::Debug> {
    root: MacMachine<P>,
    inputs: Vec<Value>,
}

impl<P> MacExplorer<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    /// Builds an explorer over fresh processes with their declared
    /// inputs (used for the validity check).
    ///
    /// # Panics
    ///
    /// Panics unless there is exactly one input per node.
    pub fn new(
        topo: Topology,
        procs: Vec<P>,
        inputs: Vec<Value>,
        crash_budget: usize,
        mutation: LedgerMutation,
    ) -> Self {
        assert_eq!(procs.len(), inputs.len(), "one input per node");
        Self {
            root: MacMachine::new(topo, procs, crash_budget, mutation),
            inputs,
        }
    }

    /// The declared inputs.
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }

    /// A fresh copy of the initial state.
    pub fn fork_root(&self) -> MacMachine<P> {
        self.root.clone()
    }

    /// Replays a schedule from the initial state, returning the
    /// resulting machine.
    ///
    /// # Panics
    ///
    /// Panics if any choice is not enabled where the schedule claims
    /// it is — the determinism contract fails loudly, never silently.
    pub fn replay(&self, schedule: &[MacChoice]) -> MacMachine<P> {
        let mut m = self.fork_root();
        for &c in schedule {
            m.apply(c);
        }
        m
    }

    fn check_state(&self, m: &MacMachine<P>, schedule: &[MacChoice]) -> Option<MacViolation> {
        let decided = m.decided_values();
        let kind = if decided.len() > 1 {
            Some(ViolationKind::Agreement)
        } else if decided.iter().any(|v| !self.inputs.contains(v)) {
            Some(ViolationKind::Validity)
        } else if m.quiescent() && !m.all_alive_decided() {
            Some(ViolationKind::Termination)
        } else {
            None
        };
        kind.map(|kind| MacViolation {
            kind,
            schedule: schedule.to_vec(),
            decisions: m.decisions(),
        })
    }

    /// Runs the search and reports states, violations, and (honestly)
    /// any truncation.
    pub fn run(&self, cfg: &MacExploreConfig) -> MacExploreOutcome {
        match cfg.reduction {
            Reduction::Naive => self.run_naive(cfg),
            Reduction::Dpor => self.run_dpor(cfg),
        }
    }

    /// DFS with full state-fingerprint dedup (no reduction): the
    /// baseline. Sound because without sleep sets, a state determines
    /// its entire future — revisits explore nothing new.
    fn run_naive(&self, cfg: &MacExploreConfig) -> MacExploreOutcome {
        let mut out = MacExploreOutcome {
            reduction: Reduction::Naive,
            states: 0,
            transitions: 0,
            distinct_states: 0,
            quiescent_states: 0,
            max_depth_reached: 0,
            truncated: false,
            violations: Vec::new(),
        };
        // Membership-only set (never iterated): iteration-order
        // nondeterminism cannot leak into the walk order, which is
        // fully determined by the explicit stack below.
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(self.root.fingerprint());
        let mut stack: Vec<(MacMachine<P>, Vec<MacChoice>)> = vec![(self.root.clone(), vec![])];
        while let Some((m, schedule)) = stack.pop() {
            out.states += 1;
            out.max_depth_reached = out.max_depth_reached.max(schedule.len());
            if m.quiescent() {
                out.quiescent_states += 1;
            }
            if let Some(v) = self.check_state(&m, &schedule) {
                out.violations.push(v);
                if out.violations.len() >= cfg.max_violations {
                    break;
                }
            }
            if schedule.len() >= cfg.max_depth {
                out.truncated = true;
                continue;
            }
            if out.states as usize >= cfg.max_states {
                out.truncated = true;
                break;
            }
            // Push in reverse so the stack pops children in ascending
            // MacChoice order — same first-path as DPOR.
            for c in m.choices().into_iter().rev() {
                let mut child = m.clone();
                child.apply(c);
                out.transitions += 1;
                if seen.insert(child.fingerprint()) {
                    let mut s = schedule.clone();
                    s.push(c);
                    stack.push((child, s));
                }
            }
        }
        out.distinct_states = seen.len() as u64;
        out
    }

    /// Sleep-set + backtrack-set DPOR (see the module docs for the
    /// soundness argument).
    fn run_dpor(&self, cfg: &MacExploreConfig) -> MacExploreOutcome {
        let mut out = MacExploreOutcome {
            reduction: Reduction::Dpor,
            states: 0,
            transitions: 0,
            distinct_states: 0,
            quiescent_states: 0,
            max_depth_reached: 0,
            truncated: false,
            violations: Vec::new(),
        };
        // Counting only — never iterated, never used for pruning.
        let mut fingerprints: HashSet<u64> = HashSet::new();
        let mut frames: Vec<Frame<P>> = Vec::new();
        // schedule[j] is the choice taken out of frames[j]; always
        // exactly one shorter than `frames`.
        let mut schedule: Vec<MacChoice> = Vec::new();
        let mut stop = false;

        // Visits a state: counts, checks properties, performs the
        // FG-style race analysis for every enabled choice, and pushes
        // the frame. Returns `true` when the search must stop.
        let mut push_state = |machine: MacMachine<P>,
                              sleep: BTreeSet<MacChoice>,
                              frames: &mut Vec<Frame<P>>,
                              schedule: &[MacChoice],
                              out: &mut MacExploreOutcome|
         -> bool {
            out.states += 1;
            out.max_depth_reached = out.max_depth_reached.max(schedule.len());
            fingerprints.insert(machine.fingerprint());
            if machine.quiescent() {
                out.quiescent_states += 1;
            }
            if let Some(v) = self.check_state(&machine, schedule) {
                out.violations.push(v);
                if out.violations.len() >= cfg.max_violations {
                    return true;
                }
            }
            let enabled = machine.choices();
            // Race analysis: for each enabled choice, give the deepest
            // dependent stack transition a backtrack point — the
            // choice itself where it was already enabled, the whole
            // enabled set otherwise (conservative fallback).
            for &c in &enabled {
                for j in (0..schedule.len()).rev() {
                    if !schedule[j].independent(c) {
                        if frames[j].enabled.contains(&c) {
                            frames[j].backtrack.insert(c);
                        } else {
                            let all = frames[j].enabled.clone();
                            frames[j].backtrack.extend(all);
                        }
                        break;
                    }
                }
            }
            let mut backtrack = BTreeSet::new();
            if schedule.len() >= cfg.max_depth {
                if !enabled.is_empty() {
                    out.truncated = true;
                }
            } else if let Some(&first) = enabled.iter().find(|c| !sleep.contains(c)) {
                backtrack.insert(first);
            }
            frames.push(Frame {
                machine,
                enabled,
                sleep,
                done: BTreeSet::new(),
                backtrack,
            });
            if out.states as usize >= cfg.max_states {
                out.truncated = true;
                return true;
            }
            false
        };

        if push_state(
            self.root.clone(),
            BTreeSet::new(),
            &mut frames,
            &schedule,
            &mut out,
        ) {
            stop = true;
        }
        while !stop {
            let Some(top) = frames.last() else { break };
            let next = top
                .backtrack
                .iter()
                .copied()
                .find(|c| !top.done.contains(c) && !top.sleep.contains(c));
            let Some(c) = next else {
                frames.pop();
                if !frames.is_empty() {
                    schedule.pop();
                }
                continue;
            };
            let top = frames.last_mut().expect("frame present");
            top.done.insert(c);
            let mut child = top.machine.clone();
            // Child sleep: parent's sleep plus explored siblings,
            // filtered to choices that commute with the one taken
            // (`c` filters itself out — nothing is self-independent).
            let sleep: BTreeSet<MacChoice> = top
                .sleep
                .union(&top.done)
                .copied()
                .filter(|x| x.independent(c))
                .collect();
            child.apply(c);
            out.transitions += 1;
            schedule.push(c);
            if push_state(child, sleep, &mut frames, &schedule, &mut out) {
                stop = true;
            }
        }
        out.distinct_states = fingerprints.len() as u64;
        out
    }
}

/// A plain-data exploration instance: which algorithm, topology,
/// inputs, crash budget, and (for mutation testing) which seeded bug.
/// The generator-friendly twin of [`Scenario`], restricted to the
/// algorithms the scenario catalogue runs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MacExploreDescriptor {
    /// Algorithm under test.
    pub algo: ScenarioAlgo,
    /// Topology.
    pub topo: ScenarioTopo,
    /// One input per node.
    pub inputs: Vec<Value>,
    /// How many crash choices the explored scheduler may make.
    pub crash_budget: usize,
    /// Seeded ledger bug (or [`LedgerMutation::None`]).
    pub mutation: LedgerMutation,
}

impl MacExploreDescriptor {
    /// Checks internal consistency (input count, two-phase
    /// restrictions).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.topo.build().len();
        if n < 2 {
            return Err("needs at least 2 nodes".into());
        }
        if self.inputs.len() != n {
            return Err(format!(
                "needs one input per node (got {} for n={n})",
                self.inputs.len()
            ));
        }
        match self.algo {
            ScenarioAlgo::TwoPhase => {
                if !matches!(self.topo, ScenarioTopo::Clique(_)) {
                    return Err("two-phase is single-hop (clique only)".into());
                }
                if self.inputs.iter().any(|&v| v > 1) {
                    return Err("two-phase is binary (inputs must be 0 or 1)".into());
                }
            }
            ScenarioAlgo::Wpaxos => {}
        }
        Ok(())
    }

    fn explorer_two_phase(&self) -> MacExplorer<TwoPhase> {
        MacExplorer::new(
            self.topo.build(),
            self.inputs.iter().map(|&v| TwoPhase::new(v)).collect(),
            self.inputs.clone(),
            self.crash_budget,
            self.mutation,
        )
    }

    fn explorer_wpaxos(&self) -> MacExplorer<WpaxosNode> {
        let n = self.topo.build().len();
        MacExplorer::new(
            self.topo.build(),
            self.inputs
                .iter()
                .map(|&v| WpaxosNode::new(v, WpaxosConfig::new(n)))
                .collect(),
            self.inputs.clone(),
            self.crash_budget,
            self.mutation,
        )
    }

    /// Runs the bounded exploration.
    pub fn explore(&self, cfg: &MacExploreConfig) -> MacExploreOutcome {
        match self.algo {
            ScenarioAlgo::TwoPhase => self.explorer_two_phase().run(cfg),
            ScenarioAlgo::Wpaxos => self.explorer_wpaxos().run(cfg),
        }
    }

    /// Replays a schedule and returns the rendered violation check of
    /// the resulting state — the byte-identity witness the replay
    /// proptests compare against the explorer's own report.
    pub fn replay_decisions(&self, schedule: &[MacChoice]) -> Vec<Option<Value>> {
        match self.algo {
            ScenarioAlgo::TwoPhase => self.explorer_two_phase().replay(schedule).decisions(),
            ScenarioAlgo::Wpaxos => self.explorer_wpaxos().replay(schedule).decisions(),
        }
    }

    /// Lowers a violation's schedule into a both-backends-runnable
    /// [`Scenario`]: a [`ScenarioSched::Scripted`] adversary whose
    /// per-broadcast delays reproduce the schedule's coarse completion
    /// order, plus a crash plan mapping each `Crash` choice onto a
    /// [`CrashSpec`] (mid-broadcast with the exact delivered prefix
    /// when the victim had a broadcast in flight, timed otherwise).
    ///
    /// The lowering is **approximate by design**: a scripted scheduler
    /// assigns one delay per broadcast (applied to all its deliveries
    /// and the ack), so it cannot encode arbitrary per-delivery
    /// interleavings — it preserves crash placement exactly and
    /// completion order coarsely. What the scenario pins as a
    /// regression is the *instance* (algorithm, topology, inputs,
    /// crashes, adversary shape), byte-identically checkable across
    /// backends, cores, and shard counts via `amacl sweep`.
    pub fn lower(&self, name: &str, violation: &MacViolation) -> Scenario {
        let (delays, crashes) = match self.algo {
            ScenarioAlgo::TwoPhase => {
                lower_schedule(&self.explorer_two_phase(), &violation.schedule)
            }
            ScenarioAlgo::Wpaxos => lower_schedule(&self.explorer_wpaxos(), &violation.schedule),
        };
        Scenario {
            name: name.to_string(),
            algo: self.algo,
            topo: self.topo,
            sched: ScenarioSched::Scripted {
                default_delay: 1,
                delays,
            },
            crashes,
            inputs: ScenarioInputs::Explicit(self.inputs.clone()),
            strict: false,
            expect_stall: false,
        }
    }
}

/// Replays `schedule` step by step, recording when each broadcast is
/// issued and acked (in 1-based schedule positions) and where each
/// crash lands, then emits the scripted delays and crash specs the
/// scenario lowering needs.
fn lower_schedule<P>(
    explorer: &MacExplorer<P>,
    schedule: &[MacChoice],
) -> (Vec<(usize, u64, u64)>, Vec<CrashSpec>)
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    let mut m = explorer.fork_root();
    // (slot, nth) -> 1-based schedule position the broadcast was
    // issued at (0 for on_start broadcasts).
    let mut births: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    let record_births = |m: &MacMachine<P>, step: u64, births: &mut BTreeMap<_, _>| {
        for slot in 0..m.len() {
            if let Some((nth, _)) = m.in_flight_nth(slot) {
                births.entry((slot, nth)).or_insert(step);
            }
        }
    };
    record_births(&m, 0, &mut births);
    let mut delays: Vec<(usize, u64, u64)> = Vec::new();
    let mut crashes: Vec<CrashSpec> = Vec::new();
    for (i, &c) in schedule.iter().enumerate() {
        let step = (i + 1) as u64;
        match c {
            MacChoice::Ack(u) => {
                let (nth, _) = m.in_flight_nth(u).expect("acked broadcast in flight");
                let born = births[&(u, nth)];
                delays.push((u, nth, (step - born).max(1)));
            }
            MacChoice::Crash(u) => match m.in_flight_nth(u) {
                Some((nth, delivered)) => crashes.push(CrashSpec::MidBroadcast {
                    slot: Slot(u),
                    nth_broadcast: nth,
                    delivered,
                }),
                None => crashes.push(CrashSpec::AtTime {
                    slot: Slot(u),
                    time: Time(step),
                }),
            },
            MacChoice::Deliver { .. } => {}
        }
        m.apply(c);
        record_births(&m, step, &mut births);
    }
    // Broadcasts the schedule never acked complete after everything
    // the schedule did order.
    let horizon = schedule.len() as u64 + 1;
    for &(slot, nth) in births.keys() {
        if !delays.iter().any(|&(s, n, _)| s == slot && n == nth) {
            delays.push((slot, nth, horizon));
        }
    }
    delays.sort_unstable();
    (delays, crashes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Broadcast once; decide own input on ack; ignore receipts.
    #[derive(Clone, Debug)]
    struct Solo(Value);

    #[derive(Clone, Copy, Debug)]
    struct Ping(Value);
    impl Payload for Ping {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for Solo {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.broadcast(Ping(self.0));
        }
        fn on_receive(&mut self, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.decide(self.0);
        }
    }

    /// Only slot 0 broadcasts; receivers decide the received value,
    /// the broadcaster decides on ack. Maximally concurrent: all
    /// deliveries commute pairwise (distinct receivers), so the whole
    /// space is a single Mazurkiewicz trace — the DPOR-vs-naive
    /// benchmark shape.
    #[derive(Clone, Debug)]
    struct Spray {
        v: Value,
        leader: bool,
    }

    impl Process for Spray {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            if self.leader {
                ctx.broadcast(Ping(self.v));
            }
        }
        fn on_receive(&mut self, msg: Ping, ctx: &mut Context<'_, Ping>) {
            ctx.decide(msg.0);
        }
        fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.decide(self.v);
        }
    }

    fn spray_explorer(n: usize) -> MacExplorer<Spray> {
        MacExplorer::new(
            Topology::clique(n),
            (0..n)
                .map(|i| Spray {
                    v: 7,
                    leader: i == 0,
                })
                .collect(),
            vec![7; n],
            0,
            LedgerMutation::None,
        )
    }

    fn solo_explorer(n: usize, budget: usize, mutation: LedgerMutation) -> MacExplorer<Solo> {
        MacExplorer::new(
            Topology::clique(n),
            (0..n).map(|_| Solo(5)).collect(),
            vec![5; n],
            budget,
            mutation,
        )
    }

    fn two_phase_pair(mutation: LedgerMutation) -> MacExploreDescriptor {
        MacExploreDescriptor {
            algo: ScenarioAlgo::TwoPhase,
            topo: ScenarioTopo::Clique(2),
            inputs: vec![0, 1],
            crash_budget: 0,
            mutation,
        }
    }

    #[test]
    fn machine_drives_the_real_ledger() {
        let mut m = MacMachine::new(
            Topology::clique(2),
            vec![Solo(5), Solo(5)],
            0,
            LedgerMutation::None,
        );
        assert_eq!(
            m.choices(),
            vec![
                MacChoice::Deliver { from: 0, to: 1 },
                MacChoice::Deliver { from: 1, to: 0 },
            ]
        );
        m.apply(MacChoice::Deliver { from: 0, to: 1 });
        assert!(m.choices().contains(&MacChoice::Ack(0)));
        m.apply(MacChoice::Ack(0));
        assert_eq!(m.decisions()[0], Some(5));
        assert!(!m.quiescent(), "node 1's broadcast is still in flight");
        m.apply(MacChoice::Deliver { from: 1, to: 0 });
        m.apply(MacChoice::Ack(1));
        assert!(m.quiescent());
        assert!(m.all_alive_decided());
        assert_eq!(m.moves_taken(), 4);
    }

    #[test]
    fn machine_fingerprints_merge_converging_interleavings() {
        let build = || {
            MacMachine::new(
                Topology::clique(3),
                vec![Solo(5), Solo(5), Solo(5)],
                0,
                LedgerMutation::None,
            )
        };
        let mut a = build();
        let mut b = build();
        a.apply(MacChoice::Deliver { from: 0, to: 1 });
        a.apply(MacChoice::Deliver { from: 0, to: 2 });
        b.apply(MacChoice::Deliver { from: 0, to: 2 });
        b.apply(MacChoice::Deliver { from: 0, to: 1 });
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), build().fingerprint());
    }

    #[test]
    #[should_panic(expected = "no pending delivery")]
    fn stale_replay_fails_loudly() {
        let mut m = MacMachine::new(
            Topology::clique(3),
            vec![Solo(5), Solo(5), Solo(5)],
            0,
            LedgerMutation::None,
        );
        m.apply(MacChoice::Deliver { from: 0, to: 1 });
        m.apply(MacChoice::Deliver { from: 0, to: 1 });
    }

    #[test]
    fn crash_releases_obligations_and_freezes_the_victim() {
        let mut m = MacMachine::new(
            Topology::clique(2),
            vec![Solo(5), Solo(5)],
            1,
            LedgerMutation::None,
        );
        m.apply(MacChoice::Crash(1));
        // Node 0's obligation awaited only node 1; death released it,
        // so the ack is enabled, node 1's broadcast is frozen, and the
        // crash spent the whole budget.
        assert_eq!(m.choices(), vec![MacChoice::Ack(0)]);
        assert_eq!(m.crash_budget(), 0);
        m.apply(MacChoice::Ack(0));
        assert!(m.quiescent());
        assert!(m.all_alive_decided());
    }

    #[test]
    fn clean_solo_instance_verifies_under_both_reductions() {
        for reduction in [Reduction::Naive, Reduction::Dpor] {
            let cfg = MacExploreConfig {
                reduction,
                ..MacExploreConfig::default()
            };
            let out = solo_explorer(3, 0, LedgerMutation::None).run(&cfg);
            assert!(out.verified(), "{reduction:?}: {out:?}");
            assert!(out.quiescent_states > 0);
            assert_eq!(out.reduction, reduction);
        }
    }

    #[test]
    fn crash_tolerant_solo_verifies_with_budget() {
        for reduction in [Reduction::Naive, Reduction::Dpor] {
            let cfg = MacExploreConfig {
                reduction,
                ..MacExploreConfig::default()
            };
            let out = solo_explorer(3, 1, LedgerMutation::None).run(&cfg);
            assert!(out.verified(), "{reduction:?}: {out:?}");
        }
    }

    /// The acceptance counter: on a maximally concurrent instance the
    /// sleep/backtrack sets beat even the naive walk's state dedup —
    /// one representative interleaving instead of the full 2^(n-1)
    /// subset lattice.
    #[test]
    fn dpor_expands_measurably_fewer_states_than_naive() {
        let cfg = |reduction| MacExploreConfig {
            reduction,
            ..MacExploreConfig::default()
        };
        let naive = spray_explorer(6).run(&cfg(Reduction::Naive));
        let dpor = spray_explorer(6).run(&cfg(Reduction::Dpor));
        assert!(naive.verified() && dpor.verified());
        assert!(
            dpor.states < naive.states,
            "DPOR expanded {} states, naive {} — no reduction",
            dpor.states,
            naive.states
        );
        // Naive-with-dedup expands every distinct state; DPOR walks a
        // single trace of the lone Mazurkiewicz class plus sleep-set
        // blocked stubs, so the gap is structural, not noise.
        assert!(dpor.states * 2 < naive.states, "reduction not measurable");
    }

    /// The mutation test: the seeded early-ack bug must be FOUND, and
    /// the emitted schedule must replay to the identical violation.
    #[test]
    fn seeded_ack_early_bug_is_found_and_replays() {
        for reduction in [Reduction::Naive, Reduction::Dpor] {
            let cfg = MacExploreConfig {
                reduction,
                ..MacExploreConfig::default()
            };
            let d = two_phase_pair(LedgerMutation::AckEarly);
            d.validate().unwrap();
            let out = d.explore(&cfg);
            let v = out
                .violations
                .first()
                .unwrap_or_else(|| panic!("{reduction:?} missed the seeded bug: {out:?}"));
            // An early ack loses the undelivered messages, which shows
            // up either as disagreement (a sender completes a phase
            // nobody witnessed) or as a wedge (a node waits forever on
            // a message the ledger pretended was delivered) — both are
            // the seeded bug surfacing.
            assert!(
                matches!(
                    v.kind,
                    ViolationKind::Agreement | ViolationKind::Termination
                ),
                "{:?}",
                v.kind
            );
            assert_eq!(d.replay_decisions(&v.schedule), v.decisions);
            // And the unmutated instance verifies clean.
            let clean = two_phase_pair(LedgerMutation::None).explore(&cfg);
            assert!(clean.verified(), "{reduction:?}: {clean:?}");
        }
    }

    /// The second seeded bug: dropping crash-time obligation releases
    /// wedges the surviving senders — a termination violation under
    /// any positive crash budget.
    #[test]
    fn seeded_drop_releases_bug_is_found() {
        for reduction in [Reduction::Naive, Reduction::Dpor] {
            let cfg = MacExploreConfig {
                reduction,
                ..MacExploreConfig::default()
            };
            let out = solo_explorer(2, 1, LedgerMutation::DropReleases).run(&cfg);
            let v = out
                .violations
                .first()
                .unwrap_or_else(|| panic!("{reduction:?} missed the seeded bug: {out:?}"));
            assert_eq!(v.kind, ViolationKind::Termination);
            assert!(
                v.schedule.contains(&MacChoice::Crash(0))
                    || v.schedule.contains(&MacChoice::Crash(1))
            );
        }
    }

    #[test]
    fn outcomes_are_deterministic_across_runs() {
        let cfg = MacExploreConfig::default();
        let d = two_phase_pair(LedgerMutation::AckEarly);
        let a = d.explore(&cfg);
        let b = d.explore(&cfg);
        assert_eq!(a, b);
        assert_eq!(
            a.violations[0].render(),
            b.violations[0].render(),
            "rendered bytes differ"
        );
    }

    #[test]
    fn truncation_is_reported_not_swallowed() {
        let cfg = MacExploreConfig {
            max_states: 5,
            reduction: Reduction::Dpor,
            ..MacExploreConfig::default()
        };
        let out = solo_explorer(3, 0, LedgerMutation::None).run(&cfg);
        assert!(out.truncated);
        assert!(!out.verified());
        let cfg = MacExploreConfig {
            max_depth: 2,
            reduction: Reduction::Naive,
            ..MacExploreConfig::default()
        };
        let out = solo_explorer(3, 0, LedgerMutation::None).run(&cfg);
        assert!(out.truncated);
        assert!(!out.verified());
    }

    #[test]
    fn descriptor_validation_rejects_bad_instances() {
        let mut d = two_phase_pair(LedgerMutation::None);
        d.inputs = vec![0];
        assert!(d.validate().unwrap_err().contains("one input per node"));
        let mut d = two_phase_pair(LedgerMutation::None);
        d.inputs = vec![0, 2];
        assert!(d.validate().unwrap_err().contains("binary"));
        let mut d = two_phase_pair(LedgerMutation::None);
        d.topo = ScenarioTopo::Line(2);
        d.mutation = LedgerMutation::None;
        assert!(d.validate().unwrap_err().contains("clique"));
    }

    #[test]
    fn lowered_counterexample_is_a_valid_scenario() {
        let d = two_phase_pair(LedgerMutation::AckEarly);
        let out = d.explore(&MacExploreConfig::default());
        let v = &out.violations[0];
        let scenario = d.lower("explored-ack-early-witness", v);
        scenario.validate().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(scenario.algo, ScenarioAlgo::TwoPhase);
        assert!(matches!(scenario.sched, ScenarioSched::Scripted { .. }));
        assert_eq!(
            scenario.inputs,
            ScenarioInputs::Explicit(vec![0, 1]),
            "inputs carried verbatim"
        );
        assert!(
            scenario.crashes.is_empty(),
            "budget-0 witness is crash-free"
        );
        // The lowering is deterministic: same violation, same scenario.
        assert_eq!(scenario, d.lower("explored-ack-early-witness", v));
    }

    #[test]
    fn lowering_maps_crashes_onto_crash_specs() {
        // Build a hand-made violation-shaped schedule with a crash of
        // a node whose broadcast is partially delivered, and one whose
        // broadcast already completed.
        let d = MacExploreDescriptor {
            algo: ScenarioAlgo::Wpaxos,
            topo: ScenarioTopo::Clique(3),
            inputs: vec![1, 1, 1],
            crash_budget: 2,
            mutation: LedgerMutation::None,
        };
        let schedule = vec![
            MacChoice::Deliver { from: 0, to: 1 },
            MacChoice::Crash(0),
            MacChoice::Deliver { from: 1, to: 2 },
            MacChoice::Crash(2),
        ];
        let v = MacViolation {
            kind: ViolationKind::Termination,
            schedule,
            decisions: vec![None, None, None],
        };
        let scenario = d.lower("crash-lowering-probe", &v);
        assert_eq!(
            scenario.crashes[0],
            CrashSpec::MidBroadcast {
                slot: Slot(0),
                nth_broadcast: 0,
                delivered: 1,
            },
            "in-flight victim lowers to the exact delivered prefix"
        );
        assert!(
            matches!(
                scenario.crashes[1],
                CrashSpec::MidBroadcast { slot: Slot(2), .. }
            ) || matches!(scenario.crashes[1], CrashSpec::AtTime { slot: Slot(2), .. })
        );
    }

    /// The counterexample-to-catalogue loop, closed: the catalogue's
    /// "explored-ack-early-witness" entry is byte-identical to what
    /// the converter emits for the seeded bug's first violation. If
    /// the explorer, the search order, or the lowering change, this
    /// fails and the literal must be re-pinned from the new output.
    #[test]
    fn catalogue_witness_matches_the_lowering() {
        let d = two_phase_pair(LedgerMutation::AckEarly);
        let out = d.explore(&MacExploreConfig::default());
        let lowered = d.lower("explored-ack-early-witness", &out.violations[0]);
        let pinned = Scenario::by_name("explored-ack-early-witness").expect("catalogue entry");
        assert_eq!(
            lowered, pinned,
            "re-pin the catalogue literal from the converter output"
        );
    }

    #[test]
    fn mutation_parsing_round_trips() {
        for m in [
            LedgerMutation::None,
            LedgerMutation::AckEarly,
            LedgerMutation::DropReleases,
        ] {
            assert_eq!(LedgerMutation::parse(m.label()), Some(m));
        }
        assert_eq!(LedgerMutation::parse("bogus"), None);
    }
}
