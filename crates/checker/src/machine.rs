//! The branching-execution machine: one abstract-MAC-layer state plus
//! every scheduler move available from it.
//!
//! Where the simulator in [`amacl_model::sim`] follows *one* schedule
//! chosen by a [`Scheduler`], an
//! [`ExploreMachine`] exposes the full set of moves the model's
//! nondeterministic scheduler could make — each in-flight message may
//! next be delivered to any neighbor that has not yet received it, any
//! fully-delivered broadcast may be acknowledged, and (within a
//! budget) any live node may crash, freezing its in-flight message
//! mid-broadcast. The [`Explorer`](crate::explore::Explorer) forks the
//! machine at every branch point.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use amacl_model::ids::{NodeId, Slot};
use amacl_model::prelude::*;
use amacl_model::proc::NodeCell;

/// One scheduler move.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Choice {
    /// Deliver `from`'s current message to neighbor `to`.
    Deliver {
        /// Broadcasting node (slot index).
        from: usize,
        /// Receiving neighbor (slot index).
        to: usize,
    },
    /// Acknowledge `0`'s current message (enabled once every live
    /// neighbor has received it).
    Ack(usize),
    /// Crash the node, freezing any in-flight message (mid-broadcast
    /// partial delivery). Consumes one unit of the crash budget.
    Crash(usize),
}

/// A forkable global state of an algorithm running on an arbitrary
/// topology under the abstract MAC layer rules.
///
/// `P` must be `Clone` (the explorer forks states) and `Debug` (global
/// states are fingerprinted through their debug representation, which
/// is deterministic for the `BTree`-based algorithm states used in
/// this workspace).
pub struct ExploreMachine<P: Process + Clone + std::fmt::Debug> {
    topo: Topology,
    procs: Vec<P>,
    cells: Vec<NodeCell<P::Msg>>,
    ids: Vec<NodeId>,
    /// The message each node currently has in flight, if any.
    outstanding: Vec<Option<P::Msg>>,
    /// Neighbors that have not yet received the current message.
    pending: Vec<BTreeSet<usize>>,
    crashed: Vec<bool>,
    crash_budget: usize,
    moves_taken: u64,
}

impl<P> Clone for ExploreMachine<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        // NodeCell owns an RNG and is not Clone; rebuild with
        // deterministic seeds and copy the observable state. Only
        // deterministic algorithms are explored, so RNG state is
        // irrelevant.
        let mut cells: Vec<NodeCell<P::Msg>> = (0..self.procs.len())
            .map(|i| NodeCell::new(i as u64))
            .collect();
        for (i, cell) in cells.iter_mut().enumerate() {
            cell.decision = self.cells[i].decision;
            cell.ts_seq = self.cells[i].ts_seq;
            cell.busy_discards = self.cells[i].busy_discards;
        }
        Self {
            topo: self.topo.clone(),
            procs: self.procs.clone(),
            cells,
            ids: self.ids.clone(),
            outstanding: self.outstanding.clone(),
            pending: self.pending.clone(),
            crashed: self.crashed.clone(),
            crash_budget: self.crash_budget,
            moves_taken: self.moves_taken,
        }
    }
}

impl<P> ExploreMachine<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    /// Builds a machine over `topo` (ids equal slot indices), runs
    /// every `on_start`, and collects the initial broadcasts.
    /// `crash_budget` bounds how many [`Choice::Crash`] moves the
    /// explored scheduler may make.
    ///
    /// # Panics
    ///
    /// Panics if `procs` does not provide one process per topology
    /// vertex.
    pub fn new(topo: Topology, mut procs: Vec<P>, crash_budget: usize) -> Self {
        let n = topo.len();
        assert_eq!(procs.len(), n, "one process per node");
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u64)).collect();
        let mut cells: Vec<NodeCell<P::Msg>> = (0..n).map(|i| NodeCell::new(i as u64)).collect();
        let mut outstanding: Vec<Option<P::Msg>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut ctx = cells[i].ctx(ids[i], Time::ZERO, false);
            procs[i].on_start(&mut ctx);
            outstanding.push(cells[i].outbox.take());
        }
        let mut m = Self {
            pending: vec![BTreeSet::new(); n],
            topo,
            procs,
            cells,
            ids,
            outstanding,
            crashed: vec![false; n],
            crash_budget,
            moves_taken: 0,
        };
        for i in 0..n {
            if m.outstanding[i].is_some() {
                m.pending[i] = m.neighbor_set(i);
            }
        }
        m
    }

    fn neighbor_set(&self, u: usize) -> BTreeSet<usize> {
        self.topo
            .neighbors(Slot(u))
            .iter()
            .map(|s| s.index())
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` if the machine has no nodes.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The process at `slot`, for state inspection.
    pub fn process(&self, slot: usize) -> &P {
        &self.procs[slot]
    }

    /// Whether `slot` has crashed.
    pub fn is_crashed(&self, slot: usize) -> bool {
        self.crashed[slot]
    }

    /// Remaining crash budget.
    pub fn crash_budget(&self) -> usize {
        self.crash_budget
    }

    /// Scheduler moves applied so far on this branch.
    pub fn moves_taken(&self) -> u64 {
        self.moves_taken
    }

    /// Per-slot decisions so far.
    pub fn decisions(&self) -> Vec<Option<Value>> {
        self.cells
            .iter()
            .map(|c| c.decision.map(|d| d.value))
            .collect()
    }

    /// Distinct decided values so far.
    pub fn decided_values(&self) -> BTreeSet<Value> {
        self.cells
            .iter()
            .filter_map(|c| c.decision.map(|d| d.value))
            .collect()
    }

    /// `true` when every non-crashed node has decided.
    pub fn all_alive_decided(&self) -> bool {
        (0..self.len()).all(|i| self.crashed[i] || self.cells[i].decision.is_some())
    }

    /// Live neighbors of `u` that still owe a receipt of `u`'s current
    /// message.
    fn live_pending(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.pending[u]
            .iter()
            .copied()
            .filter(|&v| !self.crashed[v])
    }

    /// Every scheduler move enabled in this state. Deliveries and acks
    /// come first, then crashes (if budget remains).
    pub fn choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for u in 0..self.len() {
            if self.crashed[u] || self.outstanding[u].is_none() {
                continue;
            }
            let mut any = false;
            for v in self.live_pending(u) {
                out.push(Choice::Deliver { from: u, to: v });
                any = true;
            }
            if !any {
                out.push(Choice::Ack(u));
            }
        }
        if self.crash_budget > 0 {
            for u in 0..self.len() {
                if !self.crashed[u] {
                    out.push(Choice::Crash(u));
                }
            }
        }
        out
    }

    /// `true` when no delivery or ack is enabled — the scheduler can
    /// stay here forever without violating any model obligation, so
    /// liveness properties are judged in these states. (Crash moves do
    /// not count: the scheduler is never obliged to crash anyone.)
    pub fn is_terminal(&self) -> bool {
        // A live node with a message in flight always enables a move
        // (a delivery while live recipients remain, the ack after).
        (0..self.len()).all(|u| self.crashed[u] || self.outstanding[u].is_none())
    }

    /// Applies a scheduler move.
    ///
    /// # Panics
    ///
    /// Panics if the move is not currently enabled.
    pub fn apply(&mut self, choice: Choice) {
        self.moves_taken += 1;
        // All callbacks observe clock zero: executions are untimed
        // event sequences (see the crate docs on scope).
        let now = Time::ZERO;
        match choice {
            Choice::Deliver { from, to } => {
                assert!(!self.crashed[from] && !self.crashed[to], "dead endpoint");
                assert!(self.pending[from].remove(&to), "no pending delivery");
                let msg = self.outstanding[from].clone().expect("message in flight");
                let busy = self.outstanding[to].is_some();
                let mut ctx = self.cells[to].ctx(self.ids[to], now, busy);
                self.procs[to].on_receive(msg, &mut ctx);
                if let Some(m) = self.cells[to].outbox.take() {
                    debug_assert!(self.outstanding[to].is_none());
                    self.outstanding[to] = Some(m);
                    self.pending[to] = self.neighbor_set(to);
                }
            }
            Choice::Ack(u) => {
                assert!(!self.crashed[u], "dead node");
                assert!(
                    self.outstanding[u].is_some() && self.live_pending(u).next().is_none(),
                    "ack requires full delivery to live neighbors"
                );
                self.outstanding[u] = None;
                self.pending[u].clear();
                let mut ctx = self.cells[u].ctx(self.ids[u], now, false);
                self.procs[u].on_ack(&mut ctx);
                if let Some(m) = self.cells[u].outbox.take() {
                    self.outstanding[u] = Some(m);
                    self.pending[u] = self.neighbor_set(u);
                }
            }
            Choice::Crash(u) => {
                assert!(!self.crashed[u], "node already crashed");
                assert!(self.crash_budget > 0, "crash budget exhausted");
                self.crash_budget -= 1;
                self.crashed[u] = true;
                // The in-flight message (if any) is frozen: remaining
                // neighbors never receive it.
            }
        }
    }

    /// A deterministic fingerprint of the global state, for memoized
    /// exploration. Excludes `moves_taken` so that converging
    /// interleavings merge.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for i in 0..self.len() {
            format!("{:?}", self.procs[i]).hash(&mut h);
            format!("{:?}", self.outstanding[i]).hash(&mut h);
            self.pending[i].iter().for_each(|v| v.hash(&mut h));
            0xFFu8.hash(&mut h);
            self.crashed[i].hash(&mut h);
            self.cells[i].decision.map(|d| d.value).hash(&mut h);
        }
        self.crash_budget.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Broadcast once; decide own input on ack.
    #[derive(Clone, Debug)]
    struct OneShot(Value);

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct Ping(u64);
    impl Payload for Ping {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for OneShot {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.broadcast(Ping(self.0));
        }
        fn on_receive(&mut self, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.decide(self.0);
        }
    }

    fn line3() -> ExploreMachine<OneShot> {
        ExploreMachine::new(
            Topology::line(3),
            vec![OneShot(0), OneShot(0), OneShot(0)],
            0,
        )
    }

    #[test]
    fn initial_choices_follow_topology() {
        let m = line3();
        let choices = m.choices();
        // Middle node owes two deliveries, endpoints one each.
        assert_eq!(choices.len(), 4);
        assert!(choices.contains(&Choice::Deliver { from: 1, to: 0 }));
        assert!(choices.contains(&Choice::Deliver { from: 1, to: 2 }));
        assert!(choices.contains(&Choice::Deliver { from: 0, to: 1 }));
        assert!(
            !choices.contains(&Choice::Deliver { from: 0, to: 2 }),
            "not adjacent"
        );
    }

    #[test]
    fn ack_enabled_after_full_delivery() {
        let mut m = line3();
        m.apply(Choice::Deliver { from: 0, to: 1 });
        assert!(m.choices().contains(&Choice::Ack(0)));
        m.apply(Choice::Ack(0));
        assert_eq!(m.decisions()[0], Some(0));
    }

    #[test]
    fn terminal_once_everyone_acked() {
        let mut m = line3();
        for c in [
            Choice::Deliver { from: 0, to: 1 },
            Choice::Deliver { from: 1, to: 0 },
            Choice::Deliver { from: 1, to: 2 },
            Choice::Deliver { from: 2, to: 1 },
            Choice::Ack(0),
            Choice::Ack(1),
            Choice::Ack(2),
        ] {
            assert!(!m.is_terminal());
            m.apply(c);
        }
        assert!(m.is_terminal());
        assert!(m.all_alive_decided());
        assert_eq!(m.moves_taken(), 7);
    }

    #[test]
    fn crash_consumes_budget_and_freezes_message() {
        let mut m = ExploreMachine::new(
            Topology::line(3),
            vec![OneShot(0), OneShot(0), OneShot(0)],
            1,
        );
        assert!(m.choices().contains(&Choice::Crash(1)));
        m.apply(Choice::Crash(1));
        assert!(m.is_crashed(1));
        assert_eq!(m.crash_budget(), 0);
        assert!(!m.choices().iter().any(|c| matches!(c, Choice::Crash(_))));
        // Node 1's message is frozen; endpoints' messages had only node
        // 1 as recipient, which is now dead, so their acks fire.
        assert!(m.choices().contains(&Choice::Ack(0)));
        assert!(m.choices().contains(&Choice::Ack(2)));
    }

    #[test]
    fn fingerprints_merge_converging_interleavings() {
        let mut a = line3();
        let mut b = line3();
        a.apply(Choice::Deliver { from: 1, to: 0 });
        a.apply(Choice::Deliver { from: 1, to: 2 });
        b.apply(Choice::Deliver { from: 1, to: 2 });
        b.apply(Choice::Deliver { from: 1, to: 0 });
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), line3().fingerprint());
    }

    #[test]
    fn clone_is_a_true_fork() {
        let mut m = line3();
        let fork = m.clone();
        m.apply(Choice::Deliver { from: 0, to: 1 });
        assert_ne!(m.fingerprint(), fork.fingerprint());
        assert_eq!(fork.moves_taken(), 0);
    }

    #[test]
    #[should_panic(expected = "no pending delivery")]
    fn double_delivery_rejected() {
        let mut m = line3();
        m.apply(Choice::Deliver { from: 0, to: 1 });
        m.apply(Choice::Deliver { from: 0, to: 1 });
    }

    #[test]
    #[should_panic(expected = "one process per node")]
    fn process_count_mismatch_rejected() {
        ExploreMachine::new(Topology::line(3), vec![OneShot(0)], 0);
    }
}
