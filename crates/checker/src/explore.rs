//! Depth-first exhaustive exploration with memoization.
//!
//! [`Explorer`] owns a root [`ExploreMachine`] and walks every
//! scheduler branch reachable from it, checking:
//!
//! * **agreement** in every state — at most one distinct decided value;
//! * **validity** in every state — every decided value was some node's
//!   input;
//! * **termination** in every [terminal](ExploreMachine::is_terminal)
//!   state — every live node has decided.
//!
//! States are deduplicated by [`ExploreMachine::fingerprint`], so the
//! walk covers the reachable state *graph* rather than the much larger
//! execution tree. Every violation carries the choice sequence that
//! reached it, replayable against a fresh machine.

use std::collections::{HashSet, VecDeque};

use amacl_model::prelude::*;

use crate::machine::{Choice, ExploreMachine};

/// Which order the state graph is walked in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchOrder {
    /// Depth-first: lowest memory footprint per frontier entry; the
    /// default.
    #[default]
    Dfs,
    /// Breadth-first: the first violation found is reached by a
    /// *minimum-length* schedule — the counterexample a human wants to
    /// read. Costs a wider frontier.
    Bfs,
}

/// Exploration limits. Defaults are sized for the small networks
/// exhaustive checking is meant for.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Stop after visiting this many distinct states.
    pub max_states: usize,
    /// Do not extend branches beyond this many scheduler moves.
    pub max_depth: usize,
    /// Stop after recording this many violations (1 = stop at first).
    pub max_violations: usize,
    /// Walk order; [`SearchOrder::Bfs`] yields minimal counterexamples.
    pub order: SearchOrder,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            max_depth: 10_000,
            max_violations: 1,
            order: SearchOrder::Dfs,
        }
    }
}

/// What went wrong in a reached state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Two live nodes decided different values.
    Agreement,
    /// A node decided a value that was nobody's input.
    Validity,
    /// A terminal state with a live undecided node.
    Termination,
}

/// A property violation, with the schedule that produced it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which property failed.
    pub kind: ViolationKind,
    /// The scheduler moves from the initial state to the bad state.
    pub schedule: Vec<Choice>,
    /// Per-slot decisions in the bad state.
    pub decisions: Vec<Option<Value>>,
}

/// Aggregate result of one exploration.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Distinct states visited.
    pub states: usize,
    /// Terminal states reached.
    pub terminal_states: usize,
    /// Deepest branch followed (in scheduler moves).
    pub max_depth_reached: usize,
    /// Violations found (up to the configured cap).
    pub violations: Vec<Violation>,
    /// `true` if a cap stopped the walk before the space was covered —
    /// a clean but truncated run is *not* a proof.
    pub truncated: bool,
}

impl ExploreOutcome {
    /// `true` when the full reachable space was covered and no property
    /// failed: a machine-checked correctness certificate for this
    /// network and input assignment.
    pub fn verified(&self) -> bool {
        !self.truncated && self.violations.is_empty()
    }

    /// Panics with the first violation unless [`Self::verified`].
    ///
    /// # Panics
    ///
    /// Panics if the exploration was truncated or found a violation.
    pub fn assert_verified(&self) {
        assert!(
            !self.truncated,
            "exploration truncated after {} states — raise the caps",
            self.states
        );
        assert!(
            self.violations.is_empty(),
            "property violation: {:?}",
            self.violations[0]
        );
    }
}

/// An exhaustive checker for one (algorithm, topology, inputs, crash
/// budget) instance.
///
/// # Examples
///
/// ```
/// use amacl_checker::{ExploreConfig, Explorer};
/// use amacl_model::prelude::*;
///
/// /// Broadcast once, decide own value at the ack.
/// #[derive(Clone, Debug)]
/// struct OneShot(Value);
/// #[derive(Clone, Copy, Debug)]
/// struct Ping;
/// impl Payload for Ping {
///     fn id_count(&self) -> usize { 0 }
/// }
/// impl Process for OneShot {
///     type Msg = Ping;
///     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) { ctx.broadcast(Ping); }
///     fn on_receive(&mut self, _: Ping, _: &mut Context<'_, Ping>) {}
///     fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) { ctx.decide(self.0); }
/// }
///
/// // Uniform inputs: agreement holds on every schedule.
/// let outcome = Explorer::new(
///     Topology::clique(2),
///     vec![OneShot(1), OneShot(1)],
///     vec![1, 1],
///     0,
/// )
/// .run(ExploreConfig::default());
/// assert!(outcome.verified());
/// ```
pub struct Explorer<P: Process + Clone + std::fmt::Debug> {
    root: ExploreMachine<P>,
    inputs: Vec<Value>,
}

impl<P> Explorer<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    /// Builds an explorer over `topo` with one process and one input
    /// per node, and a scheduler crash budget.
    ///
    /// # Panics
    ///
    /// Panics if `procs` or `inputs` length does not match the
    /// topology.
    pub fn new(topo: Topology, procs: Vec<P>, inputs: Vec<Value>, crash_budget: usize) -> Self {
        assert_eq!(inputs.len(), topo.len(), "one input per node");
        Self {
            root: ExploreMachine::new(topo, procs, crash_budget),
            inputs,
        }
    }

    /// Checks safety in `m`'s current state, and liveness if terminal.
    fn check_state(
        &self,
        m: &ExploreMachine<P>,
        path: &[Choice],
        out: &mut ExploreOutcome,
        cfg: &ExploreConfig,
    ) {
        let decided = m.decided_values();
        if decided.len() > 1 {
            out.violations.push(Violation {
                kind: ViolationKind::Agreement,
                schedule: path.to_vec(),
                decisions: m.decisions(),
            });
        } else if decided.iter().any(|v| !self.inputs.contains(v)) {
            out.violations.push(Violation {
                kind: ViolationKind::Validity,
                schedule: path.to_vec(),
                decisions: m.decisions(),
            });
        }
        if m.is_terminal() {
            out.terminal_states += 1;
            if !m.all_alive_decided() && out.violations.len() < cfg.max_violations {
                out.violations.push(Violation {
                    kind: ViolationKind::Termination,
                    schedule: path.to_vec(),
                    decisions: m.decisions(),
                });
            }
        }
    }

    /// Runs the exhaustive walk.
    pub fn run(&self, cfg: ExploreConfig) -> ExploreOutcome {
        let mut out = ExploreOutcome {
            states: 0,
            terminal_states: 0,
            max_depth_reached: 0,
            violations: Vec::new(),
            truncated: false,
        };
        // Iteration-order audit (the PR 2 ack-order leak class): this
        // is the walk's only hash collection, and it is queried by
        // membership alone — never iterated — so hash order cannot
        // reach the walk. Visit order is fully determined by the
        // explicit frontier below plus `ExploreMachine::choices()`,
        // which enumerates from dense per-slot tables in slot order.
        let mut seen: HashSet<u64> = HashSet::new();
        // Explicit frontier: (state, path to it). Paths are stored per
        // frame; for the small spaces this targets, the clone cost is
        // dwarfed by callback execution. A deque serves both walk
        // orders: DFS pops the back, BFS pops the front.
        let mut frontier: VecDeque<(ExploreMachine<P>, Vec<Choice>)> = VecDeque::new();
        seen.insert(self.root.fingerprint());
        frontier.push_back((self.root.clone(), Vec::new()));

        while let Some((m, path)) = match cfg.order {
            SearchOrder::Dfs => frontier.pop_back(),
            SearchOrder::Bfs => frontier.pop_front(),
        } {
            out.states += 1;
            out.max_depth_reached = out.max_depth_reached.max(path.len());
            self.check_state(&m, &path, &mut out, &cfg);
            if out.violations.len() >= cfg.max_violations {
                return out;
            }
            if out.states >= cfg.max_states {
                out.truncated = true;
                return out;
            }
            if path.len() >= cfg.max_depth {
                out.truncated = true;
                continue;
            }
            for choice in m.choices() {
                let mut child = m.clone();
                child.apply(choice);
                if seen.insert(child.fingerprint()) {
                    let mut child_path = path.clone();
                    child_path.push(choice);
                    frontier.push_back((child, child_path));
                }
            }
        }
        out
    }

    /// Forks a fresh copy of the initial state (used by the fuzzer).
    pub(crate) fn fork_root(&self) -> ExploreMachine<P> {
        self.root.clone()
    }

    /// The per-slot input assignment being checked.
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }

    /// Replays a schedule (e.g. a [`Violation::schedule`]) against a
    /// fresh copy of the initial state, returning the resulting
    /// machine for inspection.
    ///
    /// # Panics
    ///
    /// Panics if the schedule applies a move that is not enabled —
    /// which cannot happen for schedules produced by [`Self::run`].
    pub fn replay(&self, schedule: &[Choice]) -> ExploreMachine<P> {
        let mut m = self.root.clone();
        for &c in schedule {
            m.apply(c);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Broadcast once; decide own input at the ack. Agreement fails
    /// for mixed inputs — a deliberately broken algorithm for testing
    /// the checker itself.
    #[derive(Clone, Debug)]
    struct Selfish(Value);

    #[derive(Clone, Copy, Debug)]
    struct Ping;
    impl Payload for Ping {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for Selfish {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.broadcast(Ping);
        }
        fn on_receive(&mut self, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.decide(self.0);
        }
    }

    /// Never broadcasts, never decides: a liveness counterexample.
    #[derive(Clone, Debug)]
    struct Mute;

    impl Process for Mute {
        type Msg = Ping;
        fn on_start(&mut self, _ctx: &mut Context<'_, Ping>) {}
        fn on_receive(&mut self, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_ack(&mut self, _ctx: &mut Context<'_, Ping>) {}
    }

    #[test]
    fn uniform_selfish_verifies() {
        let out = Explorer::new(
            Topology::clique(3),
            vec![Selfish(1), Selfish(1), Selfish(1)],
            vec![1, 1, 1],
            0,
        )
        .run(ExploreConfig::default());
        out.assert_verified();
        assert!(out.states > 1);
        assert!(out.terminal_states >= 1);
    }

    #[test]
    fn mixed_selfish_violates_agreement_with_schedule() {
        let explorer = Explorer::new(
            Topology::clique(2),
            vec![Selfish(0), Selfish(1)],
            vec![0, 1],
            0,
        );
        let out = explorer.run(ExploreConfig::default());
        assert!(!out.verified());
        let v = &out.violations[0];
        assert_eq!(v.kind, ViolationKind::Agreement);
        // The schedule replays to the same bad state.
        let m = explorer.replay(&v.schedule);
        assert_eq!(m.decided_values().len(), 2);
    }

    /// Companion to the iteration-order audit on [`Explorer::run`]'s
    /// `seen` set: with the only hash collection queried by membership
    /// alone, repeated walks — violation schedules and decision bytes
    /// included — must be identical, under both search orders and with
    /// crashes in play.
    #[test]
    fn walks_are_deterministic_across_runs() {
        for order in [SearchOrder::Dfs, SearchOrder::Bfs] {
            let run = || {
                Explorer::new(
                    Topology::clique(3),
                    vec![Selfish(0), Selfish(1), Selfish(1)],
                    vec![0, 1, 1],
                    1,
                )
                .run(ExploreConfig {
                    order,
                    max_violations: 4,
                    ..ExploreConfig::default()
                })
            };
            let (a, b) = (run(), run());
            assert_eq!(a.states, b.states);
            assert_eq!(a.max_depth_reached, b.max_depth_reached);
            assert_eq!(a.violations.len(), b.violations.len());
            for (x, y) in a.violations.iter().zip(&b.violations) {
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.schedule, y.schedule);
                assert_eq!(x.decisions, y.decisions);
            }
        }
    }

    #[test]
    fn mute_algorithm_violates_termination() {
        let out = Explorer::new(Topology::clique(2), vec![Mute, Mute], vec![0, 0], 0)
            .run(ExploreConfig::default());
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, ViolationKind::Termination);
        // The initial state is already terminal: nobody ever broadcast.
        assert!(out.violations[0].schedule.is_empty());
    }

    #[test]
    fn bfs_finds_a_minimal_counterexample() {
        // BFS layers by schedule length, so the first violation found
        // has the minimum number of moves; DFS may find a longer one.
        let explorer = Explorer::new(
            Topology::clique(2),
            vec![Selfish(0), Selfish(1)],
            vec![0, 1],
            0,
        );
        let bfs = explorer.run(ExploreConfig {
            order: SearchOrder::Bfs,
            ..ExploreConfig::default()
        });
        let dfs = explorer.run(ExploreConfig::default());
        let bfs_len = bfs.violations[0].schedule.len();
        assert!(bfs_len <= dfs.violations[0].schedule.len());
        // Selfish needs both nodes acked to disagree: deliver+ack each
        // = 4 moves minimum... but the second delivery is not needed
        // for the second ack to become enabled only after delivery, so
        // the true minimum is deliver(0,1), ack both after full
        // delivery: 2 delivers + 2 acks = 4.
        assert_eq!(bfs_len, 4, "{:?}", bfs.violations[0].schedule);
    }

    #[test]
    fn bfs_and_dfs_agree_on_verification() {
        for order in [SearchOrder::Dfs, SearchOrder::Bfs] {
            let out = Explorer::new(
                Topology::clique(3),
                vec![Selfish(1), Selfish(1), Selfish(1)],
                vec![1, 1, 1],
                0,
            )
            .run(ExploreConfig {
                order,
                ..ExploreConfig::default()
            });
            assert!(out.verified(), "{order:?}");
        }
    }

    #[test]
    fn state_cap_reports_truncation() {
        let out = Explorer::new(
            Topology::clique(3),
            vec![Selfish(1), Selfish(1), Selfish(1)],
            vec![1, 1, 1],
            0,
        )
        .run(ExploreConfig {
            max_states: 2,
            ..ExploreConfig::default()
        });
        assert!(out.truncated);
        assert!(!out.verified());
    }

    #[test]
    fn depth_cap_reports_truncation() {
        let out = Explorer::new(
            Topology::clique(3),
            vec![Selfish(1), Selfish(1), Selfish(1)],
            vec![1, 1, 1],
            0,
        )
        .run(ExploreConfig {
            max_depth: 1,
            ..ExploreConfig::default()
        });
        assert!(out.truncated);
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn input_mismatch_rejected() {
        Explorer::new(Topology::clique(2), vec![Mute, Mute], vec![0], 0);
    }
}
