//! Schedule fuzzing: random walks through the *full* scheduler
//! nondeterminism space.
//!
//! Exhaustive exploration ([`Explorer::run`](crate::Explorer::run))
//! covers every schedule but only scales to a few nodes. Delay-based
//! random schedulers (`RandomScheduler`) scale to hundreds of nodes
//! but sample a *restricted* adversary: delays are drawn per
//! broadcast, so the relative order of deliveries is correlated with
//! time. The fuzzer sits between the two — it walks the same
//! branching [`ExploreMachine`] the exhaustive
//! checker uses, picking one enabled move uniformly at random per
//! step, which can starve a node arbitrarily long, interleave
//! deliveries in any order, and place crashes at any enabled point.
//! Safety is checked after every move; termination at the end of each
//! walk.
//!
//! A clean fuzz run is evidence over the *unrestricted* adversary at
//! sizes the exhaustive checker cannot reach; a violation comes with
//! the exact schedule, replayable like any explorer counterexample.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::explore::{Violation, ViolationKind};
use crate::machine::ExploreMachine;
use crate::Explorer;

use amacl_model::prelude::*;

/// Limits for one fuzzing campaign.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Number of independent random walks.
    pub walks: usize,
    /// Per-walk move cap (walks hitting it count as truncated, not
    /// failed — liveness is only judged at genuine terminal states).
    pub max_moves: usize,
    /// RNG seed; walks use `seed, seed+1, ...` so campaigns are
    /// reproducible and individually replayable.
    pub seed: u64,
    /// Stop the campaign after this many violations.
    pub max_violations: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            walks: 100,
            max_moves: 100_000,
            seed: 0,
            max_violations: 1,
        }
    }
}

/// Aggregate result of a fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Walks executed.
    pub walks: usize,
    /// Walks that ended with every live node decided (the simulator's
    /// stop rule — algorithms whose services keep broadcasting never
    /// reach a quiescent terminal state).
    pub decided_walks: usize,
    /// Walks that reached a genuine terminal state.
    pub terminal_walks: usize,
    /// Walks cut off by the move cap.
    pub truncated_walks: usize,
    /// Total scheduler moves across all walks.
    pub total_moves: u64,
    /// Longest walk, in moves.
    pub max_walk_moves: usize,
    /// Violations found (with schedules).
    pub violations: Vec<Violation>,
}

impl FuzzOutcome {
    /// `true` when no walk violated a property (terminal or not).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the first violation if the campaign was not clean.
    ///
    /// # Panics
    ///
    /// Panics when a violation was recorded.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "fuzz violation: {:?}",
            self.violations[0]
        );
    }
}

impl<P> Explorer<P>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    /// Runs a fuzzing campaign: `cfg.walks` independent uniformly
    /// random walks from the initial state, each checking agreement
    /// and validity after every move and termination at terminal
    /// states.
    pub fn fuzz(&self, cfg: FuzzConfig) -> FuzzOutcome {
        let mut out = FuzzOutcome {
            walks: 0,
            decided_walks: 0,
            terminal_walks: 0,
            truncated_walks: 0,
            total_moves: 0,
            max_walk_moves: 0,
            violations: Vec::new(),
        };
        for w in 0..cfg.walks {
            let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(w as u64));
            let mut m = self.fork_root();
            let mut path = Vec::new();
            out.walks += 1;
            loop {
                if let Some(kind) = safety_violation(&m, self.inputs()) {
                    out.violations.push(Violation {
                        kind,
                        schedule: path.clone(),
                        decisions: m.decisions(),
                    });
                    break;
                }
                if m.all_alive_decided() {
                    // The simulator's stop rule: consensus is complete;
                    // service chatter past this point proves nothing.
                    out.decided_walks += 1;
                    break;
                }
                let choices = m.choices();
                if choices.is_empty() {
                    out.terminal_walks += 1;
                    out.violations.push(Violation {
                        kind: ViolationKind::Termination,
                        schedule: path.clone(),
                        decisions: m.decisions(),
                    });
                    break;
                }
                if path.len() >= cfg.max_moves {
                    out.truncated_walks += 1;
                    break;
                }
                let c = choices[rng.gen_range(0..choices.len())];
                m.apply(c);
                path.push(c);
                out.total_moves += 1;
            }
            out.max_walk_moves = out.max_walk_moves.max(path.len());
            if out.violations.len() >= cfg.max_violations {
                break;
            }
        }
        out
    }
}

fn safety_violation<P>(m: &ExploreMachine<P>, inputs: &[Value]) -> Option<ViolationKind>
where
    P: Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug,
{
    let decided = m.decided_values();
    if decided.len() > 1 {
        Some(ViolationKind::Agreement)
    } else if decided.iter().any(|v| !inputs.contains(v)) {
        Some(ViolationKind::Validity)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amacl_model::proc::Context;

    /// Broadcast once, decide own value at the ack (breaks agreement
    /// for mixed inputs).
    #[derive(Clone, Debug)]
    struct Selfish(Value);

    #[derive(Clone, Copy, Debug)]
    struct Ping;
    impl Payload for Ping {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for Selfish {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.broadcast(Ping);
        }
        fn on_receive(&mut self, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.decide(self.0);
        }
    }

    #[test]
    fn clean_campaign_on_uniform_inputs() {
        let out =
            Explorer::new(Topology::ring(5), vec![Selfish(1); 5], vec![1; 5], 0).fuzz(FuzzConfig {
                walks: 50,
                seed: 3,
                ..FuzzConfig::default()
            });
        out.assert_clean();
        assert_eq!(out.walks, 50);
        assert_eq!(out.decided_walks, 50);
        assert_eq!(out.terminal_walks, 0);
        assert!(out.total_moves > 0);
        assert!(
            out.max_walk_moves >= 15,
            "5 broadcasts, 2 deliveries + ack each"
        );
    }

    #[test]
    fn finds_agreement_violation_with_replayable_schedule() {
        let explorer = Explorer::new(
            Topology::clique(2),
            vec![Selfish(0), Selfish(1)],
            vec![0, 1],
            0,
        );
        let out = explorer.fuzz(FuzzConfig {
            walks: 20,
            seed: 0,
            ..FuzzConfig::default()
        });
        assert!(!out.clean());
        let v = &out.violations[0];
        assert_eq!(v.kind, ViolationKind::Agreement);
        let m = explorer.replay(&v.schedule);
        assert_eq!(m.decided_values().len(), 2);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let run = || {
            Explorer::new(Topology::line(4), vec![Selfish(0); 4], vec![0; 4], 0).fuzz(FuzzConfig {
                walks: 10,
                seed: 42,
                ..FuzzConfig::default()
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.total_moves, b.total_moves);
        assert_eq!(a.max_walk_moves, b.max_walk_moves);
    }

    #[test]
    fn move_cap_truncates_rather_than_fails() {
        // Mute node: never terminal because... actually Selfish IS
        // terminal quickly; use a cap below the walk length instead.
        let out = Explorer::new(Topology::clique(3), vec![Selfish(1); 3], vec![1; 3], 0).fuzz(
            FuzzConfig {
                walks: 5,
                max_moves: 2,
                seed: 1,
                ..FuzzConfig::default()
            },
        );
        assert_eq!(out.truncated_walks, 5);
        assert!(out.clean(), "truncation is not a violation");
    }
}
