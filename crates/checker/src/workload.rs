//! Open-loop heavy-traffic workloads with latency-SLO reporting.
//!
//! Everything else in this crate is *closed-loop*: fix `n`, run one
//! consensus instance to quiescence, report. A production deployment
//! is judged open-loop — client requests arrive continuously, at a
//! rate the service does not control, against a long-lived consensus
//! group — and the numbers that matter are sustained decisions/sec and
//! the p50/p99/p999 submit→decide latency. This module adds that
//! workload layer **on top of** the existing engine, without touching
//! the stepper:
//!
//! * [`WorkloadSpec`] — a pluggable arrival process (deterministic
//!   rate or Poisson via the in-repo rand shim, with optional
//!   LogNormal service times), fully *pre-materialized* into a request
//!   schedule by [`WorkloadSpec::requests`], so the workload is a pure
//!   function of the spec and never perturbs engine determinism;
//! * [`OpenLoopNode`] — a sustained multi-instance consensus driver
//!   that pipelines slots over the existing
//!   [`BitwiseTwoPhase`] machinery: slot 0 is the proposer, requests
//!   queue in its backlog, and each decided instance immediately
//!   starts the next;
//! * `Sim::inject` + `Sim::run_until` (`amacl_model`) are the
//!   pause/resume seam: the driver alternates "advance virtual time to
//!   the next arrival" with "inject the request into the proposer",
//!   and injected broadcasts take the normal scheduling path — so one
//!   fixed-seed workload is **byte-identical** (trace, histogram,
//!   per-request latencies) across queue cores, shard counts, and
//!   thread counts, exactly like the closed-loop sweeps;
//! * [`LatencyHistogram`] — fixed-bucket (power-of-two) submit→decide
//!   latency histogram reporting p50/p99/p999 and the mean;
//! * [`LoadScenario`] — the sustained-load scenario catalogue
//!   (steady state, crash during steady state, partition under
//!   backlog) with the same identity proof columns
//!   (`cores`/`shards`/`threaded identical`) the closed-loop sweep
//!   rows carry, swept by [`sweep_load`].
//!
//! # Instance pipelining and why it stays live
//!
//! Each consensus instance is one fresh [`BitwiseTwoPhase`] machine;
//! messages are wrapped in [`LoadMsg`] carrying the instance number.
//! With a single proposer every candidate in one instance carries the
//! same value, so no node ever observes conflicting evidence — rounds
//! always finish on the phase-2 ack, the bivalent witness machinery
//! never arms, and a crashed *follower* can never stall the pipeline
//! (the stall risk of Algorithm 1's witness sets needs conflicting
//! proposals). Sequential entry is guaranteed by ack ordering: any
//! instance-`k+1` broadcast happens only after its sender finished
//! instance `k`, which required the proposer's instance-`k` broadcast
//! to be acked — i.e. delivered to *every* live node — so every live
//! node sees instance `k` before any instance-`k+1` traffic. Messages
//! that do race ahead are buffered per instance and replayed.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

use amacl_core::multivalued::{BitwiseTwoPhase, BwMsg};
use amacl_model::ids::Slot;
use amacl_model::mac::{MacReport, SchedulerFactory};
use amacl_model::msg::Payload;
use amacl_model::proc::{Context, NodeCell, Process, Value};
use amacl_model::sim::config::EngineConfig;
use amacl_model::sim::crash::{CrashPlan, CrashSpec};
use amacl_model::sim::engine::{RunReport, SimBuilder};
use amacl_model::sim::queue::QueueCoreKind;
use amacl_model::sim::sched::partition::{DirectedCut, EdgeDelayScheduler};
use amacl_model::sim::sched::random::RandomScheduler;
use amacl_model::sim::time::Time;
use amacl_model::sim::trace::Trace;
use amacl_model::topo::Topology;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which arrival process generates request times.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalKind {
    /// Evenly spaced arrivals at the target rate.
    Deterministic,
    /// Exponential inter-arrival times with the target mean rate
    /// (sampled from the workload RNG via inverse transform).
    Poisson,
}

impl ArrivalKind {
    /// Short stable name (used in flags and bench rows).
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Deterministic => "det",
            ArrivalKind::Poisson => "poisson",
        }
    }
}

impl std::str::FromStr for ArrivalKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "det" | "deterministic" => Ok(ArrivalKind::Deterministic),
            "poisson" => Ok(ArrivalKind::Poisson),
            other => Err(format!("unknown arrival process `{other}` (det|poisson)")),
        }
    }
}

impl std::fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A LogNormal service-time model: each request carries an extra
/// client-side service delay `exp(mu + sigma * Z)` ticks (`Z` standard
/// normal via Box–Muller) between its arrival (the latency clock
/// start) and the moment it is handed to the proposer.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LogNormalService {
    /// Mean of the underlying normal (in ln-ticks).
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

/// One materialized client request: it arrives (and the latency clock
/// starts) at `submitted`, reaches the proposer at `injected`
/// (`submitted` plus any service delay), and proposes `value`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadRequest {
    /// Arrival time — the latency clock's zero.
    pub submitted: Time,
    /// When the request is injected into the proposer.
    pub injected: Time,
    /// Proposed value (fits in the spec's bit width).
    pub value: Value,
}

/// An open-loop workload description: arrival process, target rate,
/// duration, consensus group size and value width, and the seed that
/// makes the whole request schedule (and the engine run over it) a
/// pure function of this struct.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkloadSpec {
    /// Arrival process.
    pub arrival: ArrivalKind,
    /// Target arrival rate, in requests per 1000 virtual ticks.
    pub rate_per_kilotick: u64,
    /// Length of the arrival window, in ticks (arrivals stop after
    /// this; the run then drains).
    pub duration: u64,
    /// Extra ticks after the arrival window for the backlog to drain.
    pub drain: u64,
    /// Optional LogNormal service delay between arrival and injection.
    pub service: Option<LogNormalService>,
    /// Consensus group size (clique).
    pub n: usize,
    /// Value width in bits (1..=32); each instance decides one value.
    pub bits: u32,
    /// Seed for the workload RNG, the engine, and the scheduler.
    pub seed: u64,
    /// The scheduler's `F_ack` bound.
    pub f_ack: u64,
}

impl WorkloadSpec {
    /// A small default spec used by smoke tests and `amacl load`
    /// defaults: Poisson arrivals, 5 requests per kilotick for 20k
    /// ticks, n = 4, 8-bit values.
    pub fn default_spec() -> Self {
        Self {
            arrival: ArrivalKind::Poisson,
            rate_per_kilotick: 5,
            duration: 20_000,
            drain: 20_000,
            service: None,
            n: 4,
            bits: 8,
            seed: 1,
            f_ack: 8,
        }
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 {
            return Err(format!("workload needs n >= 2, got {}", self.n));
        }
        if !(1..=32).contains(&self.bits) {
            return Err(format!("bits must be in 1..=32, got {}", self.bits));
        }
        if self.rate_per_kilotick == 0 {
            return Err("rate must be at least 1 request per kilotick".into());
        }
        if self.duration == 0 {
            return Err("duration must be at least 1 tick".into());
        }
        if self.f_ack == 0 {
            return Err("f_ack must be at least 1".into());
        }
        if let Some(s) = self.service {
            if !s.mu.is_finite() || !s.sigma.is_finite() || s.sigma < 0.0 {
                return Err("service mu/sigma must be finite with sigma >= 0".into());
            }
        }
        Ok(())
    }

    /// Materializes the request schedule: arrival times from the
    /// arrival process, values drawn uniformly in `[0, 2^bits)`, and
    /// injection times `arrival + service` — sorted by injection time
    /// (the order the driver replays them in). Pure function of the
    /// spec; the workload RNG is dedicated, so this never touches
    /// engine or scheduler randomness.
    pub fn requests(&self) -> Vec<LoadRequest> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x6F70_656E_6C6F_6F70);
        let mean_gap = 1000.0 / self.rate_per_kilotick as f64;
        let cap: u64 = 1u64 << self.bits;
        let mut reqs = Vec::new();
        let mut clock = 0.0f64;
        loop {
            let gap = match self.arrival {
                ArrivalKind::Deterministic => mean_gap,
                // Inverse-transform exponential; 1 - u keeps the
                // argument in (0, 1] so ln never sees zero.
                ArrivalKind::Poisson => -(1.0 - rng.gen_range(0.0..1.0)).ln() * mean_gap,
            };
            clock += gap;
            let submitted = clock.round() as u64;
            if submitted >= self.duration {
                break;
            }
            let value = rng.gen_range(0..cap);
            let service = match self.service {
                None => 0,
                Some(LogNormalService { mu, sigma }) => {
                    // Box–Muller: two uniforms to one standard normal.
                    let u1 = 1.0 - rng.gen_range(0.0..1.0);
                    let u2 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    (mu + sigma * z).exp().round().max(0.0) as u64
                }
            };
            reqs.push(LoadRequest {
                submitted: Time(submitted),
                injected: Time(submitted + service),
                value,
            });
        }
        // Service delays can reorder injection relative to arrival;
        // the driver needs non-decreasing injection times. Stable, so
        // equal injection ticks keep arrival order.
        reqs.sort_by_key(|r| r.injected);
        reqs
    }

    /// The virtual-time horizon of a run over this spec.
    pub fn horizon(&self) -> Time {
        let last_inject = self
            .requests()
            .last()
            .map(|r| r.injected.ticks())
            .unwrap_or(0);
        Time(last_inject.max(self.duration).saturating_add(self.drain))
    }
}

/// A message of the open-loop pipeline: one [`BitwiseTwoPhase`]
/// message tagged with the consensus instance it belongs to. The
/// instance number is sequencing metadata (like the round number
/// inside), not a node id, so the id budget stays 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadMsg {
    /// Which consensus instance (0-based) this message belongs to.
    pub instance: u64,
    /// The wrapped protocol message.
    pub inner: BwMsg,
}

impl Payload for LoadMsg {
    fn id_count(&self) -> usize {
        self.inner.id_count()
    }
}

/// One request the proposer accepted, with its latency endpoints.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompletedRequest {
    /// The decided value (equals the request's proposed value: the
    /// proposer is the only source of candidates in its instance).
    pub value: Value,
    /// Arrival time (latency clock start).
    pub submitted: Time,
    /// Decision time at the proposer.
    pub decided: Time,
}

impl CompletedRequest {
    /// Submit→decide latency in ticks.
    pub fn latency(&self) -> u64 {
        self.decided.ticks().saturating_sub(self.submitted.ticks())
    }
}

/// A queued request at the proposer.
#[derive(Clone, Copy, Debug)]
struct PendingRequest {
    value: Value,
    submitted: Time,
}

/// The sustained multi-instance consensus driver at one node: wraps a
/// sequence of [`BitwiseTwoPhase`] machines (one per instance) behind
/// one long-lived engine process.
///
/// Slot 0 is the **proposer**: requests land in its backlog via
/// [`OpenLoopNode::submit`] (driven through `Sim::inject`), and it
/// starts instance `k + 1` the moment instance `k` decides. Every
/// other node is a **follower**: it enters an instance on the first
/// message it sees for it, adopting the carried candidate as its
/// input. Inner machines run against a private [`NodeCell`]; requested
/// broadcasts are forwarded to the real MAC wrapped in [`LoadMsg`],
/// and inner decisions are harvested per instance (the engine-level
/// decision slot stays unused — a long-lived service never "decides").
pub struct OpenLoopNode {
    bits: u32,
    is_proposer: bool,
    /// Current instance (or, when idle, the next instance to enter).
    instance: u64,
    /// The running instance's machine; `None` between instances.
    /// Invariant: a present machine is not done.
    machine: Option<BitwiseTwoPhase>,
    /// Private per-node state the inner machine's contexts borrow.
    cell: NodeCell<BwMsg>,
    /// Messages for instances not entered yet, in arrival order.
    future: BTreeMap<u64, Vec<BwMsg>>,
    /// Proposer: requests waiting for their instance.
    backlog: VecDeque<PendingRequest>,
    /// Proposer: the request the running instance is deciding.
    in_flight: Option<PendingRequest>,
    /// Proposer: finished requests with latency endpoints.
    completed: Vec<CompletedRequest>,
    /// Instances this node has decided (followers too).
    decided_instances: u64,
}

impl OpenLoopNode {
    /// A node of an open-loop group deciding `bits`-bit values.
    /// `is_proposer` must be true for exactly slot 0.
    pub fn new(bits: u32, is_proposer: bool) -> Self {
        Self {
            bits,
            is_proposer,
            instance: 0,
            machine: None,
            cell: NodeCell::new(0),
            future: BTreeMap::new(),
            backlog: VecDeque::new(),
            in_flight: None,
            completed: Vec::new(),
            decided_instances: 0,
        }
    }

    /// Finished requests (proposer only; empty on followers).
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Requests accepted but not yet decided (backlog + in flight).
    pub fn pending(&self) -> usize {
        self.backlog.len() + usize::from(self.in_flight.is_some())
    }

    /// Instances this node has decided.
    pub fn decided_instances(&self) -> u64 {
        self.decided_instances
    }

    /// Hands one client request to the proposer. Driven from outside
    /// the engine via `Sim::inject`; `submitted` is the arrival time
    /// (the latency clock start), which may precede `ctx.now()` by the
    /// request's service delay.
    pub fn submit(&mut self, value: Value, submitted: Time, ctx: &mut Context<'_, LoadMsg>) {
        assert!(self.is_proposer, "submit on a follower");
        self.backlog.push_back(PendingRequest { value, submitted });
        if self.machine.is_none() {
            self.start_next_instance(ctx);
        }
    }

    /// Runs one inner-machine callback against the private cell, then
    /// forwards any broadcast it requested to the real MAC (before any
    /// further inner call, so the busy flag stays truthful).
    fn drive(
        &mut self,
        ctx: &mut Context<'_, LoadMsg>,
        f: impl FnOnce(&mut BitwiseTwoPhase, &mut Context<'_, BwMsg>),
    ) {
        let machine = self.machine.as_mut().expect("drive without a machine");
        {
            let mut inner = self.cell.ctx(ctx.id(), ctx.now(), ctx.is_busy());
            f(machine, &mut inner);
        }
        if let Some(inner_msg) = self.cell.outbox.take() {
            let outcome = ctx.broadcast(LoadMsg {
                instance: self.instance,
                inner: inner_msg,
            });
            debug_assert!(
                outcome.is_accepted(),
                "outer MAC rejected a forwarded broadcast"
            );
        }
    }

    /// Starts the proposer's next instance from the backlog head (a
    /// no-op when the backlog is empty).
    fn start_next_instance(&mut self, ctx: &mut Context<'_, LoadMsg>) {
        debug_assert!(self.machine.is_none());
        let Some(req) = self.backlog.pop_front() else {
            return;
        };
        self.machine = Some(BitwiseTwoPhase::new(req.value, self.bits));
        self.in_flight = Some(req);
        self.drive(ctx, |m, inner| m.on_start(inner));
        self.replay_buffered(ctx);
        self.harvest(ctx);
    }

    /// Enters the current instance as a follower, seeded by the
    /// candidate of the first message seen for it.
    fn enter_as_follower(&mut self, first: BwMsg, ctx: &mut Context<'_, LoadMsg>) {
        debug_assert!(self.machine.is_none());
        debug_assert!(!self.is_proposer);
        // The carried candidate is MSB-aligned; the constructor wants
        // the plain value. Adopting it preserves validity — every
        // candidate in the instance originates from the proposal.
        let input = first.candidate >> (64 - self.bits);
        self.machine = Some(BitwiseTwoPhase::new(input, self.bits));
        self.drive(ctx, |m, inner| m.on_start(inner));
        self.drive(ctx, |m, inner| m.on_receive(first, inner));
        self.replay_buffered(ctx);
        self.harvest(ctx);
    }

    /// Replays messages buffered for the (just entered) current
    /// instance, in arrival order.
    fn replay_buffered(&mut self, ctx: &mut Context<'_, LoadMsg>) {
        if let Some(early) = self.future.remove(&self.instance) {
            for m in early {
                self.drive(ctx, |mach, inner| mach.on_receive(m, inner));
            }
        }
    }

    /// Checks whether the running machine finished; if so, records the
    /// instance's decision and advances — possibly through several
    /// instances, since entering the next one replays buffered
    /// messages which can in principle finish it too.
    fn harvest(&mut self, ctx: &mut Context<'_, LoadMsg>) {
        while self.machine.as_ref().is_some_and(BitwiseTwoPhase::is_done) {
            let decision = self
                .cell
                .decision
                .take()
                .expect("done machine recorded no decision");
            if self.is_proposer {
                let req = self
                    .in_flight
                    .take()
                    .expect("proposer finished an instance with nothing in flight");
                self.completed.push(CompletedRequest {
                    value: decision.value,
                    submitted: req.submitted,
                    decided: decision.time,
                });
            }
            self.machine = None;
            self.decided_instances += 1;
            self.instance += 1;
            // Drop buffered messages for instances now behind us (none
            // should exist, but stale entries must never accumulate).
            self.future = self.future.split_off(&self.instance);
            if self.is_proposer {
                self.start_next_instance(ctx);
            } else if let Some(early) = self.future.remove(&self.instance) {
                let mut early = VecDeque::from(early);
                let first = early
                    .pop_front()
                    .expect("buffered instance entry is never empty");
                self.future.insert(self.instance, Vec::from(early));
                // Re-insert leftovers first: enter_as_follower replays
                // them after on_start.
                if self.future.get(&self.instance).is_some_and(Vec::is_empty) {
                    self.future.remove(&self.instance);
                }
                self.enter_as_follower(first, ctx);
            }
        }
    }
}

impl Process for OpenLoopNode {
    type Msg = LoadMsg;

    fn on_start(&mut self, _ctx: &mut Context<'_, LoadMsg>) {
        // A long-lived service node is passive until traffic arrives:
        // the proposer acts on submissions, followers on messages.
    }

    fn on_receive(&mut self, msg: LoadMsg, ctx: &mut Context<'_, LoadMsg>) {
        if msg.instance < self.instance {
            // Stale instance: already decided here.
            return;
        }
        if msg.instance > self.instance || (self.machine.is_none() && self.is_proposer) {
            // Ahead of us — or traffic for an instance the proposer
            // has not started yet (its request is still in transit).
            // Buffer; replay on entry.
            self.future.entry(msg.instance).or_default().push(msg.inner);
            return;
        }
        if self.machine.is_none() {
            self.enter_as_follower(msg.inner, ctx);
            return;
        }
        self.drive(ctx, |m, inner| m.on_receive(msg.inner, inner));
        self.harvest(ctx);
    }

    fn on_ack(&mut self, ctx: &mut Context<'_, LoadMsg>) {
        if self.machine.is_some() {
            self.drive(ctx, |m, inner| m.on_ack(inner));
            self.harvest(ctx);
        }
    }
}

/// Number of histogram buckets: bucket 0 holds latency 0, bucket
/// `i >= 1` holds latencies in `[2^(i-1), 2^i - 1]`, bucket 64 tops
/// out at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket (power-of-two) latency histogram with exact count,
/// sum, min, and max — the submit→decide metrics surface. Quantiles
/// report the upper bound of the bucket containing the target rank,
/// so they are conservative (never under-report) and deterministic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency sample (in ticks).
    pub fn record(&mut self, latency: u64) {
        let idx = if latency == 0 {
            0
        } else {
            64 - latency.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(latency);
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ticks (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`) as the containing bucket's
    /// upper bound, clamped to the recorded max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile latency (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile latency (bucket upper bound).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

/// A named sustained-load scenario: a workload spec plus the
/// adversarial overlay (timed follower crash, healing partition) it
/// runs under.
#[derive(Clone, PartialEq, Debug)]
pub struct LoadScenario {
    /// Unique name (stable across PRs; CI greps these).
    pub name: String,
    /// The open-loop workload.
    pub spec: WorkloadSpec,
    /// Crash one follower at a time: `(slot, tick)`. Slot 0 (the
    /// proposer) is rejected by validation.
    pub crash: Option<(usize, u64)>,
    /// A directed cut `(from, to, release)` healing at `release`
    /// (deliveries `from -> to` withheld until then).
    pub partition: Option<(Vec<usize>, Vec<usize>, u64)>,
}

impl LoadScenario {
    /// The sustained-load catalogue: steady state, a follower crash in
    /// steady state, and a partition building backlog before healing.
    pub fn catalogue() -> Vec<LoadScenario> {
        let spec = WorkloadSpec::default_spec();
        vec![
            LoadScenario {
                name: "load-steady-state".into(),
                spec: spec.clone(),
                crash: None,
                partition: None,
            },
            LoadScenario {
                name: "load-crash-steady-state".into(),
                spec: spec.clone(),
                // Crash the last follower mid-run: single-proposer
                // instances carry uniform candidates, so the pipeline
                // must keep deciding without it.
                crash: Some((spec.n - 1, spec.duration / 2)),
                partition: None,
            },
            LoadScenario {
                name: "load-partition-backlog".into(),
                spec: WorkloadSpec {
                    // Higher rate so the cut visibly builds backlog,
                    // and a longer drain so the backlog can clear.
                    rate_per_kilotick: 10,
                    drain: 60_000,
                    ..spec.clone()
                },
                crash: None,
                // Cut the proposer off from half the group until
                // mid-run: its broadcasts cannot ack, instances stall,
                // the backlog grows, and the drain after healing is
                // the latency tail the histogram must capture.
                partition: Some((vec![0], (1..spec.n / 2 + 1).collect(), spec.duration / 2)),
            },
        ]
    }

    /// Validates the scenario.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        if let Some((slot, _)) = self.crash {
            if slot == 0 {
                return Err("cannot crash the proposer (slot 0)".into());
            }
            if slot >= self.spec.n {
                return Err(format!(
                    "crash slot {slot} out of range (n={})",
                    self.spec.n
                ));
            }
        }
        if let Some((from, to, _)) = &self.partition {
            for &s in from.iter().chain(to.iter()) {
                if s >= self.spec.n {
                    return Err(format!(
                        "partition slot {s} out of range (n={})",
                        self.spec.n
                    ));
                }
            }
        }
        Ok(())
    }

    /// The engine-side crash plan.
    pub fn crash_plan(&self) -> CrashPlan {
        match self.crash {
            None => CrashPlan::none(),
            Some((slot, tick)) => CrashPlan::new(vec![CrashSpec::AtTime {
                slot: Slot(slot),
                time: Time(tick),
            }]),
        }
    }

    /// The scenario's scheduler factory: seeded random delays under
    /// `f_ack`, wrapped in the healing cut when partitioned.
    pub fn scheduler(&self) -> SchedulerFactory {
        let f_ack = self.spec.f_ack;
        let seed = self.spec.seed;
        match self.partition.clone() {
            None => Arc::new(move || Box::new(RandomScheduler::new(f_ack, seed))),
            Some((from, to, release)) => Arc::new(move || {
                Box::new(EdgeDelayScheduler::new(
                    RandomScheduler::new(f_ack, seed),
                    vec![DirectedCut::new(
                        from.iter().copied().map(Slot),
                        to.iter().copied().map(Slot),
                        Time(release),
                    )],
                ))
            }),
        }
    }
}

/// Everything one open-loop run produced: the latency surface, the
/// raw per-request records, and the byte-identity witnesses (trace +
/// condensed report).
#[derive(Clone, PartialEq, Debug)]
pub struct LoadRun {
    /// Submit→decide latency histogram over completed requests.
    pub histogram: LatencyHistogram,
    /// Completed requests in decision order (proposer's view).
    pub completed: Vec<CompletedRequest>,
    /// Requests submitted over the run.
    pub submitted: u64,
    /// Requests still queued or in flight at the horizon.
    pub unfinished: u64,
    /// Engine events processed (the denominator of events/sec).
    pub engine_events: u64,
    /// Virtual end time.
    pub end_time: Time,
    /// Condensed engine report (identity-invariant fields only).
    pub report: MacReport,
    /// The recorded event trace, when tracing was on — the strongest
    /// identity witness.
    pub trace: Trace,
    /// Share of parallel-stepper worker time lost to window barriers,
    /// in percent. Wall-clock derived (0 for serial runs) and never an
    /// identity witness: the sweep's run-diffing ignores it.
    pub barrier_pct: f64,
}

impl LoadRun {
    /// Decisions per 1000 virtual ticks — the deterministic sustained
    /// throughput figure (wall-clock events/sec is the bench layer's
    /// job).
    pub fn decided_per_kilotick(&self) -> f64 {
        if self.end_time.ticks() == 0 {
            0.0
        } else {
            self.histogram.count() as f64 * 1000.0 / self.end_time.ticks() as f64
        }
    }
}

/// Runs one open-loop scenario on the given engine configuration
/// (queue core, shards, threads): builds a long-lived engine over a
/// clique, alternates `Sim::run_until` with `Sim::inject` along
/// the materialized request schedule, drains, and collects the
/// latency surface from the proposer.
pub fn run_load(
    scenario: &LoadScenario,
    core: QueueCoreKind,
    shards: usize,
    threads: usize,
    trace: bool,
) -> LoadRun {
    scenario
        .validate()
        .unwrap_or_else(|e| panic!("invalid load scenario: {e}"));
    let spec = &scenario.spec;
    let requests = spec.requests();
    let horizon = spec.horizon();
    let cfg = EngineConfig::new()
        .seed(spec.seed)
        .queue_core(core)
        .shards(shards)
        .threads(threads)
        .crash_plan(scenario.crash_plan());
    let bits = spec.bits;
    let factory = scenario.scheduler();
    let mut sim = SimBuilder::new(Topology::clique(spec.n), |slot| {
        OpenLoopNode::new(bits, slot.index() == 0)
    })
    .config(cfg)
    .scheduler(factory())
    .max_time(horizon)
    .message_id_budget(1)
    .trace(trace)
    .build();
    for req in &requests {
        let _ = sim.run_until(req.injected);
        sim.inject(Slot(0), |node, ctx| {
            node.submit(req.value, req.submitted, ctx);
        });
    }
    let outcome = sim.run_until(horizon);
    let proposer = sim.process(Slot(0));
    let completed = proposer.completed().to_vec();
    let unfinished = proposer.pending() as u64;
    let mut histogram = LatencyHistogram::new();
    for c in &completed {
        histogram.record(c.latency());
    }
    let report = RunReport {
        outcome,
        end_time: horizon,
        decisions: sim.decisions().to_vec(),
        metrics: sim.metrics().clone(),
    };
    LoadRun {
        histogram,
        submitted: requests.len() as u64,
        unfinished,
        engine_events: report.metrics.events,
        end_time: horizon,
        barrier_pct: report.metrics.barrier_pct(),
        report: MacReport::from_run(&report),
        trace: sim.trace().clone(),
        completed,
    }
}

/// One swept load scenario: the reference run's latency surface plus
/// the same byte-identity proof columns the closed-loop sweep rows
/// carry (`cores`/`shards`/`threaded identical`).
#[derive(Clone, PartialEq, Debug)]
pub struct LoadSweepRow {
    /// Scenario name.
    pub name: String,
    /// The serial heap reference run.
    pub reference: LoadRun,
    /// Whether the calendar core reproduced the reference exactly.
    pub cores_identical: bool,
    /// Whether every swept shard count reproduced it exactly.
    pub shards_identical: bool,
    /// Whether the parallel stepper reproduced it exactly.
    pub threaded_identical: bool,
    /// Human-readable failures (empty when all identical).
    pub failures: Vec<String>,
}

/// Shard counts [`sweep_load`] proves byte-identical to serial
/// (alternating queue cores), matching the acceptance grid
/// `shards ∈ {1, 2, 4}`.
pub const LOAD_SWEEP_SHARD_COUNTS: [usize; 2] = [2, 4];

/// Worker-thread count of the parallel-stepper identity run.
pub const LOAD_SWEEP_THREADS: usize = 4;

impl LoadSweepRow {
    /// `true` when every identity proof held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// One summary line per row, same grammar as the closed-loop
    /// sweep's (`cores identical | shards identical | threaded
    /// identical` — CI greps these columns).
    pub fn summary(&self) -> String {
        let flag = |b: bool| if b { "identical" } else { "DIVERGED" };
        format!(
            "{}: {} decided, {} unfinished | p50 {} p99 {} p999 {} ticks | cores {} | shards {} \
             | threaded {}",
            self.name,
            self.reference.histogram.count(),
            self.reference.unfinished,
            self.reference.histogram.p50(),
            self.reference.histogram.p99(),
            self.reference.histogram.p999(),
            flag(self.cores_identical),
            flag(self.shards_identical),
            flag(self.threaded_identical),
        )
    }
}

/// How two load runs can differ; `None` when byte-identical on every
/// witness (trace, histogram, per-request records, condensed report).
fn diff_runs(reference: &LoadRun, other: &LoadRun) -> Option<&'static str> {
    if reference.trace != other.trace {
        return Some("traces differ");
    }
    if reference.histogram != other.histogram {
        return Some("latency histograms differ");
    }
    if reference.completed != other.completed {
        return Some("per-request records differ");
    }
    if reference.report != other.report {
        return Some("condensed reports differ");
    }
    if reference.unfinished != other.unfinished {
        return Some("unfinished backlogs differ");
    }
    None
}

/// Sweeps one load scenario across the identity grid: serial heap
/// (reference, traced), serial calendar (queue-core proof), each
/// shard count in [`LOAD_SWEEP_SHARD_COUNTS`] on alternating cores,
/// and the parallel stepper at the largest shard count with
/// [`LOAD_SWEEP_THREADS`] workers — every run compared byte-for-byte
/// (trace, histogram, per-request latencies) against the reference.
pub fn sweep_load(scenario: &LoadScenario) -> LoadSweepRow {
    let reference = run_load(scenario, QueueCoreKind::Heap, 1, 1, true);
    let mut failures = Vec::new();
    let calendar = run_load(scenario, QueueCoreKind::Calendar, 1, 1, true);
    let cores_identical = match diff_runs(&reference, &calendar) {
        None => true,
        Some(d) => {
            failures.push(format!("calendar core diverged from heap: {d}"));
            false
        }
    };
    let mut shards_identical = true;
    for (i, &shards) in LOAD_SWEEP_SHARD_COUNTS.iter().enumerate() {
        let core = if i % 2 == 0 {
            QueueCoreKind::Heap
        } else {
            QueueCoreKind::Calendar
        };
        let run = run_load(scenario, core, shards, 1, true);
        if let Some(d) = diff_runs(&reference, &run) {
            shards_identical = false;
            failures.push(format!(
                "sharded run diverged (S={shards}, {core} core): {d}"
            ));
        }
    }
    let mut threaded_identical = true;
    if let Some(&shards) = LOAD_SWEEP_SHARD_COUNTS.iter().max() {
        let run = run_load(
            scenario,
            QueueCoreKind::Heap,
            shards,
            LOAD_SWEEP_THREADS,
            true,
        );
        if let Some(d) = diff_runs(&reference, &run) {
            threaded_identical = false;
            failures.push(format!(
                "parallel stepper diverged (S={shards}, T={LOAD_SWEEP_THREADS}): {d}"
            ));
        }
    }
    LoadSweepRow {
        name: scenario.name.clone(),
        reference,
        cores_identical,
        shards_identical,
        threaded_identical,
        failures,
    }
}

/// Renders sweep rows as the deterministic report `amacl load` prints
/// and CI greps.
pub fn render_load_rows(rows: &[LoadSweepRow]) -> String {
    let mut out = String::new();
    for row in rows {
        let _ = writeln!(out, "{}", row.summary());
        for f in &row.failures {
            let _ = writeln!(out, "  FAILURE: {f}");
        }
    }
    let failed = rows.iter().filter(|r| !r.ok()).count();
    let _ = writeln!(
        out,
        "{} load scenarios, {} passed, {} failed",
        rows.len(),
        rows.len() - failed,
        failed
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for lat in [0u64, 1, 2, 3, 4, 8, 100, 1000] {
            h.record(lat);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        // p50 rank = 4 → the fourth sample (3) lives in bucket 2
        // (range 2..=3), upper bound 3.
        assert_eq!(h.p50(), 3);
        // The top quantiles land in the last occupied bucket, clamped
        // to the recorded max.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.p999(), 1000);
        assert!(h.quantile(0.001) == 0);
        assert!((h.mean() - 139.75).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn requests_are_deterministic_and_respect_duration() {
        let spec = WorkloadSpec::default_spec();
        let a = spec.requests();
        let b = spec.requests();
        assert_eq!(a, b, "request schedule must be a pure function of the spec");
        assert!(!a.is_empty());
        let cap = 1u64 << spec.bits;
        for r in &a {
            assert!(r.submitted.ticks() < spec.duration);
            assert!(r.injected >= r.submitted);
            assert!(r.value < cap);
        }
        assert!(a.windows(2).all(|w| w[0].injected <= w[1].injected));
        // Poisson at 5/kilotick over 20k ticks: ~100 requests.
        assert!((50..200).contains(&a.len()), "got {} requests", a.len());
    }

    #[test]
    fn deterministic_arrivals_hit_the_target_rate() {
        let spec = WorkloadSpec {
            arrival: ArrivalKind::Deterministic,
            service: None,
            ..WorkloadSpec::default_spec()
        };
        let reqs = spec.requests();
        let expected = spec.duration * spec.rate_per_kilotick / 1000;
        let got = reqs.len() as u64;
        assert!(
            got.abs_diff(expected) <= 1,
            "expected ~{expected} deterministic arrivals, got {got}"
        );
    }

    #[test]
    fn lognormal_service_delays_injection() {
        let spec = WorkloadSpec {
            service: Some(LogNormalService {
                mu: 3.0,
                sigma: 0.5,
            }),
            ..WorkloadSpec::default_spec()
        };
        let reqs = spec.requests();
        assert!(
            reqs.iter().any(|r| r.injected > r.submitted),
            "service times never delayed an injection"
        );
    }

    #[test]
    fn steady_state_decides_every_request() {
        let scenario = &LoadScenario::catalogue()[0];
        let run = run_load(scenario, QueueCoreKind::Heap, 1, 1, false);
        assert!(run.submitted > 0);
        assert_eq!(
            run.histogram.count() + run.unfinished,
            run.submitted,
            "requests leaked"
        );
        assert_eq!(run.unfinished, 0, "steady state failed to drain");
        // Every decided value equals its request's proposed value and
        // latencies are positive (at least one delivery + ack).
        for c in &run.completed {
            assert!(c.decided > c.submitted);
        }
        assert!(run.histogram.p50() >= 1);
        assert!(run.histogram.p999() >= run.histogram.p50());
    }

    #[test]
    fn crash_scenario_keeps_deciding() {
        let scenario = LoadScenario::catalogue()
            .into_iter()
            .find(|s| s.crash.is_some())
            .expect("catalogue has a crash scenario");
        let run = run_load(&scenario, QueueCoreKind::Heap, 1, 1, false);
        assert_eq!(run.unfinished, 0, "follower crash stalled the pipeline");
        assert_eq!(run.histogram.count(), run.submitted);
    }

    #[test]
    fn partition_builds_then_drains_backlog() {
        let scenario = LoadScenario::catalogue()
            .into_iter()
            .find(|s| s.partition.is_some())
            .expect("catalogue has a partition scenario");
        let run = run_load(&scenario, QueueCoreKind::Heap, 1, 1, false);
        assert_eq!(run.unfinished, 0, "backlog failed to drain after healing");
        // The cut must be visible in the latency tail: the worst
        // request waited out a good part of the partition.
        let release = scenario.partition.as_ref().unwrap().2;
        assert!(
            run.histogram.max() >= release / 4,
            "partition left no latency signature (max {} < {})",
            run.histogram.max(),
            release / 4
        );
        // Log2 buckets are coarse: the tail can share the median's
        // bucket when most requests waited out the cut, so only a
        // non-strict ordering is guaranteed.
        assert!(run.histogram.p999() >= run.histogram.p50());
    }

    #[test]
    fn catalogue_is_named_and_valid() {
        let cat = LoadScenario::catalogue();
        assert_eq!(cat.len(), 3);
        let mut names: Vec<&str> = cat.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "duplicate scenario names");
        for s in &cat {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(s.name.starts_with("load-"));
        }
    }

    #[test]
    fn invalid_scenarios_rejected() {
        let mut s = LoadScenario::catalogue().remove(0);
        s.crash = Some((0, 10));
        assert!(s.validate().is_err(), "proposer crash must be rejected");
        let mut s2 = LoadScenario::catalogue().remove(0);
        s2.spec.bits = 0;
        assert!(s2.validate().is_err());
        let mut s3 = LoadScenario::catalogue().remove(0);
        s3.spec.rate_per_kilotick = 0;
        assert!(s3.validate().is_err());
    }

    #[test]
    fn arrival_kind_parses_and_rejects() {
        assert_eq!("det".parse::<ArrivalKind>(), Ok(ArrivalKind::Deterministic));
        assert_eq!("poisson".parse::<ArrivalKind>(), Ok(ArrivalKind::Poisson));
        assert!("psoison".parse::<ArrivalKind>().is_err());
    }

    #[test]
    fn sweep_proves_identity_on_steady_state() {
        let row = sweep_load(&LoadScenario::catalogue()[0]);
        assert!(row.ok(), "{:?}", row.failures);
        assert!(row.cores_identical && row.shards_identical && row.threaded_identical);
        let rendered = render_load_rows(std::slice::from_ref(&row));
        assert!(rendered.contains("cores identical"));
        assert!(rendered.contains("shards identical"));
        assert!(rendered.contains("threaded identical"));
        assert!(rendered.contains("1 passed, 0 failed"));
    }
}
