//! Property tests for the checker itself: the explorer's verdicts and
//! the machine's semantics must be internally consistent and agree
//! with the simulator's model semantics.

use amacl_checker::{Choice, ExploreConfig, ExploreMachine, Explorer, SearchOrder};
use amacl_core::two_phase::TwoPhase;
use amacl_model::prelude::*;
use proptest::prelude::*;

/// Small random connected topologies suitable for exhaustive walks.
fn arb_small_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..4).prop_map(Topology::clique),
        (2usize..4).prop_map(Topology::line),
        (3usize..4).prop_map(Topology::ring),
        Just(Topology::star(3)),
    ]
}

/// Broadcast once, decide own value at the ack — verifies exactly when
/// inputs are uniform.
#[derive(Clone, Debug)]
struct Selfish(Value);

#[derive(Clone, Copy, Debug)]
struct Ping;
impl Payload for Ping {
    fn id_count(&self) -> usize {
        0
    }
}

impl Process for Selfish {
    type Msg = Ping;
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.broadcast(Ping);
    }
    fn on_receive(&mut self, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
    fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.decide(self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Uniform inputs verify on every topology; mixed inputs violate
    /// agreement on every topology — and BFS and DFS agree on which.
    #[test]
    fn selfish_verdict_matches_input_uniformity(
        topo in arb_small_topology(),
        uniform in any::<bool>(),
    ) {
        let n = topo.len();
        let inputs: Vec<Value> = if uniform {
            vec![1; n]
        } else {
            (0..n).map(|i| (i % 2) as Value).collect()
        };
        let procs: Vec<Selfish> = inputs.iter().map(|&v| Selfish(v)).collect();
        for order in [SearchOrder::Dfs, SearchOrder::Bfs] {
            let out = Explorer::new(topo.clone(), procs.clone(), inputs.clone(), 0)
                .run(ExploreConfig { order, ..ExploreConfig::default() });
            prop_assert_eq!(out.verified(), uniform, "{:?} on {:?}", order, topo);
        }
    }

    /// Replaying any violation schedule reproduces a state with the
    /// reported decisions.
    #[test]
    fn violation_schedules_replay_exactly(
        topo in arb_small_topology(),
    ) {
        let n = topo.len();
        let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
        prop_assume!(inputs.contains(&1));
        let procs: Vec<Selfish> = inputs.iter().map(|&v| Selfish(v)).collect();
        let explorer = Explorer::new(topo, procs, inputs, 0);
        let out = explorer.run(ExploreConfig::default());
        prop_assert!(!out.violations.is_empty());
        let v = &out.violations[0];
        let m = explorer.replay(&v.schedule);
        prop_assert_eq!(&m.decisions(), &v.decisions);
    }

    /// Applying the same schedule to two forks yields identical
    /// fingerprints (the machine is deterministic in its choices).
    #[test]
    fn machines_are_deterministic_under_identical_choices(
        steps in 0usize..12,
        picks in proptest::collection::vec(any::<usize>(), 12),
    ) {
        let mk = || {
            ExploreMachine::new(
                Topology::clique(3),
                vec![TwoPhase::new(0), TwoPhase::new(1), TwoPhase::new(1)],
                0,
            )
        };
        let mut a = mk();
        let mut b = mk();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        for i in 0..steps {
            let choices = a.choices();
            if choices.is_empty() {
                break;
            }
            let c = choices[picks[i] % choices.len()];
            a.apply(c);
            b.apply(c);
            prop_assert_eq!(a.fingerprint(), b.fingerprint(), "diverged at move {}", i);
        }
    }

    /// Every choice the machine offers is actually applicable, and
    /// acks only appear once the message reached all live neighbors.
    #[test]
    fn offered_choices_are_always_applicable(
        picks in proptest::collection::vec(any::<usize>(), 24),
        budget in 0usize..2,
    ) {
        let mut m = ExploreMachine::new(
            Topology::ring(3),
            vec![TwoPhase::new(0), TwoPhase::new(1), TwoPhase::new(0)],
            budget,
        );
        for p in picks {
            let choices = m.choices();
            if choices.is_empty() {
                prop_assert!(m.is_terminal() || budget > 0);
                break;
            }
            for &c in &choices {
                if let Choice::Ack(u) = c {
                    // The ack invariant: no live pending recipient.
                    prop_assert!(!m.is_crashed(u));
                }
            }
            m.apply(choices[p % choices.len()]); // must not panic
        }
    }

    /// Two-phase on a 2-clique: the decided value over any random walk
    /// matches an input and never splits (spot-checking the exhaustive
    /// result with independent random walks through the same machine).
    #[test]
    fn random_walks_respect_agreement_and_validity(
        inputs in proptest::collection::vec(0u64..2, 2..=3),
        picks in proptest::collection::vec(any::<usize>(), 64),
    ) {
        let n = inputs.len();
        let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
        let mut m = ExploreMachine::new(Topology::clique(n), procs, 0);
        let mut i = 0;
        while !m.is_terminal() && i < picks.len() {
            let choices = m.choices();
            m.apply(choices[picks[i] % choices.len()]);
            i += 1;
            let decided = m.decided_values();
            prop_assert!(decided.len() <= 1, "split: {decided:?}");
            prop_assert!(decided.iter().all(|v| inputs.contains(v)));
        }
    }
}
