//! Cross-backend conformance of lowered model-checking counterexamples.
//!
//! The loop the tentpole closes: `explore_mac` finds a violation under
//! a deliberately seeded ledger bug, the converter lowers its schedule
//! into a `ScriptedScheduler` + crash-plan [`Scenario`], and from then
//! on that scenario must behave like any other catalogue row — the
//! discrete-event engine and the threaded runtime cross-check clean,
//! the heap and calendar queue cores report byte-identically, and the
//! sharded engine reproduces serial for S ∈ {1, 2, 4}. The *bug* only
//! exists behind the mutated seam; the lowered schedule on the real
//! (unmutated) backends is just another adversarial execution, which
//! is exactly why it is safe to enroll counterexamples as regressions.

use amacl_checker::explore_mac::{LedgerMutation, MacExploreConfig, MacExploreDescriptor};
use amacl_checker::scenario::{
    sweep_scenario, sweep_scenario_sharded, Scenario, ScenarioAlgo, ScenarioTopo,
};
use amacl_model::sim::queue::QueueCoreKind;

/// The two seeded ledger bugs, each on the smallest instance where the
/// explorer catches it.
fn seeded_bug_descriptors() -> Vec<(&'static str, MacExploreDescriptor)> {
    vec![
        (
            "ack-early",
            MacExploreDescriptor {
                algo: ScenarioAlgo::TwoPhase,
                topo: ScenarioTopo::Clique(2),
                inputs: vec![0, 1],
                crash_budget: 0,
                mutation: LedgerMutation::AckEarly,
            },
        ),
        (
            "drop-releases",
            MacExploreDescriptor {
                algo: ScenarioAlgo::TwoPhase,
                topo: ScenarioTopo::Clique(3),
                inputs: vec![0, 1, 1],
                crash_budget: 1,
                mutation: LedgerMutation::DropReleases,
            },
        ),
    ]
}

#[test]
fn lowered_seeded_bug_counterexamples_conform_across_backends_cores_and_shards() {
    for (label, d) in seeded_bug_descriptors() {
        d.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
        let out = d.explore(&MacExploreConfig::default());
        let v = out
            .violations
            .first()
            .unwrap_or_else(|| panic!("{label}: explorer missed the seeded bug"));
        // The determinism contract behind the regression: replaying
        // the emitted schedule reproduces the violating decisions.
        assert_eq!(d.replay_decisions(&v.schedule), v.decisions, "{label}");
        let scenario = d.lower(&format!("explored-{label}"), v);
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{label}: {e}"));

        // Engine byte-identity across queue cores and shard counts
        // S ∈ {1, 2, 4} (S = 1 is the sharded machinery in its
        // degenerate configuration — it too must match serial).
        let heap = scenario.run_engine_on(1, QueueCoreKind::Heap);
        let calendar = scenario.run_engine_on(1, QueueCoreKind::Calendar);
        assert_eq!(heap, calendar, "{label}: queue cores diverged");
        for core in QueueCoreKind::all() {
            let serial = scenario.run_engine_on(1, core);
            for shards in [1usize, 2, 4] {
                let (sharded, _) = scenario.run_engine_sharded(1, core, shards);
                assert_eq!(
                    serial, sharded,
                    "{label}: S={shards} on {core} diverged from serial"
                );
            }
        }

        // The full sweep row — engine-vs-threads cross-check included
        // — passes on both cores with the byte-identity gates on.
        for core in QueueCoreKind::all() {
            let row = sweep_scenario_sharded(&scenario, 1, core, &[1, 2, 4], 4);
            assert!(row.ok, "{label} on {core}: {:?}", row.failures);
            assert!(row.summary.contains("cores identical"), "{}", row.summary);
            assert!(row.summary.contains("shards identical"), "{}", row.summary);
            assert!(
                row.summary.contains("threaded identical"),
                "{}",
                row.summary
            );
        }
    }
}

/// The permanently enrolled counterexample sweeps clean with the rest
/// of the catalogue (the catalogue-wide tests cover it too; this keeps
/// a direct, named gate).
#[test]
fn pinned_witness_sweeps_clean_on_unmutated_backends() {
    let scenario = Scenario::by_name("explored-ack-early-witness").expect("catalogue entry");
    let row = sweep_scenario(&scenario, 1);
    assert!(row.ok, "{:?}", row.failures);
}
