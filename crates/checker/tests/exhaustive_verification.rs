//! Exhaustive verification of the paper's algorithms on small
//! networks (experiment E15).
//!
//! Randomized schedulers sample the scheduler space; these tests
//! *cover* it. Each `assert_verified` below is a machine-checked proof
//! that the named algorithm satisfies agreement, validity, and
//! termination under **every** schedule the abstract MAC layer allows
//! for that network and input assignment. The crash-budget tests then
//! confirm the flip side — Theorem 3.2 — by exhibiting concrete
//! 1-crash schedules that break each deterministic algorithm.

use amacl_checker::{ExploreConfig, Explorer, ViolationKind};
use amacl_core::baselines::flood_gather::FloodGather;
use amacl_core::multivalued::BitwiseTwoPhase;
use amacl_core::tree_gather::TreeGather;
use amacl_core::two_phase::TwoPhase;
use amacl_model::prelude::*;

fn cfg() -> ExploreConfig {
    ExploreConfig {
        max_violations: 1,
        ..ExploreConfig::default()
    }
}

/// Every binary input assignment for `n` nodes.
fn binary_assignments(n: usize) -> Vec<Vec<Value>> {
    (0..(1u64 << n))
        .map(|mask| (0..n).map(|i| (mask >> i) & 1).collect())
        .collect()
}

#[test]
fn two_phase_verified_for_every_input_pair() {
    for inputs in binary_assignments(2) {
        let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
        let out = Explorer::new(Topology::clique(2), procs, inputs.clone(), 0).run(cfg());
        assert!(out.verified(), "inputs {inputs:?}: {:?}", out.violations);
        assert!(out.terminal_states >= 1);
    }
}

/// Bounded (non-exhaustive) configuration for spaces too large to
/// cover in test time: explores up to `max_states` distinct states and
/// requires that none of them violates a property. Unlike
/// `assert_verified`, a clean bounded run is evidence, not proof.
fn bounded(max_states: usize) -> ExploreConfig {
    ExploreConfig {
        max_states,
        max_violations: 1,
        ..ExploreConfig::default()
    }
}

#[test]
fn two_phase_verified_on_three_cliques() {
    // The full 3-node exploration covers ~35k distinct states per
    // input assignment; a mixed assignment plus the uniform pair
    // exercise every status combination.
    for inputs in [vec![0, 1, 1], vec![1, 1, 1]] {
        let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
        let out = Explorer::new(Topology::clique(3), procs, inputs.clone(), 0).run(cfg());
        assert!(out.verified(), "inputs {inputs:?}: {:?}", out.violations);
    }
}

#[test]
fn two_phase_literal_r2_bug_found_exhaustively() {
    // The paper's literal line-23 pseudocode (scan R_2 only) admits an
    // agreement violation; the explorer finds it without being told
    // the schedule.
    let inputs = vec![0, 1];
    let procs: Vec<TwoPhase> = inputs
        .iter()
        .map(|&v| TwoPhase::with_literal_r2_check(v))
        .collect();
    let explorer = Explorer::new(Topology::clique(2), procs, inputs, 0);
    let out = explorer.run(cfg());
    assert!(!out.verified());
    assert_eq!(out.violations[0].kind, ViolationKind::Agreement);
    // And the discovered schedule replays.
    let m = explorer.replay(&out.violations[0].schedule);
    assert_eq!(m.decided_values().len(), 2);
}

#[test]
fn two_phase_breaks_under_one_crash_as_theorem_3_2_demands() {
    // Theorem 3.2: no deterministic algorithm solves consensus with a
    // single crash. For Two-Phase Consensus specifically, the explorer
    // exhibits the failure (a stuck execution or an agreement
    // violation) within a 1-crash budget.
    let inputs = vec![0, 1, 1];
    let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
    let out = Explorer::new(Topology::clique(3), procs, inputs, 1).run(cfg());
    assert!(!out.verified());
    let kind = out.violations[0].kind;
    assert!(
        kind == ViolationKind::Termination || kind == ViolationKind::Agreement,
        "unexpected violation kind {kind:?}"
    );
}

#[test]
fn two_phase_crash_failure_is_not_a_validity_failure() {
    // Under a crash budget the algorithm may block or disagree, but it
    // never invents a value: scan every violation the explorer can
    // find (up to a cap) and check none is a validity violation.
    let inputs = vec![0, 1];
    let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
    let out = Explorer::new(Topology::clique(2), procs, inputs, 1).run(ExploreConfig {
        max_violations: 64,
        ..ExploreConfig::default()
    });
    assert!(!out.violations.is_empty());
    assert!(out
        .violations
        .iter()
        .all(|v| v.kind != ViolationKind::Validity));
}

#[test]
fn bitwise_two_phase_verified_for_every_two_bit_pair() {
    // All 16 ordered pairs of 2-bit inputs on a 2-clique, including
    // the complementary patterns (0b01, 0b10) that break naive
    // per-bit agreement.
    for a in 0..4u64 {
        for b in 0..4u64 {
            let inputs = vec![a, b];
            let procs: Vec<BitwiseTwoPhase> =
                inputs.iter().map(|&v| BitwiseTwoPhase::new(v, 2)).collect();
            let out = Explorer::new(Topology::clique(2), procs, inputs.clone(), 0).run(cfg());
            assert!(out.verified(), "inputs {inputs:?}: {:?}", out.violations);
        }
    }
}

#[test]
fn bitwise_two_phase_bounded_on_three_cliques() {
    // The 3-node two-round space runs to millions of states; check the
    // first 60k breadth of it for safety violations.
    let inputs = vec![0b10, 0b01, 0b11];
    let procs: Vec<BitwiseTwoPhase> = inputs.iter().map(|&v| BitwiseTwoPhase::new(v, 2)).collect();
    let out = Explorer::new(Topology::clique(3), procs, inputs.clone(), 0).run(bounded(60_000));
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

#[test]
fn flood_gather_verified_on_multihop_topologies() {
    for (topo, inputs) in [
        (Topology::line(3), vec![0, 1, 0]),
        (Topology::line(3), vec![1, 1, 1]),
        (Topology::ring(3), vec![0, 1, 1]),
    ] {
        let n = topo.len();
        let procs: Vec<FloodGather> = inputs.iter().map(|&v| FloodGather::new(v, n)).collect();
        let out = Explorer::new(topo, procs, inputs.clone(), 0).run(cfg());
        assert!(out.verified(), "inputs {inputs:?}: {:?}", out.violations);
    }
}

#[test]
fn flood_gather_bounded_on_four_node_ring() {
    let inputs = vec![0, 1, 1, 0];
    let procs: Vec<FloodGather> = inputs.iter().map(|&v| FloodGather::new(v, 4)).collect();
    let out = Explorer::new(Topology::ring(4), procs, inputs.clone(), 0).run(bounded(60_000));
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

#[test]
fn tree_gather_verified_on_multihop_topologies() {
    for (topo, inputs) in [
        (Topology::line(3), vec![0, 1, 0]),
        (Topology::star(3), vec![1, 0, 1]),
    ] {
        let n = topo.len();
        let procs: Vec<TreeGather> = inputs.iter().map(|&v| TreeGather::new(v, n)).collect();
        let out = Explorer::new(topo, procs, inputs.clone(), 0).run(cfg());
        assert!(out.verified(), "inputs {inputs:?}: {:?}", out.violations);
    }
}

#[test]
fn tree_gather_bounded_on_four_node_star() {
    let inputs = vec![1, 0, 1, 1];
    let procs: Vec<TreeGather> = inputs.iter().map(|&v| TreeGather::new(v, 4)).collect();
    let out = Explorer::new(Topology::star(4), procs, inputs.clone(), 0).run(bounded(60_000));
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

#[test]
fn flood_gather_stalls_under_one_crash() {
    // Flood-gather waits for all n inputs, so a single crash (even a
    // clean one that delivers everything first) can leave survivors
    // counting forever — exactly why the paper's upper bounds assume
    // no crashes.
    let inputs = vec![0, 1, 1];
    let procs: Vec<FloodGather> = inputs.iter().map(|&v| FloodGather::new(v, 3)).collect();
    let out = Explorer::new(Topology::clique(3), procs, inputs, 1).run(cfg());
    assert!(!out.verified());
    assert_eq!(out.violations[0].kind, ViolationKind::Termination);
}

mod fuzzing {
    //! The unrestricted-adversary fuzzer at sizes the exhaustive walk
    //! cannot reach.

    use super::*;
    use amacl_checker::FuzzConfig;
    use amacl_core::wpaxos::{WpaxosConfig, WpaxosNode};

    #[test]
    fn wpaxos_survives_unrestricted_adversary_walks() {
        // The delay-based RandomScheduler cannot starve a node or
        // fully decouple delivery order from time; the fuzzer can.
        // wPAXOS must still satisfy consensus on every walk.
        for (topo, label) in [
            (Topology::grid(3, 2), "grid(3x2)"),
            (Topology::ring(6), "ring(6)"),
            (Topology::star(6), "star(6)"),
        ] {
            let n = topo.len();
            let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
            let procs: Vec<WpaxosNode> = inputs
                .iter()
                .map(|&v| WpaxosNode::new(v, WpaxosConfig::new(n)))
                .collect();
            let out = Explorer::new(topo, procs, inputs, 0).fuzz(FuzzConfig {
                walks: 10,
                seed: 7,
                ..FuzzConfig::default()
            });
            assert!(out.clean(), "{label}: {:?}", out.violations.first());
            assert_eq!(out.decided_walks, 10, "{label}");
        }
    }

    #[test]
    fn two_phase_fuzzes_clean_at_sizes_beyond_exhaustive_reach() {
        // n = 6 would be far past the exhaustive state-count budget;
        // 200 unrestricted walks still cover adversarial interleavings
        // randomized delay schedulers cannot express.
        let inputs: Vec<Value> = (0..6).map(|i| (i % 2) as Value).collect();
        let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
        let out = Explorer::new(Topology::clique(6), procs, inputs, 0).fuzz(FuzzConfig {
            walks: 200,
            seed: 11,
            ..FuzzConfig::default()
        });
        out.assert_clean();
        assert_eq!(out.decided_walks, 200);
    }

    #[test]
    fn fuzzer_rediscovers_the_crash_impossibility() {
        // With a 1-crash budget the fuzzer finds a violating walk for
        // two-phase, matching the exhaustive result (Theorem 3.2).
        let inputs = vec![0, 1, 1];
        let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
        let explorer = Explorer::new(Topology::clique(3), procs, inputs, 1);
        let out = explorer.fuzz(FuzzConfig {
            walks: 500,
            seed: 5,
            ..FuzzConfig::default()
        });
        assert!(!out.clean(), "some walk must break within 500 tries");
        let v = &out.violations[0];
        let m = explorer.replay(&v.schedule);
        assert_eq!(m.decisions(), v.decisions);
    }
}

#[test]
fn exploration_statistics_are_plausible() {
    let inputs = vec![0, 1];
    let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
    let out = Explorer::new(Topology::clique(2), procs, inputs, 0).run(cfg());
    assert!(out.verified());
    // Two nodes, two phases each: at least 8 scheduler moves on the
    // longest branch (2 deliveries + 2 acks per phase).
    assert!(out.max_depth_reached >= 8);
    assert!(out.states > out.terminal_states);
    assert!(out.terminal_states >= 1);
}
