//! The open-loop determinism grid: a fixed-seed sustained workload
//! must be byte-identical — full trace, latency histogram, every
//! per-request latency, condensed report — across the FULL engine
//! configuration cross product (queue core × shards {1, 2, 4} ×
//! threads {1, 4}), not just the sweep's spot checks.

use amacl_checker::workload::{run_load, LoadScenario, WorkloadSpec};
use amacl_model::sim::queue::QueueCoreKind;

/// A shortened steady-state scenario so the 12-configuration grid
/// stays fast: ~20 requests over 4000 ticks plus drain.
fn short_steady_state() -> LoadScenario {
    LoadScenario {
        name: "grid-steady-state".into(),
        spec: WorkloadSpec {
            duration: 4_000,
            drain: 8_000,
            ..WorkloadSpec::default_spec()
        },
        crash: None,
        partition: None,
    }
}

#[test]
fn open_loop_workload_is_identical_across_the_full_engine_grid() {
    let scenario = short_steady_state();
    let reference = run_load(&scenario, QueueCoreKind::Heap, 1, 1, true);
    assert!(
        reference.histogram.count() > 0,
        "grid scenario decided nothing; the test would be vacuous"
    );
    assert_eq!(reference.unfinished, 0, "steady state must drain");
    for core in [QueueCoreKind::Heap, QueueCoreKind::Calendar] {
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 4] {
                let run = run_load(&scenario, core, shards, threads, true);
                let label = format!("core={core:?} S={shards} T={threads}");
                assert_eq!(run.trace, reference.trace, "{label}: trace diverged");
                assert_eq!(
                    run.histogram, reference.histogram,
                    "{label}: histogram diverged"
                );
                assert_eq!(
                    run.completed, reference.completed,
                    "{label}: per-request latencies diverged"
                );
                assert_eq!(run.report, reference.report, "{label}: report diverged");
                assert_eq!(
                    run.unfinished, reference.unfinished,
                    "{label}: backlog diverged"
                );
            }
        }
    }
}

#[test]
fn crash_scenario_is_identical_across_representative_grid_corners() {
    // The crash overlay exercises the CrashPlan path through
    // EngineConfig; corners (serial heap, sharded calendar, threaded
    // heap) cover each engine mechanism once.
    let spec = WorkloadSpec {
        duration: 4_000,
        drain: 8_000,
        ..WorkloadSpec::default_spec()
    };
    let scenario = LoadScenario {
        name: "grid-crash".into(),
        crash: Some((spec.n - 1, spec.duration / 2)),
        partition: None,
        spec,
    };
    let reference = run_load(&scenario, QueueCoreKind::Heap, 1, 1, true);
    assert!(reference.histogram.count() > 0);
    for (core, shards, threads) in [(QueueCoreKind::Calendar, 4, 1), (QueueCoreKind::Heap, 2, 4)] {
        let run = run_load(&scenario, core, shards, threads, true);
        let label = format!("core={core:?} S={shards} T={threads}");
        assert_eq!(run.trace, reference.trace, "{label}: trace diverged");
        assert_eq!(
            run.histogram, reference.histogram,
            "{label}: histogram diverged"
        );
        assert_eq!(
            run.completed, reference.completed,
            "{label}: latencies diverged"
        );
    }
}
