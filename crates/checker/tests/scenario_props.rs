//! Property tests over random [`Scenario`] descriptors.
//!
//! 1. Scenario descriptors are plain data, so generating them randomly
//!    and replaying them must be deterministic: the same scenario and
//!    seed always produce the identical engine report.
//! 2. The sweep itself is deterministic where the model promises it:
//!    for crash-free input-determined (uniform-input) scenarios, a
//!    sweep row — which condenses both backends, including the
//!    wall-clock threaded runtime — renders byte-identically across
//!    repeated runs.

use amacl_checker::scenario::{
    sweep_scenario, Scenario, ScenarioAlgo, ScenarioInputs, ScenarioSched, ScenarioTopo,
    SweepOutcome,
};
use amacl_core::wpaxos::{WpaxosConfig, WpaxosNode};
use amacl_model::ids::Slot;
use amacl_model::mac::MacReport;
use amacl_model::sim::crash::CrashSpec;
use amacl_model::sim::queue::QueueCoreKind;
use amacl_model::sim::time::Time;
use amacl_model::sim::trace::Trace;
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_topo() -> impl Strategy<Value = ScenarioTopo> {
    prop_oneof![
        (3usize..7).prop_map(ScenarioTopo::Clique),
        (3usize..7).prop_map(ScenarioTopo::Line),
        (4usize..7).prop_map(ScenarioTopo::Ring),
        Just(ScenarioTopo::Grid(2, 2)),
        Just(ScenarioTopo::Grid(3, 2)),
        Just(ScenarioTopo::Torus(3, 3)),
        Just(ScenarioTopo::Hypercube(2)),
        Just(ScenarioTopo::Hypercube(3)),
        (0u64..40).prop_map(|seed| ScenarioTopo::RandomTree(5, seed)),
    ]
}

fn arb_sched() -> impl Strategy<Value = ScenarioSched> {
    prop_oneof![
        (1u64..6).prop_map(|f_ack| ScenarioSched::Sync { f_ack }),
        (1u64..6).prop_map(|f_ack| ScenarioSched::MaxDelay { f_ack }),
        (2u64..8).prop_map(|f_ack| ScenarioSched::Random { f_ack }),
        (1u64..3, 8u64..17).prop_map(|(f_prog, f_ack)| ScenarioSched::Dual { f_prog, f_ack }),
        (1u64..4, 5u64..40).prop_map(|(f_ack, release)| ScenarioSched::Partition {
            f_ack,
            from: vec![0],
            to: vec![1],
            release,
        }),
        (1u64..4, vec((0u64..3, 1u64..12), 0..4)).prop_map(|(default_delay, raw)| {
            ScenarioSched::Scripted {
                default_delay,
                delays: raw
                    .into_iter()
                    .map(|(nth, delay)| (0usize, nth, delay))
                    .collect(),
            }
        }),
    ]
}

/// Random scenarios over the full descriptor space: every scheduler
/// family, both crash kinds (placed on the last slot so lines and
/// rings stay connected), mixed or uniform inputs.
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (arb_topo(), arb_sched(), 0usize..3, 1u64..20, any::<bool>()).prop_map(
        |(topo, sched, crash_kind, t, uniform)| {
            let n = topo.build().len();
            // A crash is only survivable when a majority remains.
            let crashes = match crash_kind {
                0 => vec![],
                1 if n >= 3 => vec![CrashSpec::AtTime {
                    slot: Slot(n - 1),
                    time: Time(t),
                }],
                _ if n >= 3 => vec![CrashSpec::MidBroadcast {
                    slot: Slot(n - 1),
                    nth_broadcast: t % 3,
                    delivered: 1,
                }],
                _ => vec![],
            };
            Scenario {
                name: "generated".into(),
                algo: ScenarioAlgo::Wpaxos,
                topo,
                sched,
                crashes,
                inputs: if uniform {
                    ScenarioInputs::Uniform(1)
                } else {
                    ScenarioInputs::Alternating
                },
                strict: false,
                expect_stall: false,
            }
        },
    )
}

/// Crash-free uniform-input scenarios: the input-determined slice on
/// which even the threaded backend's condensed outcome is fixed.
fn arb_determined_scenario() -> impl Strategy<Value = Scenario> {
    (arb_topo(), arb_sched(), 0u64..3).prop_map(|(topo, sched, v)| Scenario {
        name: "determined".into(),
        algo: ScenarioAlgo::Wpaxos,
        topo,
        sched,
        crashes: vec![],
        inputs: ScenarioInputs::Uniform(v),
        strict: true,
        expect_stall: false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same scenario + same seed = bit-identical engine reports,
    /// across the whole descriptor space (partitions, scripted
    /// schedules, timed and mid-broadcast crashes included).
    #[test]
    fn engine_sweep_is_deterministic(scenario in arb_scenario(), seed in 0u64..1000) {
        prop_assert!(scenario.validate().is_ok(), "{scenario:?}");
        let a = scenario.run_engine(seed);
        let b = scenario.run_engine(seed);
        prop_assert_eq!(&a, &b, "scenario replay diverged: {:?}", scenario);
        // Safety holds under every generated adversary: deciders never
        // disagree. Termination is only the paper's promise crash-free
        // (Theorem 3.2: a single crash can stall deterministic
        // consensus under the right schedule, and the generator does
        // find such schedules).
        prop_assert!(a.decided_values().len() <= 1, "disagreement under {scenario:?}");
        if scenario.crashes.is_empty() {
            prop_assert!(a.all_decided, "{:?} did not terminate: {:?}", scenario, a.decisions);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For input-determined scenarios the full cross-backend sweep row
    /// — threaded runtime included — renders byte-identically on
    /// every run: same scenario + seed, same report bytes.
    #[test]
    fn sweep_reports_are_byte_identical(scenario in arb_determined_scenario(), seed in 0u64..100) {
        prop_assert!(scenario.validate().is_ok(), "{scenario:?}");
        let mut first = SweepOutcome { rows: vec![sweep_scenario(&scenario, seed)] };
        let mut second = SweepOutcome { rows: vec![sweep_scenario(&scenario, seed)] };
        prop_assert!(first.ok(), "sweep failed:\n{}", first.render());
        // The barrier share is wall-clock derived (worker timers) and
        // the wakeup count follows the machine's pool size, so those
        // two columns are exempt from the byte-identity promise.
        for row in first.rows.iter_mut().chain(second.rows.iter_mut()) {
            row.shard_stats.barrier_pct = 0;
            row.shard_stats.worker_wakeups = 0;
        }
        prop_assert_eq!(first.render(), second.render());
    }
}

/// One traced wPAXOS engine run of `scenario` at the given queue core,
/// shard count, and worker thread count.
fn traced_run(
    scenario: &Scenario,
    seed: u64,
    core: QueueCoreKind,
    shards: usize,
    threads: usize,
) -> (MacReport, Trace) {
    let n = scenario.topo.build().len();
    let iv = scenario.inputs.materialize(n);
    let mut backend = scenario
        .sim_backend_sharded(seed, core, shards)
        .threads(threads);
    let (report, _, trace) =
        backend.execute_traced(&mut |s: Slot| WpaxosNode::new(iv[s.index()], WpaxosConfig::new(n)));
    (report, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharded engine's determinism contract over the full random
    /// descriptor space: for shard counts {1, 2, 3, 7} and both queue
    /// cores, the event **trace** — not just the condensed report — is
    /// byte-identical to the serial engine's. Crashes (timed and
    /// mid-broadcast), partitions, scripted schedules, and the new
    /// torus/hypercube/random-tree topologies are all in scope.
    #[test]
    fn sharded_traces_are_byte_identical_to_serial(
        scenario in arb_scenario(),
        seed in 0u64..500,
    ) {
        prop_assert!(scenario.validate().is_ok(), "{scenario:?}");
        for core in QueueCoreKind::all() {
            let (serial_report, serial_trace) = traced_run(&scenario, seed, core, 1, 1);
            for shards in [2usize, 3, 7] {
                let (report, trace) = traced_run(&scenario, seed, core, shards, 1);
                prop_assert_eq!(
                    &serial_report, &report,
                    "report diverged: {} core, {} shards, {:?}", core, shards, scenario
                );
                prop_assert_eq!(
                    &serial_trace, &trace,
                    "trace diverged: {} core, {} shards, {:?}", core, shards, scenario
                );
            }
        }
    }

    /// The parallel stepper's determinism contract over the same
    /// descriptor space: with 4 worker threads stepping each window,
    /// the event trace is byte-identical to serial for shard counts
    /// {1, 2, 3, 7} and both queue cores. Crashes force the merged
    /// fallback; crash-free windows take the parallel commit path —
    /// both must land on the same bytes.
    #[test]
    fn threaded_traces_are_byte_identical_to_serial(
        scenario in arb_scenario(),
        seed in 0u64..500,
    ) {
        prop_assert!(scenario.validate().is_ok(), "{scenario:?}");
        for core in QueueCoreKind::all() {
            let (serial_report, serial_trace) = traced_run(&scenario, seed, core, 1, 1);
            for shards in [1usize, 2, 3, 7] {
                let (report, trace) = traced_run(&scenario, seed, core, shards, 4);
                prop_assert_eq!(
                    &serial_report, &report,
                    "report diverged: {} core, {} shards, 4 threads, {:?}", core, shards, scenario
                );
                prop_assert_eq!(
                    &serial_trace, &trace,
                    "trace diverged: {} core, {} shards, 4 threads, {:?}", core, shards, scenario
                );
            }
        }
    }
}
