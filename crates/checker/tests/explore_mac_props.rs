//! Property tests for the `explore_mac` determinism contract.
//!
//! Replay *is* the contract: a violation's schedule must reproduce the
//! identical violating state on a fresh machine, and re-running the
//! same bounded exploration must produce the identical outcome — same
//! counters, same violations, same rendered trace bytes. Descriptors
//! are drawn over the explorable slice of the scenario space: two-phase
//! cliques (wPAXOS's untimed ballot space grows past any useful bound,
//! see the `explore_mac` module docs), random binary inputs, crash
//! budgets 0–1, and all three ledger mutations, under both reductions.

use amacl_checker::explore_mac::{
    LedgerMutation, MacExploreConfig, MacExploreDescriptor, Reduction,
};
use amacl_checker::scenario::{ScenarioAlgo, ScenarioTopo};
use proptest::prelude::*;

fn arb_descriptor() -> impl Strategy<Value = MacExploreDescriptor> {
    (
        2usize..=3,
        proptest::collection::vec(0u64..=1, 3),
        0usize..=1,
        0usize..3,
    )
        .prop_map(|(n, bits, crash_budget, mut_idx)| MacExploreDescriptor {
            algo: ScenarioAlgo::TwoPhase,
            topo: ScenarioTopo::Clique(n),
            inputs: bits[..n].to_vec(),
            crash_budget,
            mutation: [
                LedgerMutation::None,
                LedgerMutation::AckEarly,
                LedgerMutation::DropReleases,
            ][mut_idx],
        })
}

fn bounded(reduction: Reduction) -> MacExploreConfig {
    // Small caps keep the walk fast; truncation is fine — the
    // properties under test are determinism and replay fidelity, not
    // full coverage.
    MacExploreConfig {
        max_states: 8_000,
        max_depth: 200,
        max_violations: 3,
        reduction,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same descriptor + same config = identical outcome (violations,
    /// counters, truncation), identical rendered trace bytes, and
    /// every emitted schedule replays to the identical violating
    /// decisions.
    #[test]
    fn emitted_schedules_replay_to_identical_violations(
        d in arb_descriptor(),
        dpor in any::<bool>(),
    ) {
        prop_assert!(d.validate().is_ok(), "{d:?}");
        let cfg = bounded(if dpor { Reduction::Dpor } else { Reduction::Naive });
        let a = d.explore(&cfg);
        let b = d.explore(&cfg);
        prop_assert_eq!(&a, &b, "explorer nondeterministic on {:?}", d);
        for (x, y) in a.violations.iter().zip(&b.violations) {
            prop_assert_eq!(x.render(), y.render(), "trace bytes diverged");
        }
        for v in &a.violations {
            prop_assert_eq!(
                d.replay_decisions(&v.schedule),
                v.decisions.clone(),
                "replay diverged from the recorded violation on {:?}",
                d
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every counterexample the explorer emits lowers into a valid
    /// scenario descriptor, and the lowering itself is deterministic.
    #[test]
    fn lowered_counterexamples_always_validate(d in arb_descriptor()) {
        let out = d.explore(&bounded(Reduction::Dpor));
        for (i, v) in out.violations.iter().enumerate() {
            let name = format!("lowered-{i}");
            let s = d.lower(&name, v);
            prop_assert!(
                s.validate().is_ok(),
                "schedule {:?} lowered to invalid scenario {:?}",
                v.schedule,
                s
            );
            prop_assert_eq!(&s, &d.lower(&name, v), "lowering nondeterministic");
        }
    }
}
