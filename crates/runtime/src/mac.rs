//! The threaded MAC layer implementation.
//!
//! Real OS threads and channels stand in for radios: one thread per
//! node, one "ether" thread standing in for the shared medium. The
//! ether owns *timing* (jittered deliveries, wall-clock deadlines) but
//! delegates every *semantic* decision — which confirmations gate an
//! ack, which broadcast a planned crash interrupts and after how many
//! deliveries, which acks a node's death releases — to the shared
//! [`BcastLedger`] in `amacl-model`. The discrete-event engine drives
//! the very same ledger, so the two backends cannot drift apart on the
//! model's delivery/ack/crash contract; they differ only in how time
//! passes.
//!
//! [`MacRuntime`] also implements the backend-agnostic
//! [`MacLayer`] trait, so any [`Process`] can run here or on the
//! simulator through one interface.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use amacl_model::ids::{NodeId, Slot};
use amacl_model::mac::{Admission, BcastLedger, MacLayer, MacReport};
use amacl_model::proc::{NodeCell, Process, Value};
use amacl_model::sim::crash::CrashSpec;
use amacl_model::sim::time::Time;
use amacl_model::topo::Topology;

/// A mid-broadcast crash to inject into a threaded run: the node dies
/// during its `nth` broadcast (0-indexed), after exactly `delivered`
/// neighbors received it — the partial-delivery failure mode the model
/// allows (paper Section 2).
#[derive(Clone, Copy, Debug)]
pub struct RuntimeCrash {
    /// Node to crash.
    pub slot: usize,
    /// Which of its broadcasts to interrupt.
    pub nth_broadcast: u64,
    /// Neighbor deliveries to allow before the crash.
    pub delivered: usize,
}

/// A timed crash to inject into a threaded run: the node dies `at` a
/// wall-clock offset from the run start, whatever it is doing — the
/// threaded counterpart of [`CrashSpec::AtTime`]. Deliveries of the
/// node's in-flight broadcasts that have not left the ether yet are
/// cancelled, matching the engine's semantics.
#[derive(Clone, Copy, Debug)]
pub struct TimedCrash {
    /// Node to crash.
    pub slot: usize,
    /// Wall-clock offset from the run start.
    pub at: Duration,
}

/// Configuration for a [`MacRuntime`] run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Maximum per-delivery jitter the ether injects.
    pub max_jitter: Duration,
    /// Seed for the jitter and for per-node process randomness.
    pub seed: u64,
    /// Wall-clock budget; undecided nodes after this long are reported
    /// as such.
    pub timeout: Duration,
    /// Mid-broadcast crashes to inject (at most one per node).
    pub crashes: Vec<RuntimeCrash>,
    /// Timed crashes to inject (at most one per node).
    pub timed_crashes: Vec<TimedCrash>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            max_jitter: Duration::from_micros(500),
            seed: 0,
            timeout: Duration::from_secs(20),
            crashes: Vec::new(),
            timed_crashes: Vec::new(),
        }
    }
}

impl RuntimeConfig {
    /// Routes engine [`CrashSpec`]s into this threaded configuration:
    /// mid-broadcast crashes map structurally, timed crashes map with
    /// `tick` as the wall-clock length of one virtual tick. This is
    /// how one crash plan drives both backends in a cross-check.
    pub fn with_crash_specs(mut self, specs: &[CrashSpec], tick: Duration) -> Self {
        for spec in specs {
            match *spec {
                CrashSpec::AtTime { slot, time } => self.timed_crashes.push(TimedCrash {
                    slot: slot.index(),
                    at: tick.saturating_mul(u32::try_from(time.ticks()).unwrap_or(u32::MAX)),
                }),
                CrashSpec::MidBroadcast {
                    slot,
                    nth_broadcast,
                    delivered,
                } => self.crashes.push(RuntimeCrash {
                    slot: slot.index(),
                    nth_broadcast,
                    delivered,
                }),
            }
        }
        self
    }
}

/// Outcome of a threaded run.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Per-slot decided values (`None` = undecided at timeout).
    pub decisions: Vec<Option<Value>>,
    /// Wall-clock times of each decision, relative to the start.
    pub decision_latency: Vec<Option<Duration>>,
    /// Total broadcasts accepted by the ether.
    pub broadcasts: u64,
    /// Total deliveries performed.
    pub deliveries: u64,
    /// Whether every node decided before the timeout.
    pub all_decided: bool,
    /// Total wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RuntimeReport {
    /// Distinct decided values, sorted.
    pub fn decided_values(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self.decisions.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Converts to the backend-neutral [`MacReport`] shape.
    pub fn to_mac_report(&self) -> MacReport {
        MacReport {
            backend: "threads",
            decisions: self.decisions.clone(),
            all_decided: self.all_decided,
            broadcasts: self.broadcasts,
            deliveries: self.deliveries,
        }
    }
}

enum NodeEvent<M> {
    Deliver { msg: M, bcast: u64 },
    Ack,
    Stop,
}

enum EtherMsg<M> {
    Broadcast { from: usize, msg: M },
    Confirm { bcast: u64, by: usize },
    Stop,
}

struct DecisionNote {
    slot: usize,
    value: Value,
    at: Instant,
}

/// The threaded MAC runtime. Create one per run.
pub struct MacRuntime {
    topo: Topology,
    cfg: RuntimeConfig,
}

impl MacRuntime {
    /// Creates a runtime over the given topology.
    pub fn new(topo: Topology, cfg: RuntimeConfig) -> Self {
        Self { topo, cfg }
    }

    /// Runs one process per topology slot (ids equal slot indices)
    /// until every node decides or the timeout expires.
    pub fn run<P>(&self, mut init: impl FnMut(Slot) -> P) -> RuntimeReport
    where
        P: Process + Send,
        P::Msg: Send,
    {
        let n = self.topo.len();
        let start = Instant::now();

        let (ether_tx, ether_rx) = unbounded::<EtherMsg<P::Msg>>();
        let mut inbox_txs = Vec::with_capacity(n);
        let mut inbox_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<NodeEvent<P::Msg>>();
            inbox_txs.push(tx);
            inbox_rxs.push(rx);
        }
        let (dec_tx, dec_rx) = bounded::<DecisionNote>(n.max(1));

        let broadcasts = Arc::new(AtomicU64::new(0));
        let deliveries = Arc::new(AtomicU64::new(0));

        // --- Ether thread.
        let ether_handle = {
            let topo = self.topo.clone();
            let inboxes = inbox_txs.clone();
            let cfg = self.cfg.clone();
            let broadcasts = Arc::clone(&broadcasts);
            let deliveries = Arc::clone(&deliveries);
            thread::spawn(move || {
                ether_loop(
                    &topo,
                    &cfg,
                    start,
                    &inboxes,
                    &ether_rx,
                    &broadcasts,
                    &deliveries,
                )
            })
        };

        // --- Node threads.
        let mut node_handles = Vec::with_capacity(n);
        for (slot, inbox) in inbox_rxs.into_iter().enumerate() {
            let mut proc_ = init(Slot(slot));
            let ether = ether_tx.clone();
            let decisions = dec_tx.clone();
            let seed = self.cfg.seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            node_handles.push(thread::spawn(move || {
                node_loop(slot, &mut proc_, seed, &inbox, &ether, &decisions, start);
            }));
        }
        drop(dec_tx);

        // --- Collect decisions until every non-crashed node decided or
        // the timeout expires. (A node may decide before its scheduled
        // crash; only never-crashing nodes count toward completion.)
        let will_crash: Vec<bool> = {
            let mut v = vec![false; n];
            for c in &self.cfg.crashes {
                v[c.slot] = true;
            }
            for c in &self.cfg.timed_crashes {
                v[c.slot] = true;
            }
            v
        };
        let expected = will_crash.iter().filter(|c| !**c).count();
        let mut decisions: Vec<Option<Value>> = vec![None; n];
        let mut latency: Vec<Option<Duration>> = vec![None; n];
        let deadline = start + self.cfg.timeout;
        let mut decided = 0;
        while decided < expected {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match dec_rx.recv_timeout(deadline - now) {
                Ok(note) => {
                    if decisions[note.slot].is_none() {
                        decisions[note.slot] = Some(note.value);
                        latency[note.slot] = Some(note.at - start);
                        if !will_crash[note.slot] {
                            decided += 1;
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // --- Shut everything down.
        let _ = ether_tx.send(EtherMsg::Stop);
        for tx in &inbox_txs {
            let _ = tx.send(NodeEvent::Stop);
        }
        for h in node_handles {
            let _ = h.join();
        }
        let _ = ether_handle.join();

        RuntimeReport {
            all_decided: decided == expected,
            decisions,
            decision_latency: latency,
            broadcasts: broadcasts.load(Ordering::Relaxed),
            deliveries: deliveries.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
        }
    }
}

impl<P> MacLayer<P> for MacRuntime
where
    P: Process + Send,
    P::Msg: Send,
{
    fn backend_name(&self) -> &'static str {
        "threads"
    }

    fn execute(&mut self, init: &mut dyn FnMut(Slot) -> P) -> MacReport {
        self.run(init).to_mac_report()
    }
}

/// One node's event loop: process deliveries and acks in arrival order,
/// forwarding broadcast requests to the ether and decisions to the
/// collector.
fn node_loop<P>(
    slot: usize,
    proc_: &mut P,
    seed: u64,
    inbox: &Receiver<NodeEvent<P::Msg>>,
    ether: &Sender<EtherMsg<P::Msg>>,
    decisions: &Sender<DecisionNote>,
    start: Instant,
) where
    P: Process,
{
    let id = NodeId(slot as u64);
    let mut cell: NodeCell<P::Msg> = NodeCell::new(seed);
    let mut busy = false;
    let mut reported = false;

    let now_ticks = || Time(start.elapsed().as_micros() as u64);

    macro_rules! after_handler {
        () => {
            if let Some(msg) = cell.outbox.take() {
                busy = true;
                let _ = ether.send(EtherMsg::Broadcast { from: slot, msg });
            }
            if !reported {
                if let Some(d) = cell.decision {
                    reported = true;
                    let _ = decisions.send(DecisionNote {
                        slot,
                        value: d.value,
                        at: Instant::now(),
                    });
                }
            }
        };
    }

    {
        let mut ctx = cell.ctx(id, now_ticks(), busy);
        proc_.on_start(&mut ctx);
    }
    after_handler!();

    while let Ok(event) = inbox.recv() {
        match event {
            NodeEvent::Deliver { msg, bcast } => {
                {
                    let mut ctx = cell.ctx(id, now_ticks(), busy);
                    proc_.on_receive(msg, &mut ctx);
                }
                after_handler!();
                let _ = ether.send(EtherMsg::Confirm { bcast, by: slot });
            }
            NodeEvent::Ack => {
                busy = false;
                {
                    let mut ctx = cell.ctx(id, now_ticks(), busy);
                    proc_.on_ack(&mut ctx);
                }
                after_handler!();
            }
            NodeEvent::Stop => break,
        }
    }
}

struct PendingDelivery<M> {
    due: Instant,
    seq: u64,
    to: usize,
    msg: M,
    bcast: u64,
}

impl<M> PartialEq for PendingDelivery<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl<M> Eq for PendingDelivery<M> {}
impl<M> PartialOrd for PendingDelivery<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for PendingDelivery<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: min-heap on (due, seq).
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The shared ether: wall-clock jitter and channel transport around
/// the model semantics in [`BcastLedger`].
fn ether_loop<M: Clone>(
    topo: &Topology,
    cfg: &RuntimeConfig,
    start: Instant,
    inboxes: &[Sender<NodeEvent<M>>],
    rx: &Receiver<EtherMsg<M>>,
    broadcasts: &AtomicU64,
    deliveries: &AtomicU64,
) {
    let n = topo.len();
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0x5EED));
    let mut heap: BinaryHeap<PendingDelivery<M>> = BinaryHeap::new();
    let mut ledger = BcastLedger::new(n);
    for c in &cfg.crashes {
        ledger.arm_watch(c.slot, c.nth_broadcast, c.delivered);
    }
    // Timed-crash deadlines, soonest LAST (so firing pops from the
    // back). Per-broadcast sender ids let a crash cancel the dead
    // node's still-queued deliveries, mirroring the engine's
    // cancel-on-crash semantics.
    let mut timed: Vec<(Instant, usize)> = cfg
        .timed_crashes
        .iter()
        .map(|c| (start + c.at, c.slot))
        .collect();
    timed.sort_by(|a, b| b.cmp(a));
    let mut bcast_sender: Vec<usize> = Vec::new();
    let mut next_bcast = 0u64;
    let mut seq = 0u64;

    // Kills `node`: marks it crashed in the ledger, stops its thread,
    // and delivers any acks its death releases (acks wait for
    // non-faulty neighbors only).
    let crash_node = |ledger: &mut BcastLedger, node: usize| {
        if !ledger.mark_crashed(node) {
            return;
        }
        let _ = inboxes[node].send(NodeEvent::Stop);
        for (_bcast, sender) in ledger.release_obligations_of(node) {
            let _ = inboxes[sender].send(NodeEvent::Ack);
        }
    };

    let mut schedule = |heap: &mut BinaryHeap<PendingDelivery<M>>,
                        rng: &mut SmallRng,
                        to: usize,
                        msg: M,
                        bcast: u64| {
        let jitter_us = if cfg.max_jitter.is_zero() {
            0
        } else {
            rng.gen_range(0..cfg.max_jitter.as_micros() as u64)
        };
        heap.push(PendingDelivery {
            due: Instant::now() + Duration::from_micros(jitter_us),
            seq,
            to,
            msg,
            bcast,
        });
        seq += 1;
    };

    loop {
        // Fire due timed crashes and flush due deliveries in deadline
        // order — the order matters because a crash cancels the dead
        // sender's still-queued deliveries (the engine's
        // cancel-on-crash semantics: a broadcast cut off by AtTime
        // reaches nobody else).
        let now = Instant::now();
        loop {
            let next_crash = timed.last().map(|&(due, _)| due);
            let next_deliv = heap.peek().map(|d| d.due);
            match (next_crash, next_deliv) {
                (Some(c), d) if c <= now && d.is_none_or(|d| c <= d) => {
                    let (_, slot) = timed.pop().expect("peeked");
                    crash_node(&mut ledger, slot);
                    let kept: Vec<PendingDelivery<M>> = std::mem::take(&mut heap)
                        .into_vec()
                        .into_iter()
                        .filter(|d| bcast_sender[d.bcast as usize] != slot)
                        .collect();
                    heap = BinaryHeap::from(kept);
                }
                (_, Some(due)) if due <= now => {
                    let d = heap.pop().expect("peeked");
                    if ledger.is_crashed(d.to) {
                        // A dead receiver never confirms; its
                        // obligation is excused, which may complete
                        // the sender's ack.
                        if let Some(sender) = ledger.confirm(d.bcast, d.to) {
                            let _ = inboxes[sender].send(NodeEvent::Ack);
                        }
                        continue;
                    }
                    deliveries.fetch_add(1, Ordering::Relaxed);
                    let _ = inboxes[d.to].send(NodeEvent::Deliver {
                        msg: d.msg,
                        bcast: d.bcast,
                    });
                }
                _ => break,
            }
        }
        // Wait for traffic or the next deadline.
        let deadline = match (
            timed.last().map(|&(due, _)| due),
            heap.peek().map(|d| d.due),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let timeout = deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        let msg = match rx.recv_timeout(timeout) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match msg {
            EtherMsg::Broadcast { from, msg } => {
                if ledger.is_crashed(from) {
                    continue;
                }
                broadcasts.fetch_add(1, Ordering::Relaxed);
                let bcast = next_bcast;
                next_bcast += 1;
                debug_assert_eq!(bcast_sender.len() as u64, bcast);
                bcast_sender.push(from);
                let alive_neighbors: Vec<usize> = topo
                    .neighbors(Slot(from))
                    .iter()
                    .map(|s| s.index())
                    .filter(|&v| !ledger.is_crashed(v))
                    .collect();

                match ledger.admit_broadcast(from, bcast) {
                    Admission::CrashImmediately => {
                        // The planned crash interrupts before any
                        // delivery: nobody receives, nobody acks.
                        crash_node(&mut ledger, from);
                    }
                    Admission::PartialThenCrash { delivered } => {
                        // The sender dies now and is never acked; at
                        // most `delivered` neighbors receive. The
                        // prefix is taken over ALL neighbors — a slot
                        // falling on a dead receiver is consumed and
                        // lost at the flush above, matching the
                        // engine, where a scheduled delivery to a dead
                        // receiver also consumes its countdown slot.
                        crash_node(&mut ledger, from);
                        for &to in topo.neighbors(Slot(from)).iter().take(delivered) {
                            schedule(&mut heap, &mut rng, to.index(), msg.clone(), bcast);
                        }
                    }
                    Admission::Deliver => {
                        let awaiting = alive_neighbors.iter().copied().collect();
                        if ledger.register_ack_obligation(bcast, from, awaiting) {
                            // Degenerate: nothing to deliver, ack
                            // immediately.
                            let _ = inboxes[from].send(NodeEvent::Ack);
                            continue;
                        }
                        for &to in &alive_neighbors {
                            schedule(&mut heap, &mut rng, to, msg.clone(), bcast);
                        }
                    }
                }
            }
            EtherMsg::Confirm { bcast, by } => {
                if let Some(sender) = ledger.confirm(bcast, by) {
                    let _ = inboxes[sender].send(NodeEvent::Ack);
                }
            }
            EtherMsg::Stop => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amacl_model::msg::Payload;
    use amacl_model::proc::Context;

    #[derive(Clone, Debug)]
    struct Token(u64);
    impl Payload for Token {
        fn id_count(&self) -> usize {
            1
        }
    }

    /// Floods a token once; decides the minimum origin value seen after
    /// its own broadcast completes and it has heard all peers (clique
    /// only, n known).
    struct MinOnce {
        n: usize,
        own: u64,
        seen: std::collections::BTreeSet<u64>,
        acked: bool,
    }

    impl Process for MinOnce {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            self.seen.insert(self.own);
            ctx.broadcast(Token(self.own));
        }
        fn on_receive(&mut self, msg: Token, ctx: &mut Context<'_, Token>) {
            self.seen.insert(msg.0);
            self.maybe_decide(ctx);
        }
        fn on_ack(&mut self, ctx: &mut Context<'_, Token>) {
            self.acked = true;
            self.maybe_decide(ctx);
        }
    }

    impl MinOnce {
        fn maybe_decide(&mut self, ctx: &mut Context<'_, Token>) {
            if self.acked && self.seen.len() == self.n && ctx.decided().is_none() {
                ctx.decide(*self.seen.iter().next().unwrap());
            }
        }
    }

    fn cfg(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            max_jitter: Duration::from_micros(200),
            seed,
            timeout: Duration::from_secs(10),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn clique_flood_decides_min() {
        let n = 5;
        let rt = MacRuntime::new(Topology::clique(n), cfg(1));
        let report = rt.run(|s| MinOnce {
            n,
            own: 10 + s.index() as u64,
            seen: Default::default(),
            acked: false,
        });
        assert!(report.all_decided, "undecided: {:?}", report.decisions);
        assert_eq!(report.decided_values(), vec![10]);
        assert_eq!(report.broadcasts, n as u64);
        assert_eq!(report.deliveries, (n * (n - 1)) as u64);
    }

    /// Relay flood for multihop: forwards the minimum seen, re-sending
    /// whenever it learns a smaller value; decides after `rounds` acks.
    struct RelayMin {
        best: u64,
        rounds_left: u64,
        dirty: bool,
    }

    impl Process for RelayMin {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token(self.best));
        }
        fn on_receive(&mut self, msg: Token, ctx: &mut Context<'_, Token>) {
            if msg.0 < self.best {
                self.best = msg.0;
                self.dirty = true;
            }
            if self.dirty && !ctx.is_busy() {
                self.dirty = false;
                ctx.broadcast(Token(self.best));
            }
        }
        fn on_ack(&mut self, ctx: &mut Context<'_, Token>) {
            self.rounds_left = self.rounds_left.saturating_sub(1);
            if self.rounds_left == 0 {
                ctx.decide(self.best);
            } else {
                ctx.broadcast(Token(self.best));
            }
        }
    }

    #[test]
    fn multihop_relay_converges_on_a_line() {
        let n = 6;
        let rt = MacRuntime::new(Topology::line(n), cfg(2));
        let report = rt.run(|s| RelayMin {
            best: 100 - s.index() as u64,
            rounds_left: 4 * n as u64,
            dirty: false,
        });
        assert!(report.all_decided);
        assert_eq!(report.decided_values(), vec![100 - (n as u64 - 1)]);
    }

    /// Records how its broadcasts interleave with its ack, proving the
    /// ack-after-all-processing discipline.
    struct AckProbe {
        got_ack: bool,
    }

    impl Process for AckProbe {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token(ctx.id().raw()));
            // A second attempt while busy must be discarded.
            assert!(!ctx.broadcast(Token(99)).is_accepted());
        }
        fn on_receive(&mut self, _msg: Token, _ctx: &mut Context<'_, Token>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Token>) {
            self.got_ack = true;
            ctx.decide(0);
        }
    }

    #[test]
    fn acks_arrive_and_busy_broadcasts_are_discarded() {
        let rt = MacRuntime::new(Topology::ring(4), cfg(3));
        let report = rt.run(|_| AckProbe { got_ack: false });
        assert!(report.all_decided);
        assert_eq!(report.broadcasts, 4);
    }

    #[test]
    fn mid_broadcast_crash_stops_the_node_and_frees_peers() {
        // Node 0 crashes during its first broadcast with only one
        // delivery. Peers must still receive acks (their obligation
        // toward the dead node is released) and finish their rounds.
        let n = 4;
        let mut config = cfg(9);
        config.crashes = vec![RuntimeCrash {
            slot: 0,
            nth_broadcast: 0,
            delivered: 1,
        }];
        let rt = MacRuntime::new(Topology::clique(n), config);
        let report = rt.run(|s| RelayMin {
            best: 50 + s.index() as u64,
            rounds_left: 6,
            dirty: false,
        });
        assert!(report.all_decided, "{:?}", report.decisions);
        assert!(report.decisions[0].is_none(), "crashed node decided");
        // Exactly one neighbor heard the crashed node's value (50, the
        // global minimum); because survivors relay their best value,
        // all of them converge on it anyway.
        let survivors: std::collections::BTreeSet<u64> =
            report.decisions[1..].iter().flatten().copied().collect();
        assert_eq!(
            survivors,
            std::collections::BTreeSet::from([50]),
            "survivors did not converge on the partially-delivered minimum"
        );
    }

    #[test]
    fn timed_crash_kills_the_node_and_frees_peers() {
        // Node 0 dies at a wall-clock instant effectively before it
        // can act (the ether fires the deadline on its first pass, so
        // node 0's broadcast is refused). Survivors must still
        // receive acks and converge; node 0 never decides.
        let n = 5;
        let mut config = cfg(21);
        config.timed_crashes = vec![TimedCrash {
            slot: 0,
            at: Duration::ZERO,
        }];
        let rt = MacRuntime::new(Topology::clique(n), config);
        let report = rt.run(|s| RelayMin {
            best: 30 + s.index() as u64,
            rounds_left: 6,
            dirty: false,
        });
        assert!(report.all_decided, "{:?}", report.decisions);
        assert!(report.decisions[0].is_none(), "crashed node decided");
        let survivors: std::collections::BTreeSet<u64> =
            report.decisions[1..].iter().flatten().copied().collect();
        // Node 0's value (30, the global minimum) dies with it when
        // its broadcast is refused; survivors converge on 31. If the
        // race admits the broadcast first, cancellation may still let
        // 30 through to a prefix — either way agreement holds.
        assert_eq!(survivors.len(), 1, "disagreement: {:?}", report.decisions);
        assert!(
            survivors
                .iter()
                .next()
                .is_some_and(|v| *v == 30 || *v == 31),
            "unexpected value: {survivors:?}"
        );
    }

    #[test]
    fn crash_specs_route_into_the_runtime_config() {
        use amacl_model::ids::Slot;

        let config = RuntimeConfig::default().with_crash_specs(
            &[
                CrashSpec::AtTime {
                    slot: Slot(1),
                    time: Time(3),
                },
                CrashSpec::MidBroadcast {
                    slot: Slot(2),
                    nth_broadcast: 1,
                    delivered: 2,
                },
            ],
            Duration::from_millis(1),
        );
        assert_eq!(config.timed_crashes.len(), 1);
        assert_eq!(config.timed_crashes[0].slot, 1);
        assert_eq!(config.timed_crashes[0].at, Duration::from_millis(3));
        assert_eq!(config.crashes.len(), 1);
        assert_eq!(config.crashes[0].slot, 2);
        assert_eq!(config.crashes[0].nth_broadcast, 1);
        assert_eq!(config.crashes[0].delivered, 2);
    }

    #[test]
    fn zero_jitter_configuration_works() {
        let rt = MacRuntime::new(
            Topology::clique(3),
            RuntimeConfig {
                max_jitter: Duration::ZERO,
                ..cfg(4)
            },
        );
        let report = rt.run(|s| MinOnce {
            n: 3,
            own: s.index() as u64,
            seen: Default::default(),
            acked: false,
        });
        assert!(report.all_decided);
        assert_eq!(report.decided_values(), vec![0]);
    }

    #[test]
    fn runtime_runs_through_the_mac_layer_trait() {
        let mut rt = MacRuntime::new(Topology::clique(4), cfg(7));
        let layer: &mut dyn MacLayer<MinOnce> = &mut rt;
        assert_eq!(layer.backend_name(), "threads");
        let report = layer.execute(&mut |s| MinOnce {
            n: 4,
            own: 20 + s.index() as u64,
            seen: Default::default(),
            acked: false,
        });
        assert!(report.all_decided);
        assert_eq!(report.backend, "threads");
        assert_eq!(report.decided_values(), vec![20]);
        assert_eq!(report.agreement_value(), Some(20));
    }
}
