//! # `amacl-runtime`: a real concurrent abstract MAC layer
//!
//! The paper's pitch for the abstract MAC layer is deployability:
//! "our upper bounds can be easily implemented in real wireless devices
//! on existing MAC layers while preserving their correctness
//! guarantees." This crate backs that claim for the reproduction: it
//! runs the *same* [`Process`](amacl_model::proc::Process)
//! implementations that the discrete-event simulator runs — unmodified
//! — on a genuinely concurrent substrate built from OS threads and
//! channels, with real (wall-clock) nondeterministic timing.
//!
//! The MAC guarantees are enforced the honest way:
//!
//! * each node runs on its own thread, processing deliveries and acks
//!   from its inbox in arrival order;
//! * a shared *ether* thread schedules per-neighbor deliveries with
//!   random jitter, collects a processing confirmation from every
//!   neighbor, and only then delivers the sender's ack — so an ack
//!   really does mean every neighbor has received (and handled) the
//!   message;
//! * a node's broadcast while one is outstanding is discarded by the
//!   same [`Context`](amacl_model::proc::Context) discipline the
//!   simulator uses.
//!
//! There is no global clock and no `F_ack` dial: the bound emerges from
//! thread scheduling plus the configured jitter, exactly as it would
//! from a deployed MAC. Experiment E9 cross-validates decisions and
//! relative latencies against the simulator.
//!
//! The delivery/ack/crash *semantics* — which confirmations gate an
//! ack, how a planned mid-broadcast crash truncates delivery, which
//! acks a node's death releases — are not implemented here: the ether
//! drives the same [`BcastLedger`](amacl_model::mac::BcastLedger) the
//! discrete-event engine uses, and [`MacRuntime`] implements the
//! backend-agnostic [`MacLayer`](amacl_model::mac::MacLayer) trait, so
//! the two substrates expose one MAC layer through one interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mac;

pub use mac::{MacRuntime, RuntimeConfig, RuntimeCrash, RuntimeReport, TimedCrash};
