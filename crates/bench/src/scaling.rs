//! The scaling-aware engine workload behind `BENCH_engine.json` v3.
//!
//! One reference job — wPAXOS over a seeded random connected graph
//! under the random scheduler — parameterized by the network size, the
//! engine's queue core, and the shard count, so the same measurement
//! sweeps n ∈ {32, 128, 512} × {heap, calendar} × S ∈ {1, 4}. Edge
//! probability shrinks with `n` to keep node degree (and thus
//! per-broadcast fan-out) realistic rather than quadratic, which is
//! what makes the larger sizes exercise the queue instead of the
//! allocator. The shard dimension measures the conservative
//! coordinator's overhead: the execution is byte-identical at every
//! `S` (asserted), so any throughput delta is pure window/mailbox
//! bookkeeping.
//!
//! Used by `tables bench-engine` / `bench-gate`, the
//! `e16_queue_cores` / `e17_sharded` Criterion benches, and any test
//! that wants the reference workload; all of them fan seeds out over
//! [`crate::parallel::run_seeds`].

use amacl_core::harness::{alternating_inputs, run_wpaxos_on, run_wpaxos_sharded};
use amacl_model::prelude::*;

/// The `(n, seeds)` grid of the engine-throughput sweep. Seed counts
/// shrink with `n` so one full sweep stays tens of seconds even on a
/// slow CI runner (an n=512 run processes ~3.4M events).
pub const SWEEP: &[(usize, usize)] = &[(32, 16), (128, 4), (512, 2)];

/// The shard counts the sweep measures per `(core, n)` cell: serial
/// and one multi-shard configuration.
pub const SHARD_SWEEP: &[usize] = &[1, 4];

/// Edge probability for the reference random graph at size `n` —
/// denser when small, sparser when large, keeping mean degree in the
/// single digits to low tens across the sweep.
pub fn edge_probability(n: usize) -> f64 {
    match n {
        0..=32 => 0.15,
        33..=128 => 0.05,
        _ => 0.02,
    }
}

/// Runs the reference workload once on the given queue core and
/// returns the number of engine events processed (the unit of the
/// events/sec figures in `BENCH_engine.json`).
///
/// The event count is a pure function of `(n, seed)` — the queue core
/// must not change it, and the sweep asserts that it does not.
pub fn workload(core: QueueCoreKind, n: usize, seed: u64) -> u64 {
    let topo = Topology::random_connected(n, edge_probability(n), seed);
    let run = run_wpaxos_on(
        topo,
        &alternating_inputs(n),
        RandomScheduler::new(4, seed),
        core,
    );
    run.check.assert_ok();
    run.report.metrics.events
}

/// What one sharded reference run measured: the processed event count
/// (identical at every shard count by the determinism contract) plus
/// the coordinator counters `tables` surfaces per v3 row.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardedWorkloadStats {
    /// Engine events processed.
    pub events: u64,
    /// Deliveries routed through cross-shard mailboxes (0 when
    /// `shards == 1`).
    pub cross_shard_deliveries: u64,
    /// Conservative windows the coordinator opened (0 when serial).
    pub window_advances: u64,
}

/// [`workload`] on the sharded engine: same execution (asserted
/// upstream by the identity tests; re-checked by the sweep's event
/// counts), measured with `shards` worker shards.
pub fn workload_sharded(
    core: QueueCoreKind,
    n: usize,
    shards: usize,
    seed: u64,
) -> ShardedWorkloadStats {
    let topo = Topology::random_connected(n, edge_probability(n), seed);
    let run = run_wpaxos_sharded(
        topo,
        &alternating_inputs(n),
        RandomScheduler::new(4, seed),
        core,
        shards,
    );
    run.check.assert_ok();
    ShardedWorkloadStats {
        events: run.report.metrics.events,
        cross_shard_deliveries: run.report.metrics.cross_shard_deliveries,
        window_advances: run.report.metrics.shard_window_advances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_core_independent_and_seed_sensitive() {
        let heap = workload(QueueCoreKind::Heap, 32, 1);
        let calendar = workload(QueueCoreKind::Calendar, 32, 1);
        assert_eq!(heap, calendar, "queue core changed the event count");
        assert_ne!(heap, workload(QueueCoreKind::Heap, 32, 2));
    }

    #[test]
    fn sweep_grid_is_well_formed() {
        assert!(SWEEP.iter().any(|&(n, _)| n == 512));
        for &(n, seeds) in SWEEP {
            assert!(seeds >= 1, "n={n} has no seeds");
            assert!(edge_probability(n) * n as f64 >= 2.0, "n={n} too sparse");
        }
        assert!(SHARD_SWEEP.contains(&1), "serial reference row required");
        assert!(
            SHARD_SWEEP.iter().any(|&s| s > 1),
            "at least one multi-shard row required"
        );
    }

    #[test]
    fn sharded_workload_matches_serial_event_count() {
        let serial = workload(QueueCoreKind::Heap, 32, 3);
        let sharded = workload_sharded(QueueCoreKind::Heap, 32, 4, 3);
        assert_eq!(serial, sharded.events, "sharding changed the execution");
        assert!(sharded.cross_shard_deliveries > 0);
        assert!(sharded.window_advances > 0);
        let one = workload_sharded(QueueCoreKind::Calendar, 32, 1, 3);
        assert_eq!(one.events, serial);
        assert_eq!(one.cross_shard_deliveries, 0, "serial run used mailboxes");
    }
}
