//! The scaling-aware engine workload behind `BENCH_engine.json` v5.
//!
//! One reference job — wPAXOS over a seeded random connected graph
//! under the random scheduler — parameterized by the network size, the
//! engine's queue core, the shard count, and the worker thread count,
//! so the same measurement sweeps n ∈ {32, 128, 512} × {heap,
//! calendar} × (S, T) ∈ {(1,1), (4,1), (4,4)}. Edge probability
//! shrinks with `n` to keep node degree (and thus per-broadcast
//! fan-out) realistic rather than quadratic, which is what makes the
//! larger sizes exercise the queue instead of the allocator. The shard
//! dimension measures the conservative coordinator's overhead; the
//! thread dimension measures what the thread-per-shard parallel
//! stepper buys back. The execution is byte-identical at every `(S,
//! T)` (asserted), so any throughput delta is pure coordination cost
//! or real parallel speedup — never different work.
//!
//! Used by `tables bench-engine` / `bench-gate`, the
//! `e16_queue_cores` / `e17_sharded` Criterion benches, and any test
//! that wants the reference workload; all of them fan seeds out over
//! [`crate::parallel::run_seeds`].

use amacl_core::harness::{
    alternating_inputs, run_wpaxos_on, run_wpaxos_sharded, run_wpaxos_threaded,
};
use amacl_model::prelude::*;

/// The `(n, seeds)` grid of the engine-throughput sweep. Seed counts
/// shrink with `n` so one full sweep stays tens of seconds even on a
/// slow CI runner (an n=512 run processes ~3.4M events).
pub const SWEEP: &[(usize, usize)] = &[(32, 16), (128, 4), (512, 2)];

/// The shard counts the sweep measures per `(core, n)` cell: serial
/// and one multi-shard configuration.
pub const SHARD_SWEEP: &[usize] = &[1, 4];

/// The `(shards, threads)` configurations of the engine sweep: the serial
/// reference, the single-threaded sharded coordinator (its overhead),
/// and the thread-per-shard parallel stepper (its payoff).
pub const CONFIG_SWEEP: &[(usize, usize)] = &[(1, 1), (4, 1), (4, 4)];

/// Edge probability for the reference random graph at size `n` —
/// denser when small, sparser when large, keeping mean degree in the
/// single digits to low tens across the sweep.
pub fn edge_probability(n: usize) -> f64 {
    match n {
        0..=32 => 0.15,
        33..=128 => 0.05,
        _ => 0.02,
    }
}

/// Runs the reference workload once on the given queue core and
/// returns the number of engine events processed (the unit of the
/// events/sec figures in `BENCH_engine.json`).
///
/// The event count is a pure function of `(n, seed)` — the queue core
/// must not change it, and the sweep asserts that it does not.
pub fn workload(core: QueueCoreKind, n: usize, seed: u64) -> u64 {
    let topo = Topology::random_connected(n, edge_probability(n), seed);
    let run = run_wpaxos_on(
        topo,
        &alternating_inputs(n),
        RandomScheduler::new(4, seed),
        core,
    );
    run.check.assert_ok();
    run.report.metrics.events
}

/// What one sharded reference run measured: the processed event count
/// (identical at every shard count by the determinism contract) plus
/// the coordinator counters `tables` surfaces per v3 row and the
/// payload-arena counters surfaced per v5 row.
///
/// The arena counters are deterministic for a fixed `(n, seed,
/// shards)` — clones happen once per extra own-shard consumer and once
/// per extra destination shard per broadcast, never per wall-clock
/// accident — so they participate in equality (and thus in the
/// serial-vs-parallel driver assertion) like the event count does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardedWorkloadStats {
    /// Engine events processed.
    pub events: u64,
    /// Deliveries routed through cross-shard mailboxes (0 when
    /// `shards == 1`).
    pub cross_shard_deliveries: u64,
    /// Conservative windows the coordinator opened (0 when serial).
    pub window_advances: u64,
    /// Payload-arena clones the run performed (non-last release plus
    /// one per extra destination shard per cross-shard broadcast).
    pub payload_clones: u64,
    /// High-water mark of live arena payload bytes across all shards.
    pub arena_bytes_peak: u64,
}

/// [`workload`] on the sharded engine: same execution (asserted
/// upstream by the identity tests; re-checked by the sweep's event
/// counts), measured with `shards` worker shards.
pub fn workload_sharded(
    core: QueueCoreKind,
    n: usize,
    shards: usize,
    seed: u64,
) -> ShardedWorkloadStats {
    let topo = Topology::random_connected(n, edge_probability(n), seed);
    let run = run_wpaxos_sharded(
        topo,
        &alternating_inputs(n),
        RandomScheduler::new(4, seed),
        core,
        shards,
    );
    run.check.assert_ok();
    ShardedWorkloadStats {
        events: run.report.metrics.events,
        cross_shard_deliveries: run.report.metrics.cross_shard_deliveries,
        window_advances: run.report.metrics.shard_window_advances,
        payload_clones: run.report.metrics.payload_clones,
        arena_bytes_peak: run.report.metrics.arena_bytes_peak,
    }
}

/// What one threaded reference run measured: the sharded stats plus
/// the barrier-overhead share the parallel stepper's worker timers
/// expose.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedWorkloadStats {
    /// The deterministic coordinator stats (identical to the
    /// single-threaded sharded run's by the byte-identity contract).
    pub sharded: ShardedWorkloadStats,
    /// Share of worker wall-clock lost to window barriers, in percent
    /// (wall-clock derived — varies run to run).
    pub barrier_pct: f64,
    /// Supersteps the persistent pool executed (each covers up to
    /// `window_batch` consecutive windows per worker wakeup). Pool
    /// wake-policy: varies with the machine's core count, never with
    /// the execution.
    pub superstep_count: u64,
    /// Individual worker wakeups (`superstep_count x` pool size).
    pub worker_wakeups: u64,
}

/// Equality covers only the deterministic coordinator stats: the
/// barrier share is a wall-clock timer and the superstep/wakeup
/// counts follow the machine's pool size, so two runs of the
/// identical execution legitimately differ on them (and the
/// multi-seed driver's serial-vs-parallel result assertion must not
/// trip over that).
impl PartialEq for ThreadedWorkloadStats {
    fn eq(&self, other: &Self) -> bool {
        self.sharded == other.sharded
    }
}

/// [`workload_sharded`] on the thread-per-shard parallel stepper:
/// byte-identical execution, `threads` worker threads inside each
/// conservative window.
pub fn workload_threaded(
    core: QueueCoreKind,
    n: usize,
    shards: usize,
    threads: usize,
    seed: u64,
) -> ThreadedWorkloadStats {
    let topo = Topology::random_connected(n, edge_probability(n), seed);
    let run = run_wpaxos_threaded(
        topo,
        &alternating_inputs(n),
        RandomScheduler::new(4, seed),
        core,
        shards,
        threads,
    );
    run.check.assert_ok();
    ThreadedWorkloadStats {
        sharded: ShardedWorkloadStats {
            events: run.report.metrics.events,
            cross_shard_deliveries: run.report.metrics.cross_shard_deliveries,
            window_advances: run.report.metrics.shard_window_advances,
            payload_clones: run.report.metrics.payload_clones,
            arena_bytes_peak: run.report.metrics.arena_bytes_peak,
        },
        barrier_pct: run.report.metrics.barrier_pct(),
        superstep_count: run.report.metrics.superstep_count,
        worker_wakeups: run.report.metrics.worker_wakeups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_core_independent_and_seed_sensitive() {
        let heap = workload(QueueCoreKind::Heap, 32, 1);
        let calendar = workload(QueueCoreKind::Calendar, 32, 1);
        assert_eq!(heap, calendar, "queue core changed the event count");
        assert_ne!(heap, workload(QueueCoreKind::Heap, 32, 2));
    }

    #[test]
    fn sweep_grid_is_well_formed() {
        assert!(SWEEP.iter().any(|&(n, _)| n == 512));
        for &(n, seeds) in SWEEP {
            assert!(seeds >= 1, "n={n} has no seeds");
            assert!(edge_probability(n) * n as f64 >= 2.0, "n={n} too sparse");
        }
        assert!(SHARD_SWEEP.contains(&1), "serial reference row required");
        assert!(
            SHARD_SWEEP.iter().any(|&s| s > 1),
            "at least one multi-shard row required"
        );
    }

    #[test]
    fn sharded_workload_matches_serial_event_count() {
        let serial = workload(QueueCoreKind::Heap, 32, 3);
        let sharded = workload_sharded(QueueCoreKind::Heap, 32, 4, 3);
        assert_eq!(serial, sharded.events, "sharding changed the execution");
        assert!(sharded.cross_shard_deliveries > 0);
        assert!(sharded.window_advances > 0);
        assert!(sharded.payload_clones > 0, "cross-shard broadcasts clone");
        assert!(sharded.arena_bytes_peak > 0, "arena never held a payload");
        let one = workload_sharded(QueueCoreKind::Calendar, 32, 1, 3);
        assert_eq!(one.events, serial);
        assert_eq!(one.cross_shard_deliveries, 0, "serial run used mailboxes");
    }

    #[test]
    fn threaded_workload_matches_sharded_stats_exactly() {
        for core in QueueCoreKind::all() {
            let sharded = workload_sharded(core, 32, 4, 5);
            let threaded = workload_threaded(core, 32, 4, 4, 5);
            assert_eq!(
                sharded, threaded.sharded,
                "{core}: threads changed the execution"
            );
            assert!(
                (0.0..=100.0).contains(&threaded.barrier_pct),
                "barrier_pct {}",
                threaded.barrier_pct
            );
        }
        assert_eq!(CONFIG_SWEEP[0], (1, 1), "serial reference row required");
        assert!(
            CONFIG_SWEEP.iter().any(|&(s, t)| s > 1 && t > 1),
            "at least one parallel-stepper row required"
        );
    }

    /// The tentpole claim: on a machine with >= 4 cores, the
    /// thread-per-shard stepper beats the single-threaded sharded
    /// coordinator by > 2x wall-clock on the n=512 reference workload
    /// at S=4 — the same execution, byte for byte (event counts
    /// asserted equal), just stepped in parallel. Guarded by a
    /// core-count check so small containers self-skip honestly, and
    /// best-of-3 so one noisy scheduler hiccup on a shared runner
    /// cannot fail a genuine speedup.
    #[test]
    fn parallel_stepper_speedup_exceeds_2x_on_n512() {
        let cores = crate::parallel::default_threads();
        if cores < 4 {
            eprintln!("skipping parallel-stepper speedup assertion: {cores} core(s) < 4");
            return;
        }
        let (n, shards, threads, seed) = (512, 4, 4, 1);
        let mut best = 0.0f64;
        for attempt in 0..3 {
            let t0 = std::time::Instant::now();
            let single = workload_sharded(QueueCoreKind::Heap, n, shards, seed);
            let single_elapsed = t0.elapsed();
            let t1 = std::time::Instant::now();
            let multi = workload_threaded(QueueCoreKind::Heap, n, shards, threads, seed);
            let multi_elapsed = t1.elapsed();
            assert_eq!(single, multi.sharded, "threads changed the execution");
            let speedup = single_elapsed.as_secs_f64() / multi_elapsed.as_secs_f64().max(1e-9);
            best = best.max(speedup);
            if best > 2.0 {
                return;
            }
            eprintln!(
                "attempt {attempt}: {speedup:.2}x (best {best:.2}x, barrier {:.1}%), retrying",
                multi.barrier_pct
            );
        }
        panic!("expected > 2x at n={n} S={shards} T={threads}, best of 3 was {best:.2}x");
    }
}
