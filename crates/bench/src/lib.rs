//! # `amacl-bench`: the experiment harness
//!
//! Shared measurement code behind the Criterion benches
//! (`benches/e*.rs`) and the [`tables`](../src/bin/tables.rs) binary
//! that regenerates every experiment series in `EXPERIMENTS.md`.
//!
//! The paper is a theory paper: its "results" are asymptotic claims and
//! worst-case constructions rather than numbered tables of a testbed.
//! Each `eN` module here corresponds to one row of the experiment index
//! in `DESIGN.md` and produces the series whose *shape* the paper
//! predicts (who wins, by what factor, where the gaps open).
//!
//! Multi-seed sweeps parallelize with [`parallel::run_seeds`] — one
//! single-threaded engine per seed over crossbeam scoped threads, with
//! results returned in seed order so parallel and serial sweeps are
//! byte-identical. The `tables` binary's `bench-engine` mode uses it
//! to produce the `BENCH_engine.json` throughput baseline; its
//! `bench-latency` mode uses [`latency::measure_latency`] to produce
//! the `BENCH_latency.json` open-loop latency baseline, whose
//! virtual-tick quantiles are gated for *exact* equality (they are
//! seed-determined, so drift is a semantic regression, not noise).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod latency;
pub mod parallel;
pub mod scaling;
