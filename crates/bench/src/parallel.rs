//! Parallel multi-seed experiment driver.
//!
//! Large experiment sweeps (e1–e15) repeat the same measurement over
//! many seeds; every run is independent, and the discrete-event engine
//! is single-threaded — so the natural unit of parallelism is *one
//! engine per seed*, fanned out over crossbeam scoped threads. The
//! driver is generic over the per-seed measurement closure, so any
//! experiment series can be parallelized by swapping
//! `seeds.iter().map(run)` for [`run_seeds`].
//!
//! Determinism is preserved: each seed's measurement depends only on
//! the seed (engines are seeded, never wall-clock-dependent), and
//! results are returned **in input seed order** regardless of which
//! thread finished first — a parallel sweep and a serial sweep produce
//! byte-identical result vectors.

use std::time::{Duration, Instant};

/// One seed's measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct SeedResult<R> {
    /// The seed that produced this result.
    pub seed: u64,
    /// The measurement closure's output.
    pub result: R,
}

/// Runs `run(seed)` for every seed, fanning out over `threads` scoped
/// worker threads. Results come back in input order.
///
/// `threads == 1` degenerates to a serial loop (no thread spawn), so
/// callers can use one code path everywhere. Panics in `run`
/// propagate.
pub fn run_seeds<R, F>(seeds: &[u64], threads: usize, run: F) -> Vec<SeedResult<R>>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let threads = threads.max(1).min(seeds.len().max(1));
    if threads <= 1 {
        return seeds
            .iter()
            .map(|&seed| SeedResult {
                seed,
                result: run(seed),
            })
            .collect();
    }
    // Static block partition: contiguous chunks keep result reassembly
    // trivially order-preserving, and seed workloads are statistically
    // uniform so dynamic stealing would buy little.
    let chunk = seeds.len().div_ceil(threads);
    let run = &run;
    let mut chunks: Vec<Vec<SeedResult<R>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk)
            .map(|block| {
                scope.spawn(move |_| {
                    block
                        .iter()
                        .map(|&seed| SeedResult {
                            seed,
                            result: run(seed),
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed worker panicked"))
            .collect()
    })
    .expect("scope");
    let mut out = Vec::with_capacity(seeds.len());
    for c in chunks.iter_mut() {
        out.append(c);
    }
    out
}

/// Wall-clock comparison of a serial vs. parallel multi-seed sweep of
/// the same measurement, carrying the (serial == parallel, verified)
/// per-seed results.
#[derive(Clone, Debug)]
pub struct SpeedupReport<R> {
    /// Worker threads used for the parallel leg.
    pub threads: usize,
    /// Serial wall-clock time.
    pub serial: Duration,
    /// Parallel wall-clock time.
    pub parallel: Duration,
    /// Per-seed results, in seed order (identical between the legs by
    /// construction — [`measure_speedup`] asserts it).
    pub results: Vec<SeedResult<R>>,
}

impl<R> SpeedupReport<R> {
    /// Seeds measured.
    pub fn seeds(&self) -> usize {
        self.results.len()
    }

    /// `serial / parallel` (1.0 when parallel gave nothing).
    pub fn speedup(&self) -> f64 {
        let p = self.parallel.as_secs_f64();
        if p == 0.0 {
            1.0
        } else {
            self.serial.as_secs_f64() / p
        }
    }
}

/// Times the same sweep serially and with `threads` workers, checking
/// that both produce identical results (the determinism contract).
///
/// Meaningful speedup (> 1.5x) needs >= 4 physical cores and per-seed
/// work that dwarfs the thread spawn cost; on a single-core machine
/// the report will honestly show ~1.0x.
pub fn measure_speedup<R, F>(seeds: &[u64], threads: usize, run: F) -> SpeedupReport<R>
where
    R: Send + PartialEq + std::fmt::Debug,
    F: Fn(u64) -> R + Sync,
{
    let t0 = Instant::now();
    let serial = run_seeds(seeds, 1, &run);
    let serial_elapsed = t0.elapsed();
    let t1 = Instant::now();
    let parallel = run_seeds(seeds, threads, &run);
    let parallel_elapsed = t1.elapsed();
    assert_eq!(
        serial, parallel,
        "parallel sweep diverged from serial sweep"
    );
    SpeedupReport {
        threads,
        serial: serial_elapsed,
        parallel: parallel_elapsed,
        results: serial,
    }
}

/// The worker-thread count to use by default: the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amacl_core::harness::{alternating_inputs, run_wpaxos};
    use amacl_model::prelude::*;

    fn wpaxos_ticks(seed: u64) -> u64 {
        let topo = Topology::random_connected(10, 0.25, seed);
        let n = topo.len();
        let run = run_wpaxos(topo, &alternating_inputs(n), RandomScheduler::new(3, seed));
        run.check.assert_ok();
        run.decision_ticks()
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep_exactly() {
        let seeds: Vec<u64> = (0..12).collect();
        let serial = run_seeds(&seeds, 1, wpaxos_ticks);
        let parallel = run_seeds(&seeds, 4, wpaxos_ticks);
        assert_eq!(serial, parallel);
        assert_eq!(parallel.len(), seeds.len());
        // Input order preserved.
        for (r, &seed) in parallel.iter().zip(&seeds) {
            assert_eq!(r.seed, seed);
        }
    }

    #[test]
    fn thread_count_edge_cases() {
        let seeds = [7u64];
        // More threads than seeds, and zero threads, both behave.
        assert_eq!(run_seeds(&seeds, 16, |s| s * 2)[0].result, 14);
        assert_eq!(run_seeds(&seeds, 0, |s| s * 2)[0].result, 14);
        assert!(run_seeds::<u64, _>(&[], 4, |s| s).is_empty());
    }

    #[test]
    fn speedup_report_verifies_determinism() {
        let seeds: Vec<u64> = (0..6).collect();
        let report = measure_speedup(&seeds, 2, wpaxos_ticks);
        assert_eq!(report.seeds(), 6);
        assert!(report.speedup() > 0.0);
        // The report carries the verified per-seed results.
        assert_eq!(report.results, run_seeds(&seeds, 1, wpaxos_ticks));
    }

    /// Wall-clock speedup needs real cores: the assertion is guarded
    /// by a core-count check, so the test runs (and gates) on capable
    /// machines — CI's >= 4-vCPU runners — and self-skips on small
    /// containers instead of hiding behind `#[ignore]`.
    ///
    /// `available_parallelism` counts *logical* CPUs, and shared
    /// runners are noisy, so the measurement retries a few times and
    /// keeps the best observation before asserting: a machine with 4
    /// real schedulable threads reliably clears 1.5x at least once,
    /// while a genuine parallelism regression (serialized workers)
    /// never does.
    #[test]
    fn multi_core_speedup_exceeds_1_5x() {
        let threads = default_threads();
        if threads < 4 {
            eprintln!("skipping speedup assertion: {threads} core(s) < 4");
            return;
        }
        let seeds: Vec<u64> = (0..4 * threads as u64).collect();
        let mut best = 0.0f64;
        for attempt in 0..3 {
            let report = measure_speedup(&seeds, threads, |seed| {
                let topo = Topology::random_connected(40, 0.12, seed);
                let n = topo.len();
                let run = run_wpaxos(topo, &alternating_inputs(n), RandomScheduler::new(4, seed));
                run.check.assert_ok();
                run.decision_ticks()
            });
            best = best.max(report.speedup());
            if best > 1.5 {
                return;
            }
            eprintln!(
                "attempt {attempt}: speedup {:.2}x (best {best:.2}x), retrying",
                report.speedup()
            );
        }
        panic!("expected > 1.5x on {threads} threads, best of 3 attempts was {best:.2}x");
    }
}
