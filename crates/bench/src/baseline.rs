//! The engine-throughput baseline file and the CI regression gate
//! over it.
//!
//! `BENCH_engine.json` (repo root) is the committed source of truth
//! for engine throughput on the reference workload. CI reruns the
//! measurement on every PR and calls [`gate`] against the committed
//! number with a generous machine-variance tolerance: CI runners are
//! shared, noisy hardware, so the gate is not "as fast as the
//! baseline" but "not collapsed" — a real regression (an accidental
//! O(n) in the event queue, a lost cancellation path) shows up as a
//! multiple-of-x slowdown that no runner noise produces.
//!
//! The JSON is parsed with a deliberately tiny field extractor rather
//! than a serde dependency: the file is machine-written by `tables
//! bench-engine`, flat, and one schema version old at most.
//!
//! Three schema versions are understood:
//!
//! * `amacl-bench-engine/v1` — a single flat object with one
//!   `events_per_sec` figure; gated by [`gate`].
//! * `amacl-bench-engine/v2` — the scaling sweep: a `rows` array with
//!   one object per `(queue_core, n)` configuration (parsed by
//!   [`parse_rows`]) plus a v1-compatible top-level `events_per_sec`
//!   for the reference configuration (heap, n = 32), so a v1 reader
//!   still gates something meaningful. [`gate_rows`] checks every
//!   baseline row against its fresh counterpart with the same
//!   tolerance.
//! * `amacl-bench-engine/v3` — v2 plus a `shards` dimension: each row
//!   carries the shard count it measured (the sharded
//!   conservative-window engine; `1` = serial). v2 rows parse as
//!   `shards = 1`, so a v3 gate still understands a committed v2
//!   baseline, and the v1 top-level reference figure is kept (heap,
//!   n = 32, serial).
//! * `amacl-bench-engine/v4` — v3 plus a per-row `threads` dimension:
//!   the worker thread count of the thread-per-shard parallel stepper
//!   (`1` = single-threaded stepping). v3/v2 rows parse as `threads =
//!   1`, so the v4 gate still understands older committed baselines;
//!   the top-level `threads` field remains the *measurement driver's*
//!   seed-fan-out width, unchanged since v1.
//! * `amacl-bench-engine/v5` — v4 plus the payload-arena counters per
//!   row: `payload_clones` (deep copies the arena performed; summed
//!   over the row's seeds) and `arena_bytes_peak` (high-water live
//!   payload bytes; max over the row's seeds). Both are deterministic
//!   for a fixed configuration, so a committed `payload_clones` is
//!   gated **exactly** — drift means the custody protocol changed, not
//!   the machine. v4-and-older rows parse both fields as `0`, which
//!   disables the exact check (0 means "field predates v5"), so the
//!   v5 gate still understands every older committed baseline down to
//!   v1.
//! * `amacl-bench-engine/v6` — v5 plus the persistent pool's
//!   wake-policy counters per row: `superstep_count` (pool wakeups,
//!   each covering up to `window_batch` consecutive windows) and
//!   `worker_wakeups` (supersteps times the pool size). Both follow
//!   the measuring machine's core count, so they are **informational**
//!   — parsed, surfaced in the verdict lines, never gated exactly.
//!   Pre-v6 rows parse them as `0`, so the v6 gate still understands
//!   every older committed baseline down to v1 (the v5 → v1 fallback
//!   chain is unchanged).

/// Extracts a numeric field's value from a flat JSON object, e.g.
/// `json_number(s, "events_per_sec")`. Returns `None` when the field
/// is missing or not a number.
pub fn json_number(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\"");
    let rest = &json[json.find(&key)? + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field's value from a flat JSON object, e.g.
/// `json_string(s, "queue_core")`. Returns `None` when the field is
/// missing or not a quoted string.
pub fn json_string(json: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\"");
    let rest = &json[json.find(&key)? + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// One per-configuration row of the v2/v3 baseline schemas.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineRow {
    /// Queue core the row measured (`"heap"` / `"calendar"`).
    pub queue_core: String,
    /// Network size of the reference workload.
    pub n: u64,
    /// Shard count of the engine (`1` = serial; v2 rows, which predate
    /// sharding, parse as `1`).
    pub shards: u64,
    /// Worker threads stepping each conservative window (`1` =
    /// single-threaded; v3/v2 rows, which predate the parallel
    /// stepper, parse as `1`).
    pub threads: u64,
    /// Payload-arena clones over the row's seeds (deterministic;
    /// pre-v5 rows parse as `0`, which disables the exact gate).
    pub payload_clones: u64,
    /// High-water live arena payload bytes over the row's seeds
    /// (informational; pre-v5 rows parse as `0`).
    pub arena_bytes_peak: u64,
    /// Persistent-pool supersteps over the row's seeds
    /// (informational — follows the runner's core count; pre-v6 rows
    /// parse as `0`).
    pub superstep_count: u64,
    /// Individual pool-worker wakeups over the row's seeds
    /// (informational; pre-v6 rows parse as `0`).
    pub worker_wakeups: u64,
    /// Measured serial throughput.
    pub events_per_sec: f64,
}

/// Extracts the v2–v6 per-configuration rows from a baseline
/// JSON. Returns an empty vector for v1 files (which have no rows).
/// Rows without a `shards` field (v2) parse as serial (`shards = 1`);
/// rows without a `threads` field (v3/v2) parse as single-threaded
/// (`threads = 1`); rows without the arena counters (v4 and older)
/// parse them as `0`; rows without the pool counters (v5 and older)
/// parse them as `0` too.
pub fn parse_rows(json: &str) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"queue_core\"") {
        let after = &rest[pos..];
        let end = after.find('}').unwrap_or(after.len());
        let chunk = &after[..end];
        if let (Some(queue_core), Some(n), Some(events_per_sec)) = (
            json_string(chunk, "queue_core"),
            json_number(chunk, "n"),
            json_number(chunk, "events_per_sec"),
        ) {
            rows.push(BaselineRow {
                queue_core,
                n: n as u64,
                shards: json_number(chunk, "shards").map_or(1, |s| s as u64),
                threads: json_number(chunk, "threads").map_or(1, |t| t as u64),
                payload_clones: json_number(chunk, "payload_clones").map_or(0, |c| c as u64),
                arena_bytes_peak: json_number(chunk, "arena_bytes_peak").map_or(0, |b| b as u64),
                superstep_count: json_number(chunk, "superstep_count").map_or(0, |c| c as u64),
                worker_wakeups: json_number(chunk, "worker_wakeups").map_or(0, |w| w as u64),
                events_per_sec,
            });
        }
        rest = &after[end..];
    }
    rows
}

/// Gates every baseline v2–v6 row against the matching fresh row:
/// each configuration must not have collapsed below
/// `baseline / tolerance`, every baseline configuration must have been
/// re-measured, and — when the baseline row carries a v5
/// `payload_clones` figure — the fresh clone count must match
/// **exactly** (arena clones are seed-determined; drift means the
/// payload custody protocol changed, which no machine noise produces).
///
/// Returns one human-readable verdict line per row.
///
/// # Errors
///
/// Returns the joined failure messages when any row is missing,
/// collapsed, or moved its deterministic clone count.
pub fn gate_rows(
    baseline_json: &str,
    fresh: &[BaselineRow],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    assert!(tolerance >= 1.0, "tolerance must be >= 1");
    let baseline = parse_rows(baseline_json);
    if baseline.is_empty() {
        return Err("baseline JSON has no v2-v6 rows".into());
    }
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for b in &baseline {
        let label = format!(
            "core={} n={} shards={} threads={}",
            b.queue_core, b.n, b.shards, b.threads
        );
        match fresh.iter().find(|f| {
            f.queue_core == b.queue_core && f.n == b.n && f.shards == b.shards && f.threads == b.threads
        }) {
            None => failures.push(format!("{label}: no fresh measurement")),
            Some(f) if b.payload_clones != 0 && f.payload_clones != b.payload_clones => {
                failures.push(format!(
                    "{label}: payload clone count moved: {} vs baseline {} \
                     (arena clones are seed-determined; this is a custody-protocol change, \
                     not noise)",
                    f.payload_clones, b.payload_clones
                ));
            }
            Some(f) if f.events_per_sec * tolerance < b.events_per_sec => failures.push(format!(
                "{label}: collapsed to {:.0} events/sec vs baseline {:.0} ({}x slower, tolerance {tolerance}x)",
                f.events_per_sec,
                b.events_per_sec,
                (b.events_per_sec / f.events_per_sec).round()
            )),
            Some(f) => lines.push(format!(
                "{label}: {:.0} events/sec vs baseline {:.0} ({:.2}x, tolerance {tolerance}x)",
                f.events_per_sec,
                b.events_per_sec,
                f.events_per_sec / b.events_per_sec
            )),
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures.join("; "))
    }
}

/// Outcome of one baseline comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct GateReport {
    /// The committed baseline events/sec.
    pub baseline: f64,
    /// The freshly measured events/sec.
    pub fresh: f64,
    /// The tolerance factor the gate allowed.
    pub tolerance: f64,
}

impl GateReport {
    /// `fresh / baseline` — below `1 / tolerance` fails the gate.
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            1.0
        } else {
            self.fresh / self.baseline
        }
    }
}

/// Gates a fresh `events_per_sec` measurement against the committed
/// baseline JSON: the gate fails only when throughput collapsed below
/// `baseline / tolerance` (so `tolerance = 3.0` tolerates a 3x-slower
/// machine but catches an order-of-magnitude regression).
///
/// # Errors
///
/// Returns a message when the baseline is unreadable or the fresh
/// measurement collapsed.
pub fn gate(
    baseline_json: &str,
    fresh_events_per_sec: f64,
    tolerance: f64,
) -> Result<GateReport, String> {
    assert!(tolerance >= 1.0, "tolerance must be >= 1");
    let baseline = json_number(baseline_json, "events_per_sec")
        .ok_or("baseline JSON has no numeric events_per_sec field")?;
    if baseline <= 0.0 {
        return Err(format!(
            "baseline events_per_sec {baseline} is not positive"
        ));
    }
    let report = GateReport {
        baseline,
        fresh: fresh_events_per_sec,
        tolerance,
    };
    if fresh_events_per_sec * tolerance < baseline {
        return Err(format!(
            "engine throughput collapsed: {fresh_events_per_sec:.0} events/sec vs baseline \
             {baseline:.0} ({}x slower, tolerance {tolerance}x)",
            (baseline / fresh_events_per_sec).round()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "amacl-bench-engine/v1",
  "workload": "wpaxos",
  "seeds": 32,
  "events_total": 281669,
  "serial_wall_s": 0.1154,
  "events_per_sec": 2441367,
  "threads": 1,
  "parallel_speedup": 1.04
}"#;

    #[test]
    fn json_number_extracts_fields() {
        assert_eq!(json_number(SAMPLE, "events_per_sec"), Some(2_441_367.0));
        assert_eq!(json_number(SAMPLE, "serial_wall_s"), Some(0.1154));
        assert_eq!(json_number(SAMPLE, "seeds"), Some(32.0));
        assert_eq!(json_number(SAMPLE, "missing"), None);
        assert_eq!(json_number(SAMPLE, "schema"), None, "string field");
    }

    #[test]
    fn gate_passes_within_tolerance() {
        // Equal, faster, and 2.9x slower all pass a 3x gate.
        for fresh in [2_441_367.0, 9_000_000.0, 850_000.0] {
            let r = gate(SAMPLE, fresh, 3.0).unwrap();
            assert_eq!(r.baseline, 2_441_367.0);
            assert!(r.ratio() > 0.0);
        }
    }

    #[test]
    fn gate_fails_on_collapse() {
        let err = gate(SAMPLE, 100_000.0, 3.0).unwrap_err();
        assert!(err.contains("collapsed"), "{err}");
        assert!(err.contains("tolerance 3"), "{err}");
    }

    #[test]
    fn gate_rejects_broken_baselines() {
        assert!(gate("{}", 1.0, 3.0).is_err());
        assert!(gate("{\"events_per_sec\": 0}", 1.0, 3.0).is_err());
    }

    const SAMPLE_V2: &str = r#"{
  "schema": "amacl-bench-engine/v2",
  "workload": "wpaxos random_connected(n,p(n),seed), RandomScheduler(F_ack=4)",
  "threads": 1,
  "events_per_sec": 2500000,
  "rows": [
    {"queue_core": "heap", "n": 32, "seeds": 16, "events_total": 140000, "serial_wall_s": 0.056, "events_per_sec": 2500000, "parallel_wall_s": 0.055, "parallel_speedup": 1.02},
    {"queue_core": "heap", "n": 512, "seeds": 2, "events_total": 6800000, "serial_wall_s": 6.1, "events_per_sec": 1114754, "parallel_wall_s": 6.0, "parallel_speedup": 1.01},
    {"queue_core": "calendar", "n": 32, "seeds": 16, "events_total": 140000, "serial_wall_s": 0.046, "events_per_sec": 3043478, "parallel_wall_s": 0.045, "parallel_speedup": 1.02}
  ]
}"#;

    fn row(core: &str, n: u64, eps: f64) -> BaselineRow {
        sharded_row(core, n, 1, eps)
    }

    fn sharded_row(core: &str, n: u64, shards: u64, eps: f64) -> BaselineRow {
        threaded_row(core, n, shards, 1, eps)
    }

    fn threaded_row(core: &str, n: u64, shards: u64, threads: u64, eps: f64) -> BaselineRow {
        BaselineRow {
            queue_core: core.into(),
            n,
            shards,
            threads,
            payload_clones: 0,
            arena_bytes_peak: 0,
            superstep_count: 0,
            worker_wakeups: 0,
            events_per_sec: eps,
        }
    }

    #[test]
    fn v2_rows_parse() {
        let rows = parse_rows(SAMPLE_V2);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], row("heap", 32, 2_500_000.0));
        assert_eq!(rows[1], row("heap", 512, 1_114_754.0));
        assert_eq!(rows[2].queue_core, "calendar");
        // v2 rows predate sharding and the parallel stepper: they
        // parse as serial, single-threaded.
        assert!(rows.iter().all(|r| r.shards == 1 && r.threads == 1));
        // v1 files have no rows.
        assert!(parse_rows(SAMPLE).is_empty());
        // The v1-compat top-level reference figure is still readable.
        assert_eq!(json_number(SAMPLE_V2, "events_per_sec"), Some(2_500_000.0));
        assert_eq!(
            json_string(SAMPLE_V2, "schema").as_deref(),
            Some("amacl-bench-engine/v2")
        );
    }

    #[test]
    fn gate_rows_passes_within_tolerance_per_row() {
        let fresh = vec![
            row("heap", 32, 900_000.0),    // 2.8x slower: within 3x
            row("heap", 512, 1_200_000.0), // faster
            row("calendar", 32, 3_043_478.0),
        ];
        let lines = gate_rows(SAMPLE_V2, &fresh, 3.0).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("core=heap n=32"), "{lines:?}");
    }

    #[test]
    fn gate_rows_fails_on_one_collapsed_row() {
        let fresh = vec![
            row("heap", 32, 2_500_000.0),
            row("heap", 512, 100_000.0), // 11x slower
            row("calendar", 32, 3_000_000.0),
        ];
        let err = gate_rows(SAMPLE_V2, &fresh, 3.0).unwrap_err();
        assert!(err.contains("core=heap n=512"), "{err}");
        assert!(err.contains("collapsed"), "{err}");
    }

    const SAMPLE_V3: &str = r#"{
  "schema": "amacl-bench-engine/v3",
  "workload": "wpaxos random_connected(n,p(n),seed), RandomScheduler(F_ack=4)",
  "threads": 1,
  "events_per_sec": 2500000,
  "rows": [
    {"queue_core": "heap", "n": 32, "shards": 1, "seeds": 16, "events_total": 140000, "events_per_sec": 2500000},
    {"queue_core": "heap", "n": 32, "shards": 4, "seeds": 16, "events_total": 140000, "events_per_sec": 1800000},
    {"queue_core": "calendar", "n": 512, "shards": 4, "seeds": 2, "events_total": 6800000, "events_per_sec": 900000}
  ]
}"#;

    #[test]
    fn v3_rows_parse_with_shards() {
        let rows = parse_rows(SAMPLE_V3);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], sharded_row("heap", 32, 1, 2_500_000.0));
        assert_eq!(rows[1], sharded_row("heap", 32, 4, 1_800_000.0));
        assert_eq!(rows[2], sharded_row("calendar", 512, 4, 900_000.0));
    }

    #[test]
    fn gate_rows_distinguishes_shard_counts() {
        // Same (core, n) at the other shard count must not satisfy a
        // missing configuration.
        let fresh = vec![
            sharded_row("heap", 32, 1, 2_500_000.0),
            sharded_row("heap", 32, 4, 1_800_000.0),
        ];
        let err = gate_rows(SAMPLE_V3, &fresh, 3.0).unwrap_err();
        assert!(err.contains("core=calendar n=512 shards=4"), "{err}");
        // A collapse in only the sharded row is caught per-row.
        let fresh = vec![
            sharded_row("heap", 32, 1, 2_500_000.0),
            sharded_row("heap", 32, 4, 100_000.0), // 18x slower
            sharded_row("calendar", 512, 4, 900_000.0),
        ];
        let err = gate_rows(SAMPLE_V3, &fresh, 3.0).unwrap_err();
        assert!(err.contains("core=heap n=32 shards=4"), "{err}");
        assert!(err.contains("collapsed"), "{err}");
        // All present and healthy: one verdict line per row.
        let fresh = vec![
            sharded_row("heap", 32, 1, 2_400_000.0),
            sharded_row("heap", 32, 4, 1_700_000.0),
            sharded_row("calendar", 512, 4, 1_000_000.0),
        ];
        assert_eq!(gate_rows(SAMPLE_V3, &fresh, 3.0).unwrap().len(), 3);
    }

    #[test]
    fn gate_rows_fails_on_missing_configuration() {
        let fresh = vec![row("heap", 32, 2_500_000.0), row("heap", 512, 1_200_000.0)];
        let err = gate_rows(SAMPLE_V2, &fresh, 3.0).unwrap_err();
        assert!(err.contains("core=calendar n=32"), "{err}");
        assert!(err.contains("no fresh measurement"), "{err}");
        // And a v1 baseline has no rows to gate.
        assert!(gate_rows(SAMPLE, &fresh, 3.0).is_err());
    }

    const SAMPLE_V4: &str = r#"{
  "schema": "amacl-bench-engine/v4",
  "workload": "wpaxos random_connected(n,p(n),seed), RandomScheduler(F_ack=4)",
  "threads": 1,
  "events_per_sec": 2500000,
  "rows": [
    {"queue_core": "heap", "n": 32, "shards": 1, "threads": 1, "seeds": 16, "events_per_sec": 2500000},
    {"queue_core": "heap", "n": 32, "shards": 4, "threads": 1, "seeds": 16, "events_per_sec": 1800000},
    {"queue_core": "heap", "n": 32, "shards": 4, "threads": 4, "seeds": 16, "events_per_sec": 3600000}
  ]
}"#;

    #[test]
    fn v4_rows_parse_with_threads() {
        let rows = parse_rows(SAMPLE_V4);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], threaded_row("heap", 32, 1, 1, 2_500_000.0));
        assert_eq!(rows[1], threaded_row("heap", 32, 4, 1, 1_800_000.0));
        assert_eq!(rows[2], threaded_row("heap", 32, 4, 4, 3_600_000.0));
    }

    #[test]
    fn gate_rows_distinguishes_thread_counts() {
        // Same (core, n, shards) at the other thread count must not
        // satisfy a missing configuration...
        let fresh = vec![
            threaded_row("heap", 32, 1, 1, 2_500_000.0),
            threaded_row("heap", 32, 4, 1, 1_800_000.0),
        ];
        let err = gate_rows(SAMPLE_V4, &fresh, 3.0).unwrap_err();
        assert!(err.contains("core=heap n=32 shards=4 threads=4"), "{err}");
        // ...and a collapse in only the threaded row is caught per-row.
        let fresh = vec![
            threaded_row("heap", 32, 1, 1, 2_500_000.0),
            threaded_row("heap", 32, 4, 1, 1_800_000.0),
            threaded_row("heap", 32, 4, 4, 100_000.0), // 36x slower
        ];
        let err = gate_rows(SAMPLE_V4, &fresh, 3.0).unwrap_err();
        assert!(err.contains("core=heap n=32 shards=4 threads=4"), "{err}");
        assert!(err.contains("collapsed"), "{err}");
        // All present and healthy: one verdict line per row.
        let fresh = vec![
            threaded_row("heap", 32, 1, 1, 2_400_000.0),
            threaded_row("heap", 32, 4, 1, 1_700_000.0),
            threaded_row("heap", 32, 4, 4, 3_500_000.0),
        ];
        assert_eq!(gate_rows(SAMPLE_V4, &fresh, 3.0).unwrap().len(), 3);
    }

    const SAMPLE_V5: &str = r#"{
  "schema": "amacl-bench-engine/v5",
  "workload": "wpaxos random_connected(n,p(n),seed), RandomScheduler(F_ack=4)",
  "threads": 1,
  "events_per_sec": 2500000,
  "rows": [
    {"queue_core": "heap", "n": 32, "shards": 1, "threads": 1, "payload_clones": 41000, "arena_bytes_peak": 2048, "events_per_sec": 2500000},
    {"queue_core": "heap", "n": 32, "shards": 4, "threads": 1, "payload_clones": 52000, "arena_bytes_peak": 2048, "events_per_sec": 1800000}
  ]
}"#;

    fn v5_row(shards: u64, clones: u64, eps: f64) -> BaselineRow {
        BaselineRow {
            payload_clones: clones,
            arena_bytes_peak: 2048,
            ..threaded_row("heap", 32, shards, 1, eps)
        }
    }

    #[test]
    fn v5_rows_parse_with_arena_counters() {
        let rows = parse_rows(SAMPLE_V5);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].payload_clones, 41_000);
        assert_eq!(rows[0].arena_bytes_peak, 2_048);
        assert_eq!(rows[1].payload_clones, 52_000);
        // Pre-v5 rows parse the arena counters as 0.
        assert!(parse_rows(SAMPLE_V4)
            .iter()
            .all(|r| r.payload_clones == 0 && r.arena_bytes_peak == 0));
    }

    const SAMPLE_V6: &str = r#"{
  "schema": "amacl-bench-engine/v6",
  "workload": "wpaxos random_connected(n,p(n),seed), RandomScheduler(F_ack=4)",
  "threads": 1,
  "events_per_sec": 2500000,
  "rows": [
    {"queue_core": "heap", "n": 32, "shards": 1, "threads": 1, "payload_clones": 41000, "arena_bytes_peak": 2048, "superstep_count": 0, "worker_wakeups": 0, "events_per_sec": 2500000},
    {"queue_core": "heap", "n": 32, "shards": 4, "threads": 4, "payload_clones": 52000, "arena_bytes_peak": 2048, "superstep_count": 310, "worker_wakeups": 620, "events_per_sec": 3600000}
  ]
}"#;

    #[test]
    fn v6_rows_parse_with_pool_counters_and_older_fallbacks_hold() {
        let rows = parse_rows(SAMPLE_V6);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].superstep_count, 0);
        assert_eq!(rows[1].superstep_count, 310);
        assert_eq!(rows[1].worker_wakeups, 620);
        assert_eq!(rows[1].payload_clones, 52_000);
        // Pre-v6 rows parse the pool counters as 0 — the whole v5 → v1
        // fallback chain still parses.
        for sample in [SAMPLE_V5, SAMPLE_V4, SAMPLE_V3, SAMPLE_V2] {
            assert!(parse_rows(sample)
                .iter()
                .all(|r| r.superstep_count == 0 && r.worker_wakeups == 0));
        }
        assert!(parse_rows(SAMPLE).is_empty(), "v1 keeps its no-rows shape");
    }

    #[test]
    fn gate_rows_treats_v6_pool_counters_as_informational() {
        // A fresh run whose superstep/wakeup counts differ from the
        // baseline (different core count on this runner) still gates
        // green as long as throughput and clone counts hold.
        let fresh = vec![
            BaselineRow {
                payload_clones: 41_000,
                arena_bytes_peak: 2048,
                ..threaded_row("heap", 32, 1, 1, 2_400_000.0)
            },
            BaselineRow {
                payload_clones: 52_000,
                arena_bytes_peak: 2048,
                superstep_count: 17,
                worker_wakeups: 34,
                ..threaded_row("heap", 32, 4, 4, 3_500_000.0)
            },
        ];
        assert_eq!(gate_rows(SAMPLE_V6, &fresh, 3.0).unwrap().len(), 2);
    }

    #[test]
    fn gate_rows_pins_v5_payload_clones_exactly() {
        // Identical clone counts pass (throughput within tolerance).
        let fresh = vec![
            v5_row(1, 41_000, 2_400_000.0),
            v5_row(4, 52_000, 1_700_000.0),
        ];
        assert_eq!(gate_rows(SAMPLE_V5, &fresh, 3.0).unwrap().len(), 2);
        // A moved clone count fails even when throughput is healthy.
        let fresh = vec![
            v5_row(1, 41_000, 2_400_000.0),
            v5_row(4, 52_001, 1_700_000.0),
        ];
        let err = gate_rows(SAMPLE_V5, &fresh, 3.0).unwrap_err();
        assert!(err.contains("payload clone count moved"), "{err}");
        assert!(err.contains("core=heap n=32 shards=4"), "{err}");
        // A pre-v5 baseline (clones parse as 0) never runs the exact
        // check, whatever the fresh rows report.
        let fresh = vec![
            v5_row(1, 41_000, 2_500_000.0),
            v5_row(4, 52_000, 1_800_000.0),
            BaselineRow {
                payload_clones: 99,
                ..threaded_row("heap", 32, 4, 4, 3_500_000.0)
            },
        ];
        assert_eq!(gate_rows(SAMPLE_V4, &fresh, 3.0).unwrap().len(), 3);
    }
}
