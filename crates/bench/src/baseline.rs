//! The engine-throughput baseline file and the CI regression gate
//! over it.
//!
//! `BENCH_engine.json` (repo root) is the committed source of truth
//! for engine throughput on the reference workload. CI reruns the
//! measurement on every PR and calls [`gate`] against the committed
//! number with a generous machine-variance tolerance: CI runners are
//! shared, noisy hardware, so the gate is not "as fast as the
//! baseline" but "not collapsed" — a real regression (an accidental
//! O(n) in the event queue, a lost cancellation path) shows up as a
//! multiple-of-x slowdown that no runner noise produces.
//!
//! The JSON is parsed with a deliberately tiny field extractor rather
//! than a serde dependency: the file is machine-written by `tables
//! bench-engine`, flat, and one schema version old at most.

/// Extracts a numeric field's value from a flat JSON object, e.g.
/// `json_number(s, "events_per_sec")`. Returns `None` when the field
/// is missing or not a number.
pub fn json_number(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\"");
    let rest = &json[json.find(&key)? + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Outcome of one baseline comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct GateReport {
    /// The committed baseline events/sec.
    pub baseline: f64,
    /// The freshly measured events/sec.
    pub fresh: f64,
    /// The tolerance factor the gate allowed.
    pub tolerance: f64,
}

impl GateReport {
    /// `fresh / baseline` — below `1 / tolerance` fails the gate.
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            1.0
        } else {
            self.fresh / self.baseline
        }
    }
}

/// Gates a fresh `events_per_sec` measurement against the committed
/// baseline JSON: the gate fails only when throughput collapsed below
/// `baseline / tolerance` (so `tolerance = 3.0` tolerates a 3x-slower
/// machine but catches an order-of-magnitude regression).
///
/// # Errors
///
/// Returns a message when the baseline is unreadable or the fresh
/// measurement collapsed.
pub fn gate(
    baseline_json: &str,
    fresh_events_per_sec: f64,
    tolerance: f64,
) -> Result<GateReport, String> {
    assert!(tolerance >= 1.0, "tolerance must be >= 1");
    let baseline = json_number(baseline_json, "events_per_sec")
        .ok_or("baseline JSON has no numeric events_per_sec field")?;
    if baseline <= 0.0 {
        return Err(format!(
            "baseline events_per_sec {baseline} is not positive"
        ));
    }
    let report = GateReport {
        baseline,
        fresh: fresh_events_per_sec,
        tolerance,
    };
    if fresh_events_per_sec * tolerance < baseline {
        return Err(format!(
            "engine throughput collapsed: {fresh_events_per_sec:.0} events/sec vs baseline \
             {baseline:.0} ({}x slower, tolerance {tolerance}x)",
            (baseline / fresh_events_per_sec).round()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "amacl-bench-engine/v1",
  "workload": "wpaxos",
  "seeds": 32,
  "events_total": 281669,
  "serial_wall_s": 0.1154,
  "events_per_sec": 2441367,
  "threads": 1,
  "parallel_speedup": 1.04
}"#;

    #[test]
    fn json_number_extracts_fields() {
        assert_eq!(json_number(SAMPLE, "events_per_sec"), Some(2_441_367.0));
        assert_eq!(json_number(SAMPLE, "serial_wall_s"), Some(0.1154));
        assert_eq!(json_number(SAMPLE, "seeds"), Some(32.0));
        assert_eq!(json_number(SAMPLE, "missing"), None);
        assert_eq!(json_number(SAMPLE, "schema"), None, "string field");
    }

    #[test]
    fn gate_passes_within_tolerance() {
        // Equal, faster, and 2.9x slower all pass a 3x gate.
        for fresh in [2_441_367.0, 9_000_000.0, 850_000.0] {
            let r = gate(SAMPLE, fresh, 3.0).unwrap();
            assert_eq!(r.baseline, 2_441_367.0);
            assert!(r.ratio() > 0.0);
        }
    }

    #[test]
    fn gate_fails_on_collapse() {
        let err = gate(SAMPLE, 100_000.0, 3.0).unwrap_err();
        assert!(err.contains("collapsed"), "{err}");
        assert!(err.contains("tolerance 3"), "{err}");
    }

    #[test]
    fn gate_rejects_broken_baselines() {
        assert!(gate("{}", 1.0, 3.0).is_err());
        assert!(gate("{\"events_per_sec\": 0}", 1.0, 3.0).is_err());
    }
}
