//! Measurement functions, one group per experiment (see DESIGN.md's
//! experiment index).

use std::time::Duration;

use amacl_core::extensions::ben_or::BenOr;
use amacl_core::harness::{
    alternating_inputs, run_flood_gather, run_two_phase, run_wpaxos, run_wpaxos_with,
};
use amacl_core::two_phase::TwoPhase;
use amacl_core::verify::check_consensus;
use amacl_core::wpaxos::{wpaxos_node, WpaxosConfig, WpaxosNode};
use amacl_lowerbounds::anonymity::{run_anonymity_demo, AnonymityOutcome};
use amacl_lowerbounds::bivalence::{lemma_3_1_extension, Explorer, Valency};
use amacl_lowerbounds::crash_demo::{run_crash_demo, CrashDemoOutcome};
use amacl_lowerbounds::step::StepMachine;
use amacl_lowerbounds::time_lb::{earliest_decision, partition_violation, Algorithm};
use amacl_lowerbounds::unknown_n::{run_unknown_n_demo, UnknownNOutcome};
use amacl_model::prelude::*;
use amacl_model::topo::unreliable::UnreliableOverlay;
use amacl_runtime::{MacRuntime, RuntimeConfig};

/// E1: single-hop two-phase consensus — time is `O(F_ack)`, flat in `n`
/// (Theorem 4.1).
pub mod e1 {
    use super::*;

    /// One measurement point.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Clique size.
        pub n: usize,
        /// Scheduler bound.
        pub f_ack: u64,
        /// Latest decision, in ticks.
        pub ticks: u64,
        /// `ticks / F_ack` — the paper predicts a small constant.
        pub ratio: f64,
    }

    /// Sweeps `n` and `F_ack` under the max-delay adversary (worst
    /// case for the bound).
    pub fn series(ns: &[usize], f_acks: &[u64]) -> Vec<Row> {
        let mut rows = Vec::new();
        for &f_ack in f_acks {
            for &n in ns {
                let run = run_two_phase(&alternating_inputs(n), MaxDelayScheduler::new(f_ack));
                run.check.assert_ok();
                rows.push(Row {
                    n,
                    f_ack,
                    ticks: run.decision_ticks(),
                    ratio: run.decision_over_f_ack(f_ack),
                });
            }
        }
        rows
    }

    /// A single run, used by the Criterion bench.
    pub fn one(n: usize, f_ack: u64, seed: u64) -> u64 {
        let run = run_two_phase(&alternating_inputs(n), RandomScheduler::new(f_ack, seed));
        run.check.assert_ok();
        run.decision_ticks()
    }
}

/// E2: wPAXOS multihop — time is `O(D * F_ack)` (Theorem 4.6).
pub mod e2 {
    use super::*;

    /// One measurement point.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Topology label.
        pub name: String,
        /// Network size.
        pub n: usize,
        /// Diameter.
        pub d: u64,
        /// Scheduler bound.
        pub f_ack: u64,
        /// Latest decision, in ticks.
        pub ticks: u64,
        /// `ticks / (D * F_ack)` — the paper predicts a constant.
        pub ratio: f64,
    }

    fn measure(name: &str, topo: Topology, f_ack: u64) -> Row {
        let n = topo.len();
        let d = topo.diameter() as u64;
        let run = run_wpaxos(topo, &alternating_inputs(n), MaxDelayScheduler::new(f_ack));
        run.check.assert_ok();
        let ticks = run.decision_ticks();
        Row {
            name: name.to_string(),
            n,
            d,
            f_ack,
            ticks,
            ratio: ticks as f64 / (d.max(1) * f_ack) as f64,
        }
    }

    /// Line-diameter sweep plus assorted topologies at fixed `F_ack`.
    pub fn series(f_ack: u64) -> Vec<Row> {
        let mut rows = Vec::new();
        for d in [2usize, 4, 8, 16, 32] {
            rows.push(measure(
                &format!("line(D={d})"),
                Topology::line(d + 1),
                f_ack,
            ));
        }
        rows.push(measure("grid(6x4)", Topology::grid(6, 4), f_ack));
        rows.push(measure("torus(5x5)", Topology::torus(5, 5), f_ack));
        rows.push(measure("star(25)", Topology::star(25), f_ack));
        rows.push(measure("hypercube(5)", Topology::hypercube(5), f_ack));
        rows.push(measure("binary_tree(5)", Topology::binary_tree(5), f_ack));
        rows.push(measure(
            "random(24,p=.15)",
            Topology::random_connected(24, 0.15, 7),
            f_ack,
        ));
        rows
    }

    /// A single run, used by the Criterion bench.
    pub fn one(topo: Topology, f_ack: u64, seed: u64) -> u64 {
        let n = topo.len();
        let run = run_wpaxos(
            topo,
            &alternating_inputs(n),
            RandomScheduler::new(f_ack, seed),
        );
        run.check.assert_ok();
        run.decision_ticks()
    }
}

/// E3: the aggregation gap — flooding responses costs `Θ(n * F_ack)`
/// at a bottleneck, tree aggregation stays `O(D * F_ack)` (Section 4.2
/// intro).
pub mod e3 {
    use super::*;

    /// One comparison point on a star (hub = slot 0, leader = a leaf).
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Star size (diameter 2).
        pub n: usize,
        /// wPAXOS (tree + aggregation, paper-literal change trigger):
        /// latest decision, ticks.
        pub wpaxos_ticks: u64,
        /// Hub broadcasts under wPAXOS.
        pub wpaxos_hub: u64,
        /// wPAXOS with the leader-scoped change trigger (the E8
        /// reproduction finding): latest decision, ticks.
        pub scoped_ticks: u64,
        /// Flooded-responses Paxos: latest decision, ticks.
        pub flood_ticks: u64,
        /// Hub broadcasts under flooding — the `Θ(n)` bottleneck.
        pub flood_hub: u64,
        /// Flood-gather baseline: latest decision, ticks.
        pub gather_ticks: u64,
    }

    fn run_cfg(n: usize, cfg: WpaxosConfig, f_ack: u64) -> (u64, u64) {
        let inputs = alternating_inputs(n);
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::star(n), |s| WpaxosNode::new(iv[s.index()], cfg))
            .scheduler(MaxDelayScheduler::new(f_ack))
            .build();
        let report = sim.run();
        check_consensus(&inputs, &report, &[]).assert_ok();
        (
            report.max_decision_time().expect("decided").ticks(),
            report.metrics.per_slot_broadcasts[0],
        )
    }

    /// Sweeps the star size at fixed diameter 2.
    pub fn series(ns: &[usize], f_ack: u64) -> Vec<Row> {
        ns.iter()
            .map(|&n| {
                let (wpaxos_ticks, wpaxos_hub) = run_cfg(n, WpaxosConfig::new(n), f_ack);
                let (scoped_ticks, _) =
                    run_cfg(n, WpaxosConfig::new(n).with_leader_scoped_changes(), f_ack);
                let (flood_ticks, flood_hub) =
                    run_cfg(n, WpaxosConfig::new(n).flooded_responses(), f_ack);
                let gather = run_flood_gather(
                    Topology::star(n),
                    &alternating_inputs(n),
                    MaxDelayScheduler::new(f_ack),
                );
                gather.check.assert_ok();
                Row {
                    n,
                    wpaxos_ticks,
                    wpaxos_hub,
                    scoped_ticks,
                    flood_ticks,
                    flood_hub,
                    gather_ticks: gather.decision_ticks(),
                }
            })
            .collect()
    }
}

/// E4: the `floor(D/2) * F_ack` decision lower bound (Theorem 3.10).
pub mod e4 {
    use super::*;

    /// One measurement row.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Line diameter.
        pub d: usize,
        /// Scheduler bound.
        pub f_ack: u64,
        /// The theorem's bound in ticks.
        pub bound: u64,
        /// Earliest wPAXOS decision.
        pub wpaxos_earliest: u64,
        /// Earliest flood-gather decision.
        pub gather_earliest: u64,
    }

    /// Sweeps line diameters under the max-delay adversary.
    pub fn series(f_ack: u64) -> Vec<Row> {
        [4usize, 8, 16, 24]
            .iter()
            .map(|&d| {
                let w = earliest_decision(Algorithm::Wpaxos, d, f_ack);
                let g = earliest_decision(Algorithm::FloodGather, d, f_ack);
                assert!(w.ok && g.ok);
                Row {
                    d,
                    f_ack,
                    bound: w.bound,
                    wpaxos_earliest: w.earliest,
                    gather_earliest: g.earliest,
                }
            })
            .collect()
    }

    /// The violation side: an eager decider gets partitioned.
    pub fn violation(d: usize, f_ack: u64, rounds: u64) -> (bool, u64) {
        let (check, earliest) = partition_violation(d, f_ack, rounds);
        (check.agreement, earliest)
    }
}

/// E5: the anonymity impossibility (Theorem 3.3, Figure 1).
pub mod e5 {
    use super::*;

    /// Runs the demonstration at several diameters.
    pub fn series() -> Vec<AnonymityOutcome> {
        vec![
            run_anonymity_demo(8, 24),
            run_anonymity_demo(10, 36),
            run_anonymity_demo(12, 48),
        ]
    }
}

/// E6: the knowledge-of-`n` impossibility (Theorem 3.9, Figure 2).
pub mod e6 {
    use super::*;

    /// Runs the demonstration at several diameters.
    pub fn series() -> Vec<UnknownNOutcome> {
        [2usize, 4, 8]
            .iter()
            .map(|&d| run_unknown_n_demo(d))
            .collect()
    }
}

/// E7: the crash impossibility (Theorem 3.2) — bivalence census and the
/// concrete termination loss.
pub mod e7 {
    use super::*;

    /// Summary of the valid-step exploration.
    #[derive(Clone, Debug)]
    pub struct Summary {
        /// Valency of the mixed (0,1) two-node configuration with one
        /// crash allowed.
        pub mixed_valency: Valency,
        /// States visited by the exhaustive explorer.
        pub states_visited: u64,
        /// A node whose next step forces univalence at the initial
        /// bivalent configuration (a critical configuration witness).
        pub critical_node: Option<usize>,
        /// With one crash, some schedule strands a live node.
        pub stuck_schedule_exists: bool,
        /// The concrete crash demo outcome.
        pub crash_demo: CrashDemoOutcome,
    }

    /// Runs the census.
    pub fn run() -> Summary {
        let machine = StepMachine::new(vec![TwoPhase::new(0), TwoPhase::new(1)]);
        let mut explorer = Explorer::new(1, 120);
        let result = explorer.explore(&machine);
        let mixed_valency = match (result.zero, result.one) {
            (true, true) => Valency::Bivalent,
            (true, false) => Valency::ZeroValent,
            (false, true) => Valency::OneValent,
            _ => Valency::Unknown,
        };
        let critical_node = (0..2).find(|&u| lemma_3_1_extension(&machine, u, 1, 8, 80).is_none());
        Summary {
            mixed_valency,
            states_visited: explorer.states_visited(),
            critical_node,
            stuck_schedule_exists: result.stuck_undecided,
            crash_demo: run_crash_demo(),
        }
    }
}

/// E8: design ablations — what each wPAXOS service buys (Lemmas
/// 4.4/4.5 instrumentation).
pub mod e8 {
    use super::*;

    /// One ablation row.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Configuration label.
        pub config: &'static str,
        /// Latest decision, ticks.
        pub ticks: u64,
        /// Total broadcasts network-wide.
        pub broadcasts: u64,
        /// Busiest single node's broadcasts.
        pub max_node_broadcasts: u64,
        /// Total proposals started network-wide.
        pub proposals: u64,
    }

    fn run_cfg(topo: &Topology, cfg: WpaxosConfig, f_ack: u64, label: &'static str) -> Row {
        let n = topo.len();
        let inputs = alternating_inputs(n);
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(topo.clone(), |s| WpaxosNode::new(iv[s.index()], cfg))
            .scheduler(MaxDelayScheduler::new(f_ack))
            .build();
        let report = sim.run();
        check_consensus(&inputs, &report, &[]).assert_ok();
        let proposals = (0..n)
            .map(|i| sim.process(Slot(i)).proposals_started())
            .sum();
        Row {
            config: label,
            ticks: report.max_decision_time().expect("decided").ticks(),
            broadcasts: report.metrics.broadcasts,
            max_node_broadcasts: report.metrics.max_broadcasts_per_slot(),
            proposals,
        }
    }

    /// Runs all four configurations on the given topology.
    pub fn series(topo: &Topology, f_ack: u64) -> Vec<Row> {
        let n = topo.len();
        vec![
            run_cfg(topo, WpaxosConfig::new(n), f_ack, "full wPAXOS"),
            run_cfg(
                topo,
                WpaxosConfig::new(n).without_aggregation(),
                f_ack,
                "no aggregation",
            ),
            run_cfg(
                topo,
                WpaxosConfig::new(n).without_leader_priority(),
                f_ack,
                "no leader priority",
            ),
            run_cfg(
                topo,
                WpaxosConfig::new(n).flooded_responses(),
                f_ack,
                "flooded responses",
            ),
            run_cfg(
                topo,
                WpaxosConfig::new(n).with_leader_scoped_changes(),
                f_ack,
                "leader-scoped changes",
            ),
        ]
    }
}

/// E9: simulator vs the threaded MAC runtime (the deployability claim).
pub mod e9 {
    use super::*;

    /// One cross-substrate row.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Scenario label.
        pub name: &'static str,
        /// Simulator reached agreement.
        pub sim_agreed: bool,
        /// Threaded runtime reached agreement.
        pub rt_agreed: bool,
        /// Runtime wall-clock to the slowest decision.
        pub rt_latency: Duration,
        /// Runtime broadcasts.
        pub rt_broadcasts: u64,
    }

    /// Runs two-phase (clique 8) and wPAXOS (grid 4x3) on both
    /// substrates.
    pub fn series(seed: u64) -> Vec<Row> {
        let cfg = RuntimeConfig {
            max_jitter: Duration::from_micros(300),
            seed,
            timeout: Duration::from_secs(30),
            ..RuntimeConfig::default()
        };
        let mut rows = Vec::new();

        // Two-phase on a clique of 8.
        let inputs = alternating_inputs(8);
        let sim_run = run_two_phase(&inputs, RandomScheduler::new(5, seed));
        let rt = MacRuntime::new(Topology::clique(8), cfg.clone());
        let report = rt.run(|s| TwoPhase::new((s.index() % 2) as Value));
        rows.push(Row {
            name: "two-phase clique(8)",
            sim_agreed: sim_run.check.ok(),
            rt_agreed: report.all_decided && report.decided_values().len() == 1,
            rt_latency: report
                .decision_latency
                .iter()
                .flatten()
                .max()
                .copied()
                .unwrap_or_default(),
            rt_broadcasts: report.broadcasts,
        });

        // wPAXOS on a 4x3 grid.
        let topo = Topology::grid(4, 3);
        let n = topo.len();
        let sim_run = run_wpaxos(
            topo.clone(),
            &alternating_inputs(n),
            RandomScheduler::new(5, seed),
        );
        let rt = MacRuntime::new(topo, cfg);
        let report = rt.run(|s| wpaxos_node((s.index() % 2) as Value, n));
        rows.push(Row {
            name: "wPAXOS grid(4x3)",
            sim_agreed: sim_run.check.ok(),
            rt_agreed: report.all_decided && report.decided_values().len() == 1,
            rt_latency: report
                .decision_latency
                .iter()
                .flatten()
                .max()
                .copied()
                .unwrap_or_default(),
            rt_broadcasts: report.broadcasts,
        });
        rows
    }
}

/// E10: the future-work extensions — randomized consensus under
/// crashes, and unreliable links.
pub mod e10 {
    use super::*;

    /// Summary of the extension experiments.
    #[derive(Clone, Debug)]
    pub struct Summary {
        /// Ben-Or runs with a mid-broadcast crash: (seeds run, all
        /// satisfied consensus among survivors).
        pub ben_or_crash_runs: (u64, bool),
        /// Worst observed round count before everyone decided.
        pub ben_or_max_rounds: u64,
        /// wPAXOS with an unreliable overlay: all runs safe.
        pub unreliable_safe: bool,
    }

    /// Runs both extension experiments.
    pub fn run(seeds: u64) -> Summary {
        // Ben-Or, f = 1, mid-broadcast crash, many seeds.
        let n = 6;
        let mut all_ok = true;
        let mut max_rounds = 0;
        for seed in 0..seeds {
            let inputs: Vec<Value> = (0..n).map(|i| ((i as u64 + seed) % 2) as Value).collect();
            let iv = inputs.clone();
            let mut sim = SimBuilder::new(Topology::clique(n), |s| BenOr::new(iv[s.index()], n))
                .scheduler(RandomScheduler::new(4, seed))
                .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
                    slot: Slot(1),
                    nth_broadcast: seed % 3,
                    delivered: (seed % 4) as usize,
                }]))
                .seed(seed)
                .build();
            let report = sim.run();
            let mut crashed = vec![false; n];
            crashed[1] = true;
            let check = check_consensus(&inputs, &report, &crashed);
            all_ok &= check.ok();
            for i in 0..n {
                max_rounds = max_rounds.max(sim.process(Slot(i)).rounds_executed());
            }
        }

        // wPAXOS with spurious extra deliveries over unreliable links.
        let mut unreliable_safe = true;
        for seed in 0..seeds.min(10) {
            let base = Topology::ring(10);
            let overlay = UnreliableOverlay::new(&base, &[(0, 5), (2, 7), (1, 6)]);
            let inputs = alternating_inputs(10);
            let iv = inputs.clone();
            let mut sim = SimBuilder::new(base, |s| wpaxos_node(iv[s.index()], 10))
                .scheduler(RandomScheduler::new(4, seed))
                .unreliable(overlay, 0.5)
                .seed(seed)
                .build();
            let report = sim.run();
            unreliable_safe &= check_consensus(&inputs, &report, &[]).ok();
        }

        Summary {
            ben_or_crash_runs: (seeds, all_ok),
            ben_or_max_rounds: max_rounds,
            unreliable_safe,
        }
    }
}

/// E11: the `F_prog` refinement (paper Section 2's omitted second
/// timing parameter, flagged as future work).
pub mod e11 {
    use super::*;
    use amacl_model::msg::Payload;
    use amacl_model::proc::Context;

    /// A one-shot relay wave: the initiator broadcasts, everyone relays
    /// once, and each node "decides" the moment the wave reaches it.
    struct Wave {
        relayed: bool,
    }

    #[derive(Clone, Debug)]
    struct Front;
    impl Payload for Front {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for Wave {
        type Msg = Front;
        fn on_start(&mut self, ctx: &mut Context<'_, Front>) {
            if self.relayed {
                ctx.broadcast(Front);
                ctx.decide(0);
            }
        }
        fn on_receive(&mut self, _m: Front, ctx: &mut Context<'_, Front>) {
            if !self.relayed {
                self.relayed = true;
                ctx.broadcast(Front);
            }
            if ctx.decided().is_none() {
                ctx.decide(0);
            }
        }
        fn on_ack(&mut self, _ctx: &mut Context<'_, Front>) {}
    }

    /// One measurement point.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Progress bound.
        pub f_prog: u64,
        /// Ack bound.
        pub f_ack: u64,
        /// Line diameter for the wave.
        pub d: usize,
        /// Time for the relay wave to reach the far end — tracks
        /// `D * F_prog`, not `F_ack`.
        pub wave_ticks: u64,
        /// Two-phase consensus decision time on a clique under the same
        /// scheduler — tracks `F_ack`, because consensus is ack-driven.
        pub two_phase_ticks: u64,
    }

    /// Sweeps `F_prog` at fixed `F_ack`.
    pub fn series(d: usize, f_ack: u64, f_progs: &[u64], seed: u64) -> Vec<Row> {
        f_progs
            .iter()
            .map(|&f_prog| {
                let mut sim = SimBuilder::new(Topology::line(d + 1), |s| Wave {
                    relayed: s.index() == 0,
                })
                .scheduler(DualBoundScheduler::new(f_prog, f_ack, seed))
                .build();
                let report = sim.run();
                assert!(report.all_decided());
                let wave_ticks = report.max_decision_time().expect("wave arrived").ticks();

                let run = run_two_phase(
                    &alternating_inputs(8),
                    DualBoundScheduler::new(f_prog, f_ack, seed + 1),
                );
                run.check.assert_ok();
                Row {
                    f_prog,
                    f_ack,
                    d,
                    wave_ticks,
                    two_phase_ticks: run.decision_ticks(),
                }
            })
            .collect()
    }
}

/// E12: majority progress — why the paper keeps Paxos instead of plain
/// gathering — Paxos "only depends on a majority of nodes to make
/// progress, and is therefore not slowed if a small portion of the
/// network is delayed" (Section 1).
pub mod e12 {
    use super::*;
    use amacl_core::tree_gather::TreeGather;

    /// One laggard-adversary comparison.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Clique size.
        pub n: usize,
        /// The laggard's messages are withheld until this tick.
        pub laggard_release: u64,
        /// wPAXOS: latest decision among non-laggard nodes.
        pub wpaxos_ticks: u64,
        /// Tree-gather: latest decision among non-laggard nodes.
        pub gather_ticks: u64,
    }

    fn laggard_sched(n: usize, release: u64) -> EdgeDelayScheduler<SynchronousScheduler> {
        // Slot 0 (small id, never the leader) is the laggard: nothing
        // it sends arrives before `release`.
        let all: Vec<Slot> = (0..n).map(Slot).collect();
        EdgeDelayScheduler::new(
            SynchronousScheduler::new(1),
            vec![DirectedCut::new([Slot(0)], all, Time(release))],
        )
    }

    /// Runs both algorithms under the laggard adversary.
    pub fn series(n: usize, releases: &[u64]) -> Vec<Row> {
        releases
            .iter()
            .map(|&release| {
                let inputs = alternating_inputs(n);

                let iv = inputs.clone();
                let mut sim = SimBuilder::new(Topology::clique(n), |s| {
                    WpaxosNode::new(iv[s.index()], WpaxosConfig::new(n))
                })
                .scheduler(laggard_sched(n, release))
                .build();
                let wreport = sim.run();
                check_consensus(&inputs, &wreport, &[]).assert_ok();
                let wpaxos_ticks = non_laggard_latest(&wreport);

                let iv = inputs.clone();
                let mut sim =
                    SimBuilder::new(Topology::clique(n), |s| TreeGather::new(iv[s.index()], n))
                        .scheduler(laggard_sched(n, release))
                        .build();
                let greport = sim.run();
                check_consensus(&inputs, &greport, &[]).assert_ok();
                let gather_ticks = non_laggard_latest(&greport);

                Row {
                    n,
                    laggard_release: release,
                    wpaxos_ticks,
                    gather_ticks,
                }
            })
            .collect()
    }

    fn non_laggard_latest(report: &RunReport) -> u64 {
        report.decisions[1..]
            .iter()
            .flatten()
            .map(|d| d.time.ticks())
            .max()
            .expect("non-laggard decisions")
    }
}

/// E13: multi-valued consensus — the paper's open generalization
/// (Section 2). Bitwise composition pays `Theta(B)` rounds; direct
/// value-agnostic Paxos pays one.
pub mod e13 {
    use super::*;
    use amacl_core::multivalued::BitwiseTwoPhase;

    /// One bit-width measurement point.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Value width in bits.
        pub bits: u32,
        /// Clique size.
        pub n: usize,
        /// Scheduler bound.
        pub f_ack: u64,
        /// Bitwise two-phase: latest decision, ticks.
        pub bitwise_ticks: u64,
        /// `bitwise_ticks / (bits * F_ack)` — predicted constant.
        pub per_bit_ratio: f64,
        /// wPAXOS on the same clique with the same (wide) inputs:
        /// latest decision, ticks — flat in `bits`.
        pub wpaxos_ticks: u64,
    }

    /// Distinct `bits`-wide inputs for an `n`-clique (adversarially
    /// spread across the value range so every round has conflicts).
    fn wide_inputs(n: usize, bits: u32) -> Vec<Value> {
        let top = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        (0..n)
            .map(|i| {
                // Alternate complementary patterns plus extremes.
                match i % 4 {
                    0 => 0,
                    1 => top,
                    2 => top / 3,         // 0b0101...
                    _ => top - (top / 3), // 0b1010...
                }
            })
            .collect()
    }

    /// Sweeps the bit width at fixed `n` and `F_ack` under the
    /// max-delay adversary.
    pub fn series(n: usize, bitss: &[u32], f_ack: u64) -> Vec<Row> {
        bitss
            .iter()
            .map(|&bits| {
                let inputs = wide_inputs(n, bits);
                let iv = inputs.clone();
                let mut sim = SimBuilder::new(Topology::clique(n), |s| {
                    BitwiseTwoPhase::new(iv[s.index()], bits)
                })
                .scheduler(MaxDelayScheduler::new(f_ack))
                .message_id_budget(1)
                .build();
                let report = sim.run();
                check_consensus(&inputs, &report, &[]).assert_ok();
                let bitwise_ticks = report.max_decision_time().expect("decided").ticks();

                let run = run_wpaxos(Topology::clique(n), &inputs, MaxDelayScheduler::new(f_ack));
                run.check.assert_ok();

                Row {
                    bits,
                    n,
                    f_ack,
                    bitwise_ticks,
                    per_bit_ratio: bitwise_ticks as f64 / (bits as u64 * f_ack) as f64,
                    wpaxos_ticks: run.decision_ticks(),
                }
            })
            .collect()
    }

    /// A single bitwise run, used by the Criterion bench.
    pub fn one(n: usize, bits: u32, f_ack: u64, seed: u64) -> u64 {
        let inputs = wide_inputs(n, bits);
        let iv = inputs.clone();
        let mut sim = SimBuilder::new(Topology::clique(n), |s| {
            BitwiseTwoPhase::new(iv[s.index()], bits)
        })
        .scheduler(RandomScheduler::new(f_ack, seed))
        .message_id_budget(1)
        .build();
        let report = sim.run();
        check_consensus(&inputs, &report, &[]).assert_ok();
        report.max_decision_time().expect("decided").ticks()
    }
}

/// E14: the failure-detector escape from Theorem 3.2 — deterministic
/// crash-tolerant consensus via `◇P` + Paxos (Section 5 future work).
pub mod e14 {
    use super::*;
    use amacl_core::extensions::fd_paxos::FdPaxos;

    /// One crash-tolerance measurement point.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Clique size.
        pub n: usize,
        /// Nodes crashed (all minority-sized sets keep a majority).
        pub crashes: usize,
        /// Seeds run.
        pub seeds: u64,
        /// Every run satisfied consensus among survivors.
        pub all_ok: bool,
        /// Worst decision time among survivors, ticks.
        pub worst_ticks: u64,
        /// Worst ballots started by any single node (stabilization
        /// quality: small and bounded).
        pub worst_ballots: u64,
        /// Worst false suspicions recorded by any detector.
        pub worst_false_suspicions: u64,
    }

    /// Runs `seeds` executions per crash count, with crashes placed
    /// adversarially (the initial leader first, mid-broadcast).
    pub fn series(n: usize, crash_counts: &[usize], seeds: u64) -> Vec<Row> {
        crash_counts
            .iter()
            .map(|&crashes| {
                assert!(2 * crashes < n, "majority must survive");
                let mut all_ok = true;
                let mut worst_ticks = 0;
                let mut worst_ballots = 0;
                let mut worst_fs = 0;
                for seed in 0..seeds {
                    let inputs: Vec<Value> =
                        (0..n).map(|i| ((i as u64 + seed) % 2) as Value).collect();
                    let iv = inputs.clone();
                    let specs: Vec<CrashSpec> = (0..crashes)
                        .map(|k| {
                            // Crash the k smallest ids — each the current
                            // leader candidate — mid-broadcast at varying
                            // points.
                            CrashSpec::MidBroadcast {
                                slot: Slot(k),
                                nth_broadcast: seed % 4,
                                delivered: (seed as usize + k) % (n - 1),
                            }
                        })
                        .collect();
                    let mut sim =
                        SimBuilder::new(Topology::clique(n), |s| FdPaxos::new(iv[s.index()], n, 4))
                            .scheduler(RandomScheduler::new(4, seed))
                            .crashes(CrashPlan::new(specs))
                            .message_id_budget(3)
                            .max_time(Time(500_000))
                            .build();
                    let report = sim.run();
                    let crashed: Vec<bool> = (0..n).map(|i| i < crashes).collect();
                    let check = check_consensus(&inputs, &report, &crashed);
                    all_ok &= check.ok();
                    worst_ticks =
                        worst_ticks.max(report.max_decision_time().map_or(0, |t| t.ticks()));
                    for i in 0..n {
                        worst_ballots = worst_ballots.max(sim.process(Slot(i)).ballots_started());
                        worst_fs = worst_fs.max(sim.process(Slot(i)).detector().false_suspicions());
                    }
                }
                Row {
                    n,
                    crashes,
                    seeds,
                    all_ok,
                    worst_ticks,
                    worst_ballots,
                    worst_false_suspicions: worst_fs,
                }
            })
            .collect()
    }
}

/// E15: exhaustive model checking — covering the entire scheduler
/// space for small instances (the quantifier the paper's proofs range
/// over).
pub mod e15 {
    use super::*;
    use amacl_checker::{ExploreConfig, Explorer, ViolationKind};
    use amacl_core::baselines::flood_gather::FloodGather;
    use amacl_core::multivalued::BitwiseTwoPhase;

    /// One exhaustive-verification row.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Instance label.
        pub name: String,
        /// Crash budget given to the explored scheduler.
        pub crash_budget: usize,
        /// Distinct global states covered.
        pub states: usize,
        /// Terminal states (schedules run to quiescence).
        pub terminals: usize,
        /// Longest schedule followed.
        pub depth: usize,
        /// Verified (full cover, no violations).
        pub verified: bool,
        /// First violation kind, if any.
        pub violation: Option<ViolationKind>,
        /// Length of the violating schedule, if any.
        pub schedule_len: Option<usize>,
    }

    fn row<P>(
        name: &str,
        topo: Topology,
        procs: Vec<P>,
        inputs: Vec<Value>,
        crash_budget: usize,
    ) -> Row
    where
        P: Process + Clone + std::fmt::Debug,
        P::Msg: Clone + std::fmt::Debug,
    {
        let out = Explorer::new(topo, procs, inputs, crash_budget).run(ExploreConfig::default());
        Row {
            name: name.to_string(),
            crash_budget,
            states: out.states,
            terminals: out.terminal_states,
            depth: out.max_depth_reached,
            verified: out.verified(),
            violation: out.violations.first().map(|v| v.kind),
            schedule_len: out.violations.first().map(|v| v.schedule.len()),
        }
    }

    /// Runs the verification census.
    pub fn series() -> Vec<Row> {
        let mut rows = Vec::new();
        let mk_tp = |inputs: &[Value]| -> Vec<TwoPhase> {
            inputs.iter().map(|&v| TwoPhase::new(v)).collect()
        };
        rows.push(row(
            "two-phase clique(2) [0,1]",
            Topology::clique(2),
            mk_tp(&[0, 1]),
            vec![0, 1],
            0,
        ));
        rows.push(row(
            "two-phase clique(3) [0,1,1]",
            Topology::clique(3),
            mk_tp(&[0, 1, 1]),
            vec![0, 1, 1],
            0,
        ));
        rows.push(row(
            "two-phase literal-R2 clique(2) [0,1]",
            Topology::clique(2),
            vec![
                TwoPhase::with_literal_r2_check(0),
                TwoPhase::with_literal_r2_check(1),
            ],
            vec![0, 1],
            0,
        ));
        rows.push(row(
            "two-phase clique(3) [0,1,1] +1 crash",
            Topology::clique(3),
            mk_tp(&[0, 1, 1]),
            vec![0, 1, 1],
            1,
        ));
        rows.push(row(
            "bitwise(2b) clique(2) [0b01,0b10]",
            Topology::clique(2),
            vec![BitwiseTwoPhase::new(0b01, 2), BitwiseTwoPhase::new(0b10, 2)],
            vec![0b01, 0b10],
            0,
        ));
        rows.push(row(
            "flood-gather line(3) [0,1,0]",
            Topology::line(3),
            vec![
                FloodGather::new(0, 3),
                FloodGather::new(1, 3),
                FloodGather::new(0, 3),
            ],
            vec![0, 1, 0],
            0,
        ));
        rows.push(row(
            "flood-gather clique(3) +1 crash",
            Topology::clique(3),
            vec![
                FloodGather::new(0, 3),
                FloodGather::new(1, 3),
                FloodGather::new(1, 3),
            ],
            vec![0, 1, 1],
            1,
        ));
        rows
    }
}

/// Shared helper: run wPAXOS with a config and return the full run
/// (re-exported for the Criterion benches).
pub fn wpaxos_run_for_bench(topo: Topology, cfg: WpaxosConfig, f_ack: u64, seed: u64) -> u64 {
    let n = topo.len();
    let run = run_wpaxos_with(
        topo,
        &alternating_inputs(n),
        cfg,
        RandomScheduler::new(f_ack, seed),
    );
    run.check.assert_ok();
    run.decision_ticks()
}
