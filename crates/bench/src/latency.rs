//! Open-loop latency baseline: the `amacl-bench-latency/v1` schema,
//! its parser, and the regression gate.
//!
//! The engine baseline (`baseline`) gates *throughput* — a wall-clock
//! figure that drifts with the machine, hence the generous collapse
//! tolerance. The latency baseline is different in kind: submit→decide
//! latency is measured in **virtual ticks**, and for a fixed seed the
//! open-loop workload is fully deterministic, so the latency surface
//! (decided count, p50/p99/p999) must match the committed baseline
//! **exactly** — any drift is a semantic change to the engine or the
//! consensus pipeline, not measurement noise. Only the per-row
//! `events_per_sec` (wall-clock) is gated with a tolerance, like the
//! engine rows.
//!
//! Rows are keyed `(arrival, rate, n, shards, threads)`; the shard and
//! thread axes exist to re-prove the identity theorem from the bench
//! layer — [`measure_latency`] asserts that every engine configuration
//! at the same `(arrival, rate)` produced the identical surface before
//! a row is emitted.

use std::time::Instant;

use amacl_checker::workload::{run_load, ArrivalKind, LoadScenario, WorkloadSpec};
use amacl_model::sim::queue::QueueCoreKind;

use crate::baseline::{json_number, json_string};

/// Schema identifier written into (and expected in) the JSON file.
pub const LATENCY_SCHEMA: &str = "amacl-bench-latency/v1";

/// One measurement configuration of the latency grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyConfig {
    /// Arrival process of the open-loop workload.
    pub arrival: ArrivalKind,
    /// Target arrival rate (requests per 1000 ticks).
    pub rate: u64,
    /// Engine shard count (1 = serial).
    pub shards: usize,
    /// Worker threads stepping each conservative window.
    pub threads: usize,
}

/// The default measurement grid: both arrival processes serially, the
/// Poisson workload re-run sharded and thread-stepped (identity
/// re-proof from the bench layer), and a higher-rate Poisson row for
/// the throughput axis.
pub const DEFAULT_GRID: &[LatencyConfig] = &[
    LatencyConfig {
        arrival: ArrivalKind::Deterministic,
        rate: 5,
        shards: 1,
        threads: 1,
    },
    LatencyConfig {
        arrival: ArrivalKind::Poisson,
        rate: 5,
        shards: 1,
        threads: 1,
    },
    LatencyConfig {
        arrival: ArrivalKind::Poisson,
        rate: 5,
        shards: 2,
        threads: 1,
    },
    LatencyConfig {
        arrival: ArrivalKind::Poisson,
        rate: 5,
        shards: 4,
        threads: 4,
    },
    LatencyConfig {
        arrival: ArrivalKind::Poisson,
        rate: 10,
        shards: 1,
        threads: 1,
    },
];

/// One per-configuration row of the latency baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyRow {
    /// Arrival process name (`"det"` / `"poisson"`).
    pub arrival: String,
    /// Target arrival rate (requests per 1000 ticks).
    pub rate: u64,
    /// Network size of the workload.
    pub n: u64,
    /// Engine shard count (rows without the field parse as 1).
    pub shards: u64,
    /// Engine worker threads (rows without the field parse as 1).
    pub threads: u64,
    /// Requests decided over the run (deterministic).
    pub decided: u64,
    /// Median submit→decide latency in virtual ticks (deterministic).
    pub p50: u64,
    /// 99th-percentile latency in virtual ticks (deterministic).
    pub p99: u64,
    /// 99.9th-percentile latency in virtual ticks (deterministic).
    pub p999: u64,
    /// Share of parallel-stepper worker time lost to window barriers,
    /// in percent (wall-clock derived; 0 for serial rows; rows without
    /// the field parse as 0). Recorded for the report, never gated.
    pub barrier_pct: u64,
    /// Wall-clock engine throughput (machine-dependent).
    pub events_per_sec: f64,
}

impl LatencyRow {
    /// The row's human-readable key, used in every gate verdict line.
    pub fn label(&self) -> String {
        format!(
            "arrival={} rate={} n={} shards={} threads={}",
            self.arrival, self.rate, self.n, self.shards, self.threads
        )
    }

    fn same_key(&self, other: &LatencyRow) -> bool {
        self.arrival == other.arrival
            && self.rate == other.rate
            && self.n == other.n
            && self.shards == other.shards
            && self.threads == other.threads
    }
}

/// Extracts the per-configuration rows from a latency baseline JSON.
/// Returns an empty vector when no rows are present (or the file is
/// not a latency baseline at all).
pub fn parse_latency_rows(json: &str) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"arrival\"") {
        let after = &rest[pos..];
        let end = after.find('}').unwrap_or(after.len());
        let chunk = &after[..end];
        if let (
            Some(arrival),
            Some(rate),
            Some(n),
            Some(decided),
            Some(p50),
            Some(p99),
            Some(p999),
            Some(events_per_sec),
        ) = (
            json_string(chunk, "arrival"),
            json_number(chunk, "rate"),
            json_number(chunk, "n"),
            json_number(chunk, "decided"),
            json_number(chunk, "p50"),
            json_number(chunk, "p99"),
            json_number(chunk, "p999"),
            json_number(chunk, "events_per_sec"),
        ) {
            rows.push(LatencyRow {
                arrival,
                rate: rate as u64,
                n: n as u64,
                shards: json_number(chunk, "shards").map_or(1, |s| s as u64),
                threads: json_number(chunk, "threads").map_or(1, |t| t as u64),
                barrier_pct: json_number(chunk, "barrier_pct").map_or(0, |b| b as u64),
                decided: decided as u64,
                p50: p50 as u64,
                p99: p99 as u64,
                p999: p999 as u64,
                events_per_sec,
            });
        }
        rest = &after[end..];
    }
    rows
}

/// Gates every baseline latency row against the matching fresh row:
/// the deterministic surface (`decided`, `p50`, `p99`, `p999`) must
/// match **exactly** (virtual-tick figures have no measurement noise
/// — drift means the engine's semantics changed), the wall-clock
/// `events_per_sec` must not have collapsed below
/// `baseline / tolerance`, and every baseline configuration must have
/// been re-measured.
///
/// Returns one human-readable verdict line per row.
///
/// # Errors
///
/// Returns the joined failure messages when any row is missing, moved,
/// or collapsed.
pub fn gate_latency_rows(
    baseline_json: &str,
    fresh: &[LatencyRow],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    assert!(tolerance >= 1.0, "tolerance must be >= 1");
    let baseline = parse_latency_rows(baseline_json);
    if baseline.is_empty() {
        return Err("latency baseline JSON has no rows".into());
    }
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for b in &baseline {
        let label = b.label();
        match fresh.iter().find(|f| f.same_key(b)) {
            None => failures.push(format!("{label}: no fresh measurement")),
            Some(f)
                if (f.decided, f.p50, f.p99, f.p999) != (b.decided, b.p50, b.p99, b.p999) =>
            {
                failures.push(format!(
                    "{label}: deterministic latency surface moved: \
                     decided/p50/p99/p999 {}/{}/{}/{} vs baseline {}/{}/{}/{} \
                     (virtual ticks are seed-determined; this is a semantic change, not noise)",
                    f.decided, f.p50, f.p99, f.p999, b.decided, b.p50, b.p99, b.p999
                ));
            }
            Some(f) if f.events_per_sec * tolerance < b.events_per_sec => failures.push(format!(
                "{label}: collapsed to {:.0} events/sec vs baseline {:.0} ({}x slower, tolerance {tolerance}x)",
                f.events_per_sec,
                b.events_per_sec,
                (b.events_per_sec / f.events_per_sec).round()
            )),
            Some(f) => lines.push(format!(
                "{label}: p50/p99/p999 {}/{}/{} ticks unchanged, {:.0} events/sec vs baseline {:.0} ({:.2}x, tolerance {tolerance}x)",
                f.p50,
                f.p99,
                f.p999,
                f.events_per_sec,
                b.events_per_sec,
                f.events_per_sec / b.events_per_sec
            )),
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures.join("; "))
    }
}

/// Runs the open-loop steady-state workload once per grid
/// configuration and returns the `amacl-bench-latency/v1` JSON plus
/// the parsed rows.
///
/// Every configuration at the same `(arrival, rate)` must produce the
/// identical deterministic surface — shards and threads may change
/// wall-clock speed, never virtual-tick results — and steady state
/// must fully drain; both are asserted here so a broken identity or an
/// overloaded grid entry fails the measurement itself, not just the
/// gate downstream.
pub fn measure_latency(grid: &[LatencyConfig]) -> (String, Vec<LatencyRow>) {
    let base = WorkloadSpec::default_spec();
    // Warm-up (page in code and allocator state).
    let _ = run_load(
        &steady_state(&base, grid[0]),
        QueueCoreKind::Heap,
        1,
        1,
        false,
    );

    let mut rows: Vec<LatencyRow> = Vec::new();
    let mut row_json: Vec<String> = Vec::new();
    for &cfg in grid {
        let scenario = steady_state(&base, cfg);
        let t0 = Instant::now();
        let run = run_load(
            &scenario,
            QueueCoreKind::Heap,
            cfg.shards,
            cfg.threads,
            false,
        );
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            run.unfinished, 0,
            "latency grid entry {cfg:?} did not drain — raise the drain window or lower the rate"
        );
        let row = LatencyRow {
            arrival: cfg.arrival.name().to_string(),
            rate: cfg.rate,
            n: scenario.spec.n as u64,
            shards: cfg.shards as u64,
            threads: cfg.threads as u64,
            decided: run.histogram.count(),
            p50: run.histogram.p50(),
            p99: run.histogram.p99(),
            p999: run.histogram.p999(),
            barrier_pct: run.barrier_pct.round() as u64,
            events_per_sec: run.engine_events as f64 / wall,
        };
        if let Some(prev) = rows
            .iter()
            .find(|r| r.arrival == row.arrival && r.rate == row.rate)
        {
            assert_eq!(
                (prev.decided, prev.p50, prev.p99, prev.p999),
                (row.decided, row.p50, row.p99, row.p999),
                "S={} T={} changed the {} rate={} latency surface",
                cfg.shards,
                cfg.threads,
                row.arrival,
                row.rate
            );
        }
        eprintln!(
            "measured arrival={} rate={} n={} shards={} threads={}: decided={} \
             p50/p99/p999={}/{}/{} ticks, barrier {}%, {:.0} events/sec ({:.3}s wall)",
            row.arrival,
            row.rate,
            row.n,
            row.shards,
            row.threads,
            row.decided,
            row.p50,
            row.p99,
            row.p999,
            row.barrier_pct,
            row.events_per_sec,
            wall
        );
        row_json.push(format!(
            "    {{\"arrival\": \"{}\", \"rate\": {}, \"n\": {}, \"shards\": {}, \"threads\": {}, \"decided\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}, \"decided_per_kilotick\": {:.3}, \"events_total\": {}, \"barrier_pct\": {}, \"wall_s\": {wall:.4}, \"events_per_sec\": {:.0}}}",
            row.arrival,
            row.rate,
            row.n,
            row.shards,
            row.threads,
            row.decided,
            row.p50,
            row.p99,
            row.p999,
            run.histogram.max(),
            run.decided_per_kilotick(),
            run.engine_events,
            row.barrier_pct,
            row.events_per_sec
        ));
        rows.push(row);
    }
    let json = format!(
        "{{\n  \"schema\": \"{LATENCY_SCHEMA}\",\n  \"workload\": \"open-loop steady state: bitwise({}) pipeline on clique({}), RandomScheduler(F_ack={}), seed {}, {} ticks + {} drain\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        base.bits,
        base.n,
        base.f_ack,
        base.seed,
        base.duration,
        base.drain,
        row_json.join(",\n")
    );
    (json, rows)
}

/// The steady-state scenario (no crash, no partition) for one grid
/// configuration: the default spec with the grid's arrival and rate.
fn steady_state(base: &WorkloadSpec, cfg: LatencyConfig) -> LoadScenario {
    LoadScenario {
        name: format!("bench-{}-{}", cfg.arrival.name(), cfg.rate),
        spec: WorkloadSpec {
            arrival: cfg.arrival,
            rate_per_kilotick: cfg.rate,
            ..base.clone()
        },
        crash: None,
        partition: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "amacl-bench-latency/v1",
  "workload": "open-loop steady state",
  "rows": [
    {"arrival": "det", "rate": 5, "n": 4, "shards": 1, "threads": 1, "decided": 100, "p50": 128, "p99": 256, "p999": 256, "events_per_sec": 500000},
    {"arrival": "poisson", "rate": 5, "n": 4, "shards": 4, "threads": 4, "decided": 103, "p50": 128, "p99": 512, "p999": 512, "barrier_pct": 7, "events_per_sec": 400000}
  ]
}"#;

    fn row(arrival: &str, shards: u64, threads: u64, decided: u64, eps: f64) -> LatencyRow {
        LatencyRow {
            arrival: arrival.into(),
            rate: 5,
            n: 4,
            shards,
            threads,
            decided,
            p50: 128,
            p99: if arrival == "det" { 256 } else { 512 },
            p999: if arrival == "det" { 256 } else { 512 },
            barrier_pct: 0,
            events_per_sec: eps,
        }
    }

    #[test]
    fn parses_latency_rows() {
        let rows = parse_latency_rows(SAMPLE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].arrival, "det");
        assert_eq!(rows[0].decided, 100);
        assert_eq!(rows[0].p999, 256);
        assert_eq!(rows[1].shards, 4);
        assert_eq!(rows[1].threads, 4);
        // barrier_pct is additive: absent rows parse as 0.
        assert_eq!(rows[0].barrier_pct, 0);
        assert_eq!(rows[1].barrier_pct, 7);
        assert_eq!(rows[1].events_per_sec, 400000.0);
    }

    #[test]
    fn missing_shards_and_threads_parse_as_serial() {
        let json = r#"{"rows": [{"arrival": "det", "rate": 5, "n": 4, "decided": 7, "p50": 1, "p99": 2, "p999": 3, "events_per_sec": 10}]}"#;
        let rows = parse_latency_rows(json);
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].shards, rows[0].threads), (1, 1));
    }

    #[test]
    fn engine_baseline_has_no_latency_rows() {
        let engine = r#"{"schema": "amacl-bench-engine/v4", "rows": [{"queue_core": "heap", "n": 32, "events_per_sec": 1}]}"#;
        assert!(parse_latency_rows(engine).is_empty());
    }

    #[test]
    fn gate_passes_identical_surface() {
        let fresh = vec![
            row("det", 1, 1, 100, 450000.0),
            row("poisson", 4, 4, 103, 350000.0),
        ];
        let lines = gate_latency_rows(SAMPLE, &fresh, 3.0).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("arrival=det"));
        assert!(lines[0].contains("unchanged"));
    }

    #[test]
    fn gate_fails_on_moved_quantile() {
        let mut fresh = vec![
            row("det", 1, 1, 100, 450000.0),
            row("poisson", 4, 4, 103, 350000.0),
        ];
        fresh[0].p99 = 512;
        let err = gate_latency_rows(SAMPLE, &fresh, 3.0).unwrap_err();
        assert!(err.contains("latency surface moved"), "{err}");
        assert!(err.contains("arrival=det"), "{err}");
    }

    #[test]
    fn gate_fails_on_moved_decided_count() {
        let fresh = vec![
            row("det", 1, 1, 99, 450000.0),
            row("poisson", 4, 4, 103, 350000.0),
        ];
        let err = gate_latency_rows(SAMPLE, &fresh, 3.0).unwrap_err();
        assert!(err.contains("semantic change"), "{err}");
    }

    #[test]
    fn gate_fails_on_throughput_collapse() {
        let fresh = vec![
            row("det", 1, 1, 100, 100000.0),
            row("poisson", 4, 4, 103, 350000.0),
        ];
        let err = gate_latency_rows(SAMPLE, &fresh, 3.0).unwrap_err();
        assert!(err.contains("collapsed"), "{err}");
    }

    #[test]
    fn gate_fails_on_missing_row() {
        let fresh = vec![row("det", 1, 1, 100, 450000.0)];
        let err = gate_latency_rows(SAMPLE, &fresh, 3.0).unwrap_err();
        assert!(err.contains("no fresh measurement"), "{err}");
        assert!(err.contains("arrival=poisson"), "{err}");
    }

    #[test]
    fn gate_rejects_empty_baseline() {
        let err = gate_latency_rows("{}", &[], 3.0).unwrap_err();
        assert!(err.contains("no rows"), "{err}");
    }

    #[test]
    fn measure_emits_parseable_deterministic_rows() {
        // One serial entry plus a sharded re-run of the same workload:
        // exercises the JSON round trip AND the surface-identity
        // assertion inside measure_latency.
        let grid = [
            LatencyConfig {
                arrival: ArrivalKind::Poisson,
                rate: 5,
                shards: 1,
                threads: 1,
            },
            LatencyConfig {
                arrival: ArrivalKind::Poisson,
                rate: 5,
                shards: 2,
                threads: 1,
            },
        ];
        let (json, rows) = measure_latency(&grid);
        assert!(json.contains(LATENCY_SCHEMA));
        let parsed = parse_latency_rows(&json);
        assert_eq!(parsed.len(), rows.len());
        for (p, r) in parsed.iter().zip(&rows) {
            assert_eq!(
                (p.decided, p.p50, p.p99, p.p999),
                (r.decided, r.p50, r.p99, r.p999)
            );
        }
        // Gating the fresh JSON against its own rows must pass.
        let lines = gate_latency_rows(&json, &rows, 3.0).unwrap();
        assert_eq!(lines.len(), 2);
    }
}
