//! Regenerates every experiment series from the reproduction.
//!
//! Usage: `cargo run -p amacl-bench --release --bin tables [-- e1 e2 ...]`
//! With no arguments, all experiments run in order. Output is the
//! source of the measured numbers recorded in `EXPERIMENTS.md`.
//!
//! Special modes:
//!
//! * `tables -- --smoke` — a seconds-long sanity pass (tiny e1/e2
//!   slices plus a short engine throughput run) for CI.
//! * `tables -- bench-engine [--out <path>]` — the scaling sweep:
//!   measures engine events/sec on the reference wPAXOS workload for
//!   every `(queue core, n, shards, threads)` configuration in
//!   [`amacl_bench::scaling::SWEEP`] × [`amacl_bench::scaling::CONFIG_SWEEP`]
//!   (n ∈ {32, 128, 512} × heap/calendar × (S, T) ∈ {(1,1), (4,1),
//!   (4,4)}), serially and with the parallel multi-seed driver, and
//!   writes the `amacl-bench-engine/v6` JSON baseline
//!   (`BENCH_engine.json` at the repo root by convention). Each row
//!   also records the coordinator's cross-shard delivery and window
//!   counts, the payload-arena counters (`payload_clones` summed and
//!   `arena_bytes_peak` maxed over the row's seeds) and — for threaded
//!   rows — the barrier-wait share plus the persistent pool's
//!   superstep and worker-wakeup counts (summed over the row's
//!   seeds); the file keeps a v1-compatible top-level
//!   `events_per_sec` (the heap/n=32/serial reference figure).
//! * `tables -- bench-latency [--out <path>]` — the open-loop latency
//!   sweep: runs the steady-state workload once per
//!   [`amacl_bench::latency::DEFAULT_GRID`] configuration (arrival
//!   process × rate × engine shards/threads) and writes the
//!   `amacl-bench-latency/v1` JSON baseline (`BENCH_latency.json` at
//!   the repo root by convention). The p50/p99/p999 figures are in
//!   virtual ticks and seed-determined — the sweep itself asserts they
//!   are identical across engine configurations.
//! * `tables -- bench-gate [--baseline <path>] [--tolerance <x>]
//!   [--out <path>] [--latency-baseline <path>]` — the CI regression
//!   gate: remeasures, writes the fresh JSON, and exits nonzero when
//!   any configuration collapsed below `baseline / tolerance` (default
//!   tolerance 3x, generous enough for shared-runner variance but not
//!   for a real regression). Every v6 (or v5/v4/v3/v2 with the newer
//!   fields implied) row is gated individually — v5+ rows additionally
//!   pin their deterministic `payload_clones` count exactly (the v6
//!   superstep/wakeup counters are informational: they follow the
//!   runner's core count); v1
//!   baselines gate on the single reference figure. When the latency baseline
//!   file exists (default `BENCH_latency.json`), its rows are gated
//!   alongside the engine rows: virtual-tick quantiles must match
//!   exactly, wall-clock throughput within the same tolerance.

use std::time::Instant;

use amacl_bench::baseline::{gate, gate_rows, json_number, parse_rows, BaselineRow};
use amacl_bench::experiments::*;
use amacl_bench::latency::{gate_latency_rows, measure_latency, DEFAULT_GRID};
use amacl_bench::parallel::{self, run_seeds};
use amacl_bench::scaling;
use amacl_core::harness::{alternating_inputs, run_wpaxos};
use amacl_model::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // Modes dispatch on the FIRST argument only, so a mode's own
    // options can never be mistaken for another mode (e.g. a stray
    // `--smoke` after `bench-gate` must not silently replace the
    // regression gate with the smoke pass).
    match args.first().map(String::as_str) {
        Some("--smoke") => {
            run_smoke();
            return;
        }
        Some("bench-engine") => {
            bench_engine(opt("--out").as_deref());
            return;
        }
        Some("bench-latency") => {
            bench_latency(opt("--out").as_deref());
            return;
        }
        Some("bench-gate") => {
            let baseline_path = opt("--baseline").unwrap_or_else(|| "BENCH_engine.json".into());
            let latency_path =
                opt("--latency-baseline").unwrap_or_else(|| "BENCH_latency.json".into());
            let tolerance: f64 = opt("--tolerance")
                .map(|s| s.parse().expect("--tolerance takes a number"))
                .unwrap_or(3.0);
            bench_gate(
                &baseline_path,
                &latency_path,
                tolerance,
                opt("--out").as_deref(),
            );
            return;
        }
        _ => {}
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("e1") {
        print_e1();
    }
    if want("e2") {
        print_e2();
    }
    if want("e3") {
        print_e3();
    }
    if want("e4") {
        print_e4();
    }
    if want("e5") {
        print_e5();
    }
    if want("e6") {
        print_e6();
    }
    if want("e7") {
        print_e7();
    }
    if want("e8") {
        print_e8();
    }
    if want("e9") {
        print_e9();
    }
    if want("e10") {
        print_e10();
    }
    if want("e11") {
        print_e11();
    }
    if want("e12") {
        print_e12();
    }
    if want("e13") {
        print_e13();
    }
    if want("e14") {
        print_e14();
    }
    if want("e15") {
        print_e15();
    }
}

fn header(id: &str, claim: &str) {
    println!("\n=== {id}: {claim} ===");
}

/// One engine run of the reference workload; returns the event count
/// the engine processed. Used by both the smoke pass and the JSON
/// baseline.
fn reference_workload(seed: u64) -> u64 {
    let topo = Topology::random_connected(32, 0.15, seed);
    let n = topo.len();
    let run = run_wpaxos(topo, &alternating_inputs(n), RandomScheduler::new(4, seed));
    run.check.assert_ok();
    run.report.metrics.events
}

/// Seconds-long sanity pass for CI: tiny slices of e1/e2 plus a short
/// engine-throughput measurement, all asserting their consensus
/// checks.
fn run_smoke() {
    println!("=== smoke: e1 slice ===");
    for row in e1::series(&[2, 8], &[1, 4]) {
        println!("n={} F_ack={} ticks={}", row.n, row.f_ack, row.ticks);
    }
    println!("=== smoke: e2 slice ===");
    for row in e2::series(1).into_iter().take(2) {
        println!("{} n={} D={} ticks={}", row.name, row.n, row.d, row.ticks);
    }
    println!("=== smoke: engine throughput (4 seeds) ===");
    let t0 = Instant::now();
    let results = run_seeds(
        &[0, 1, 2, 3],
        parallel::default_threads(),
        reference_workload,
    );
    let events: u64 = results.iter().map(|r| r.result).sum();
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "events={events} wall={wall:.3}s events/sec={:.0}",
        events as f64 / wall
    );
    println!("smoke OK");
}

/// Runs the full scaling sweep — every `(queue core, n, shards,
/// threads)` configuration in [`scaling::SWEEP`] ×
/// [`scaling::CONFIG_SWEEP`], seeds fanned out over the parallel
/// driver — and returns the v6 JSON, the per-configuration rows, and
/// the v1-compatible reference figure (heap, n = 32, serial).
///
/// The top-level `threads` field is the *driver's* seed-fan-out width
/// (unchanged since v1); each row's `threads` is the engine's own
/// worker thread count inside the conservative windows.
fn measure_engine() -> (String, Vec<BaselineRow>, f64) {
    let threads = parallel::default_threads();

    // Warm-up (page in code and allocator state).
    let _ = scaling::workload(QueueCoreKind::Heap, 32, 0);

    let mut rows: Vec<BaselineRow> = Vec::new();
    let mut row_json: Vec<String> = Vec::new();
    let mut events_by_n: Vec<(usize, u64)> = Vec::new();
    for core in QueueCoreKind::all() {
        for &(n, nseeds) in scaling::SWEEP {
            for &(shards, step_threads) in scaling::CONFIG_SWEEP {
                let seeds: Vec<u64> = (0..nseeds as u64).collect();
                let report = parallel::measure_speedup(&seeds, threads, |seed| {
                    scaling::workload_threaded(core, n, shards, step_threads, seed)
                });
                let serial_wall = report.serial.as_secs_f64();
                let parallel_wall = report.parallel.as_secs_f64();
                let events: u64 = report.results.iter().map(|r| r.result.sharded.events).sum();
                let cross: u64 = report
                    .results
                    .iter()
                    .map(|r| r.result.sharded.cross_shard_deliveries)
                    .sum();
                let windows: u64 = report
                    .results
                    .iter()
                    .map(|r| r.result.sharded.window_advances)
                    .sum();
                let clones: u64 = report
                    .results
                    .iter()
                    .map(|r| r.result.sharded.payload_clones)
                    .sum();
                let arena_peak = report
                    .results
                    .iter()
                    .map(|r| r.result.sharded.arena_bytes_peak)
                    .max()
                    .unwrap_or(0);
                let barrier_pct = report
                    .results
                    .iter()
                    .map(|r| r.result.barrier_pct)
                    .fold(0.0f64, f64::max);
                let supersteps: u64 = report
                    .results
                    .iter()
                    .map(|r| r.result.superstep_count)
                    .sum();
                let wakeups: u64 = report.results.iter().map(|r| r.result.worker_wakeups).sum();
                // The event count is part of the determinism contract:
                // neither the queue core, the shard count, nor the
                // worker thread count may change what the engine
                // executes.
                match events_by_n.iter().find(|&&(en, _)| en == n) {
                    None => events_by_n.push((n, events)),
                    Some(&(_, expected)) => assert_eq!(
                        events, expected,
                        "core {core} / S={shards} T={step_threads} changed the n={n} event count"
                    ),
                }
                let events_per_sec = events as f64 / serial_wall;
                eprintln!(
                    "measured core={core} n={n} shards={shards} threads={step_threads}: \
                     {events_per_sec:.0} events/sec ({events} events, {serial_wall:.3}s serial, \
                     {cross} cross-shard, {clones} payload clones, {arena_peak} B arena peak, \
                     {barrier_pct:.1}% barrier, {supersteps} supersteps, {wakeups} wakeups)"
                );
                row_json.push(format!(
                    "    {{\"queue_core\": \"{core}\", \"n\": {n}, \"shards\": {shards}, \"threads\": {step_threads}, \"seeds\": {nseeds}, \"events_total\": {events}, \"cross_shard_deliveries\": {cross}, \"window_advances\": {windows}, \"payload_clones\": {clones}, \"arena_bytes_peak\": {arena_peak}, \"barrier_pct\": {barrier_pct:.1}, \"superstep_count\": {supersteps}, \"worker_wakeups\": {wakeups}, \"serial_wall_s\": {serial_wall:.4}, \"events_per_sec\": {events_per_sec:.0}, \"parallel_wall_s\": {parallel_wall:.4}, \"parallel_speedup\": {:.2}}}",
                    report.speedup()
                ));
                rows.push(BaselineRow {
                    queue_core: core.name().to_string(),
                    n: n as u64,
                    shards: shards as u64,
                    threads: step_threads as u64,
                    payload_clones: clones,
                    arena_bytes_peak: arena_peak,
                    superstep_count: supersteps,
                    worker_wakeups: wakeups,
                    events_per_sec,
                });
            }
        }
    }
    let reference = rows
        .iter()
        .find(|r| r.queue_core == "heap" && r.n == 32 && r.shards == 1 && r.threads == 1)
        .expect("heap/n=32/serial reference row")
        .events_per_sec;
    let json = format!(
        "{{\n  \"schema\": \"amacl-bench-engine/v6\",\n  \"workload\": \"wpaxos random_connected(n,p(n),seed), RandomScheduler(F_ack=4), both queue cores x (shards, threads) {:?}\",\n  \"threads\": {threads},\n  \"events_per_sec\": {reference:.0},\n  \"rows\": [\n{}\n  ]\n}}\n",
        scaling::CONFIG_SWEEP,
        row_json.join(",\n")
    );
    (json, rows, reference)
}

/// Measures engine events/sec across the scaling sweep and writes the
/// v6 JSON baseline.
fn bench_engine(out: Option<&str>) {
    let (json, ..) = measure_engine();
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(path, &json).expect("write baseline");
        eprintln!("wrote {path}");
    }
}

/// Measures the open-loop latency grid and writes the
/// `amacl-bench-latency/v1` JSON baseline.
fn bench_latency(out: Option<&str>) {
    let (json, _) = measure_latency(DEFAULT_GRID);
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(path, &json).expect("write latency baseline");
        eprintln!("wrote {path}");
    }
}

/// The CI regression gate: remeasure, report, and exit nonzero when
/// throughput collapsed relative to the committed baseline.
/// v6/v5/v4/v3/v2 baselines gate every `(queue core, n, shards,
/// threads)` row (v5+ rows additionally pin `payload_clones` exactly);
/// v1 baselines gate the single reference figure. When the committed
/// latency baseline exists, its rows are gated in the same pass
/// (exact virtual-tick quantiles, tolerance-bounded throughput).
fn bench_gate(baseline_path: &str, latency_path: &str, tolerance: f64, out: Option<&str>) {
    let baseline_json = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let (fresh_json, fresh_rows, fresh_reference) = measure_engine();
    print!("{fresh_json}");
    if let Some(path) = out {
        std::fs::write(path, &fresh_json).expect("write fresh measurement");
        eprintln!("wrote {path}");
    }
    let verdict = if parse_rows(&baseline_json).is_empty() {
        // v1 baseline: one reference figure.
        gate(&baseline_json, fresh_reference, tolerance).map(|report| {
            vec![format!(
                "reference: {:.0} events/sec vs baseline {:.0} ({:.2}x, tolerance {tolerance}x)",
                report.fresh,
                report.baseline,
                report.ratio()
            )]
        })
    } else {
        gate_rows(&baseline_json, &fresh_rows, tolerance)
    };
    // The latency baseline rides alongside: gate it whenever the
    // committed file is present (it is optional so older checkouts and
    // engine-only invocations keep working).
    let latency_verdict = match std::fs::read_to_string(latency_path) {
        Err(_) => {
            eprintln!("bench gate: no latency baseline at {latency_path}; skipping latency gate");
            Ok(Vec::new())
        }
        Ok(latency_json) => {
            let (_, fresh_latency) = measure_latency(DEFAULT_GRID);
            gate_latency_rows(&latency_json, &fresh_latency, tolerance)
        }
    };
    match verdict.and_then(|mut lines| {
        latency_verdict.map(|latency_lines| {
            lines.extend(latency_lines);
            lines
        })
    }) {
        Ok(lines) => {
            println!("bench gate OK:");
            for line in lines {
                println!("  {line}");
            }
            // Context for log readers chasing a near-miss: the
            // baseline's own serial wall time, if present.
            if let Some(wall) = json_number(&baseline_json, "serial_wall_s") {
                println!("baseline first serial wall: {wall:.4}s");
            }
        }
        Err(msg) => {
            eprintln!("bench gate FAILED: {msg}");
            std::process::exit(1);
        }
    }
}

fn print_e1() {
    header(
        "E1",
        "two-phase single-hop consensus is O(F_ack), independent of n (Thm 4.1)",
    );
    println!(
        "{:>6} {:>7} {:>8} {:>10}",
        "n", "F_ack", "ticks", "ticks/F_ack"
    );
    for row in e1::series(&[2, 4, 8, 16, 32, 64, 128], &[1, 4, 16]) {
        println!(
            "{:>6} {:>7} {:>8} {:>10.2}",
            row.n, row.f_ack, row.ticks, row.ratio
        );
    }
    println!("shape: ratio constant (=2 under the max-delay adversary), flat in n");
}

fn print_e2() {
    header("E2", "wPAXOS multihop consensus is O(D * F_ack) (Thm 4.6)");
    for f_ack in [1u64, 4] {
        println!(
            "{:>18} {:>5} {:>4} {:>6} {:>8} {:>14}",
            "topology", "n", "D", "F_ack", "ticks", "ticks/(D*F_ack)"
        );
        for row in e2::series(f_ack) {
            println!(
                "{:>18} {:>5} {:>4} {:>6} {:>8} {:>14.1}",
                row.name, row.n, row.d, row.f_ack, row.ticks, row.ratio
            );
        }
        println!();
    }
    println!("shape: ticks grow linearly in D at fixed F_ack; ratio bounded by a constant");
}

fn print_e3() {
    header(
        "E3",
        "response aggregation: O(D*F_ack) vs Theta(n*F_ack) flooding bottleneck (Sec 4.2)",
    );
    println!(
        "{:>5} {:>13} {:>10} {:>13} {:>12} {:>10} {:>13}",
        "n",
        "wPAXOS ticks",
        "hub bcasts",
        "scoped ticks",
        "flood ticks",
        "hub bcasts",
        "gather ticks"
    );
    for row in e3::series(&[8, 16, 32, 48], 4) {
        println!(
            "{:>5} {:>13} {:>10} {:>13} {:>12} {:>10} {:>13}",
            row.n,
            row.wpaxos_ticks,
            row.wpaxos_hub,
            row.scoped_ticks,
            row.flood_ticks,
            row.flood_hub,
            row.gather_ticks
        );
    }
    println!("shape: star has D=2; flooding's hub broadcasts and time grow ~linearly in n");
    println!("(the Omega(n) id-pair bottleneck). Paper-literal wPAXOS keeps a smaller");
    println!("n-term from change-service churn; the leader-scoped trigger (E8 finding)");
    println!("removes it, giving the claimed O(D*F_ack) flat-in-n behavior");
}

fn print_e4() {
    header("E4", "no decision before floor(D/2)*F_ack (Thm 3.10)");
    println!(
        "{:>4} {:>6} {:>7} {:>16} {:>16}",
        "D", "F_ack", "bound", "wPAXOS earliest", "gather earliest"
    );
    for row in e4::series(3) {
        println!(
            "{:>4} {:>6} {:>7} {:>16} {:>16}",
            row.d, row.f_ack, row.bound, row.wpaxos_earliest, row.gather_earliest
        );
    }
    let (agreement, earliest) = e4::violation(12, 3, 2);
    println!(
        "eager decider (2 rounds, D=12): decided at {earliest} < bound 18; agreement = {agreement}"
    );
    println!("shape: correct algorithms always clear the bound; deciding early gets partitioned");
}

fn print_e5() {
    header("E5", "anonymous consensus is impossible (Thm 3.3, Fig 1)");
    println!(
        "{:>4} {:>6} {:>4} {:>8} {:>12} {:>12} {:>12}",
        "D", "n'", "t", "compared", "Lemma 3.6", "B decided", "A agreement"
    );
    for out in e5::series() {
        println!(
            "{:>4} {:>6} {:>4} {:>8} {:>12} {:>6?}/{:>4?} {:>12}",
            out.diameter,
            out.n_prime,
            out.t,
            out.states_compared,
            out.indistinguishable,
            out.alpha_b[0].decided.unwrap(),
            out.alpha_b[1].decided.unwrap(),
            out.alpha_a.agreement
        );
    }
    println!("shape: S_u states identical for t steps; Network A splits 0-vs-1: agreement false");
}

fn print_e6() {
    header(
        "E6",
        "knowledge of n is required in multihop networks (Thm 3.9, Fig 2)",
    );
    println!(
        "{:>4} {:>5} {:>5} {:>9} {:>14} {:>10} {:>10}",
        "D", "n", "t", "compared", "line-identical", "copy1", "copy2"
    );
    for out in e6::series() {
        println!(
            "{:>4} {:>5} {:>5} {:>9} {:>14} {:>10?} {:>10?}",
            out.diameter,
            out.n,
            out.t,
            out.states_compared,
            out.indistinguishable,
            out.copy_decisions[0].unwrap(),
            out.copy_decisions[1].unwrap()
        );
    }
    println!("shape: each K_D copy mirrors a standalone line and decides its own input: split");
}

fn print_e7() {
    header(
        "E7",
        "consensus is impossible with one crash (Thm 3.2 / FLP)",
    );
    let s = e7::run();
    println!(
        "  mixed (0,1) config valency with 1 crash: {:?}",
        s.mixed_valency
    );
    println!("  explorer states visited: {}", s.states_visited);
    println!(
        "  critical configuration (Lemma 3.1 contrapositive) at node: {:?}",
        s.critical_node
    );
    println!(
        "  stuck schedule exists (live node stranded): {}",
        s.stuck_schedule_exists
    );
    println!(
        "  concrete crash demo: termination={} (crash), ok={} (no crash)",
        s.crash_demo.with_crash.termination,
        s.crash_demo.without_crash.ok()
    );
    println!("shape: bivalent + critical + stuck = the impossibility, machine-checked");
}

fn print_e8() {
    header("E8", "ablations: what each wPAXOS design choice buys");
    for (name, topo) in [
        ("star(32)", Topology::star(32)),
        ("grid(6x4)", Topology::grid(6, 4)),
    ] {
        println!("  topology: {name}");
        println!(
            "  {:<20} {:>8} {:>12} {:>14} {:>10}",
            "config", "ticks", "broadcasts", "max node bcast", "proposals"
        );
        for row in e8::series(&topo, 2) {
            println!(
                "  {:<20} {:>8} {:>12} {:>14} {:>10}",
                row.config, row.ticks, row.broadcasts, row.max_node_broadcasts, row.proposals
            );
        }
        println!();
    }
    println!("shape: flooded responses blow up the bottleneck node's broadcasts;");
    println!("aggregation keeps per-node work flat");
}

fn print_e9() {
    header(
        "E9",
        "same code, real threads: simulator vs threaded MAC runtime",
    );
    println!(
        "  {:<22} {:>12} {:>12} {:>14} {:>12}",
        "scenario", "sim agreed", "rt agreed", "rt latency", "rt bcasts"
    );
    for row in e9::series(11) {
        println!(
            "  {:<22} {:>12} {:>12} {:>14?} {:>12}",
            row.name, row.sim_agreed, row.rt_agreed, row.rt_latency, row.rt_broadcasts
        );
    }
    println!("shape: both substrates satisfy consensus with the identical Process impls");
}

fn print_e10() {
    header(
        "E10",
        "extensions: randomization beats the crash bound; unreliable links stay safe",
    );
    let s = e10::run(25);
    println!(
        "  Ben-Or, 1 mid-broadcast crash, {} seeds: all consensus-clean = {}",
        s.ben_or_crash_runs.0, s.ben_or_crash_runs.1
    );
    println!("  worst rounds to global decision: {}", s.ben_or_max_rounds);
    println!(
        "  wPAXOS over a ring + unreliable chords (p=0.5): all runs safe = {}",
        s.unreliable_safe
    );
    println!("shape: randomized termination whp under the crash that kills deterministic algos");
}

fn print_e11() {
    header(
        "E11",
        "the F_prog refinement: deliveries fast, acks slow (Sec 2 future work)",
    );
    let d = 16;
    let f_ack = 32;
    println!(
        "{:>8} {:>7} {:>4} {:>12} {:>18}",
        "F_prog", "F_ack", "D", "wave ticks", "two-phase ticks"
    );
    for row in e11::series(d, f_ack, &[1, 2, 4, 8, 16, 32], 5) {
        println!(
            "{:>8} {:>7} {:>4} {:>12} {:>18}",
            row.f_prog, row.f_ack, row.d, row.wave_ticks, row.two_phase_ticks
        );
    }
    println!("shape: the relay wave scales with D*F_prog while consensus stays pinned");
    println!("near 2*F_ack — the gap that makes the F_prog upper-bound refinement a");
    println!("real open problem rather than bookkeeping");
}

fn print_e12() {
    header(
        "E12",
        "majority progress: Paxos vs gather-all under one laggard (Sec 1)",
    );
    println!(
        "{:>5} {:>16} {:>13} {:>18}",
        "n", "laggard release", "wPAXOS ticks", "tree-gather ticks"
    );
    for row in e12::series(9, &[50, 200, 800]) {
        println!(
            "{:>5} {:>16} {:>13} {:>18}",
            row.n, row.laggard_release, row.wpaxos_ticks, row.gather_ticks
        );
    }
    println!("shape: wPAXOS (majority quorum) decides without the laggard, independent");
    println!("of the release time; tree-gather (needs all n inputs) stalls until release");
}

fn print_e13() {
    header(
        "E13",
        "multi-valued consensus: bitwise composition vs direct Paxos (Sec 2 open question)",
    );
    println!(
        "{:>6} {:>4} {:>6} {:>14} {:>18} {:>13}",
        "bits", "n", "F_ack", "bitwise ticks", "ticks/(B*F_ack)", "wPAXOS ticks"
    );
    for row in e13::series(8, &[1, 2, 4, 8, 16, 32, 64], 4) {
        println!(
            "{:>6} {:>4} {:>6} {:>14} {:>18.2} {:>13}",
            row.bits, row.n, row.f_ack, row.bitwise_ticks, row.per_bit_ratio, row.wpaxos_ticks
        );
    }
    println!("shape: bitwise grows linearly in B (per-bit ratio constant at 2) and needs");
    println!("no knowledge of n; wPAXOS stays flat in B but requires n — the tradeoff");
    println!("behind the paper's 'non-trivial and open' remark");
}

fn print_e14() {
    header(
        "E14",
        "failure detector + Paxos: deterministic consensus despite crashes (Sec 5)",
    );
    println!(
        "{:>4} {:>8} {:>7} {:>8} {:>12} {:>14} {:>18}",
        "n", "crashes", "seeds", "all ok", "worst ticks", "worst ballots", "false suspicions"
    );
    for row in e14::series(7, &[0, 1, 2, 3], 20) {
        println!(
            "{:>4} {:>8} {:>7} {:>8} {:>12} {:>14} {:>18}",
            row.n,
            row.crashes,
            row.seeds,
            row.all_ok,
            row.worst_ticks,
            row.worst_ballots,
            row.worst_false_suspicions
        );
    }
    println!("shape: with the ◇P detector (implementable here thanks to F_ack, unlike in");
    println!("plain asynchrony), every minority-crash run satisfies consensus — the");
    println!("deterministic escape from Theorem 3.2 the paper points to");
}

fn print_e15() {
    header(
        "E15",
        "exhaustive model checking: every schedule, every property (small instances)",
    );
    println!(
        "{:>40} {:>6} {:>9} {:>10} {:>6} {:>9} {:>22}",
        "instance", "crash", "states", "terminals", "depth", "verified", "violation(len)"
    );
    for row in e15::series() {
        let viol = match (row.violation, row.schedule_len) {
            (Some(k), Some(l)) => format!("{k:?}({l})"),
            _ => "-".to_string(),
        };
        println!(
            "{:>40} {:>6} {:>9} {:>10} {:>6} {:>9} {:>22}",
            row.name, row.crash_budget, row.states, row.terminals, row.depth, row.verified, viol
        );
    }
    println!("shape: crash-free instances verify over the full scheduler space (a");
    println!("machine-checked Theorem 4.1 for small n); one crash or the literal-R2");
    println!("pseudocode yields a concrete violating schedule (Theorem 3.2 / the");
    println!("Algorithm 1 discrepancy)");
}
