//! Byte-identity fixtures for the memory-lean engine layout.
//!
//! The hashes below were recorded from the pre-arena engine (the tree
//! as of `BENCH_engine.json` v4) over a deterministic family of random
//! workload descriptors. Every run folds the rendered trace, the run
//! report (outcome, decisions, deterministic metrics), and the
//! decision-latency histogram into one FNV-1a digest; the tests demand
//! that the arena-backed engine reproduces those digests bit for bit
//! across both queue cores × shards {1, 2, 3, 7} × threads {1, 4}.
//!
//! Rerecording (only legitimate when a PR *intends* an observable
//! behavior change): `AMACL_CAPTURE_FIXTURES=1 cargo test -p
//! amacl-bench --test identity_fixtures -- --nocapture` prints the
//! replacement table.

use amacl_core::wpaxos::{WpaxosConfig, WpaxosNode};
use amacl_model::prelude::*;
use amacl_model::sim::trace::TraceEvent;

/// One deterministic workload descriptor, expanded from the LCG in
/// [`descriptors`].
#[derive(Clone, Copy, Debug)]
struct Descriptor {
    n: usize,
    topo_seed: u64,
    edge_p: f64,
    f_ack: u64,
    sched_seed: u64,
    engine_seed: u64,
    /// Crash one node at this virtual time (0 = no crash).
    crash_at: u64,
}

/// Splitmix64 — the deterministic descriptor generator (no
/// `rand`, so the fixture family can never drift with a shim change).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn descriptors() -> Vec<Descriptor> {
    let mut s = 0xA11C_E5ED_u64;
    (0..6)
        .map(|_| {
            let r = splitmix(&mut s);
            Descriptor {
                // 8..=23 nodes: enough for 7 shards to be meaningful,
                // small enough that 96 runs stay fast.
                n: 8 + (r % 16) as usize,
                topo_seed: splitmix(&mut s),
                edge_p: 0.25 + (splitmix(&mut s) % 50) as f64 / 100.0,
                f_ack: 3 + (splitmix(&mut s) % 6),
                sched_seed: splitmix(&mut s),
                engine_seed: splitmix(&mut s),
                crash_at: splitmix(&mut s) % 3 * 7,
            }
        })
        .collect()
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Runs one descriptor at `(core, shards, threads)` and digests
/// everything the byte-identity contract covers: the rendered trace,
/// the report, and the decision-latency histogram. Shard/thread
/// bookkeeping counters (cross-shard deliveries, window advances,
/// mailbox flushes, bucket overflows) legitimately vary per
/// configuration and are excluded — exactly like the engine's own
/// identity tests.
fn run_digest(d: Descriptor, core: QueueCoreKind, shards: usize, threads: usize) -> u64 {
    let topo = Topology::random_connected(d.n, d.edge_p, d.topo_seed);
    let cfg = WpaxosConfig::new(d.n);
    let inputs: Vec<Value> = (0..d.n).map(|i| (i % 2) as Value).collect();
    let plan = if d.crash_at > 0 {
        CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(d.n / 2),
            time: Time(d.crash_at),
        }])
    } else {
        CrashPlan::none()
    };
    let mut sim = SimBuilder::new(topo, |s| WpaxosNode::new(inputs[s.index()], cfg))
        .scheduler(RandomScheduler::new(d.f_ack, d.sched_seed))
        .queue_core(core)
        .shards(shards)
        .threads(threads)
        .seed(d.engine_seed)
        .crashes(plan)
        .message_id_budget(10)
        .trace(true)
        .build();
    let report = sim.run();

    let mut h = FNV_OFFSET;
    for ev in sim.trace().events() {
        fnv(&mut h, format!("{ev:?}").as_bytes());
    }
    fnv(&mut h, format!("{:?}", report.outcome).as_bytes());
    fnv(&mut h, format!("{:?}", report.end_time).as_bytes());
    fnv(&mut h, format!("{:?}", report.decisions).as_bytes());
    let m = &report.metrics;
    fnv(
        &mut h,
        format!(
            "{} {} {} {} {} {} {} {} {} {} {} {:?}",
            m.broadcasts,
            m.busy_discards,
            m.deliveries,
            m.unreliable_deliveries,
            m.acks,
            m.crashes,
            m.events,
            m.queue_pushes,
            m.queue_cancellations,
            m.max_message_ids,
            m.total_message_ids,
            m.per_slot_broadcasts,
        )
        .as_bytes(),
    );
    // Decision-latency histogram: decide-time tick counts in time
    // order (the quantile surface `amacl-bench-latency` gates on is a
    // function of exactly this).
    let mut histo: Vec<u64> = sim
        .trace()
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Decide { time, .. } => Some(time.ticks()),
            _ => None,
        })
        .collect();
    histo.sort_unstable();
    fnv(&mut h, format!("{histo:?}").as_bytes());
    h
}

/// Golden digests, one per descriptor, recorded from the pre-arena
/// engine. Every `(core, shards, threads)` combination must reproduce
/// its descriptor's digest exactly.
const FIXTURES: &[u64] = &[
    0x56C2B347F3E1F5AE,
    0x1C1AD92C8AD7241A,
    0xCF860B480FFA4811,
    0x12F6BADC46A990E8,
    0xDE9A2B3C7BFA23DE,
    0xFD34EA55ADC7C306,
];

const SHARD_GRID: &[usize] = &[1, 2, 3, 7];
const THREAD_GRID: &[usize] = &[1, 4];

#[test]
fn arena_engine_matches_prearena_fixtures() {
    let capture = std::env::var("AMACL_CAPTURE_FIXTURES").is_ok();
    let descs = descriptors();
    let mut recorded = Vec::new();
    for (i, &d) in descs.iter().enumerate() {
        let reference = run_digest(d, QueueCoreKind::Heap, 1, 1);
        recorded.push(reference);
        if !capture {
            assert_eq!(
                reference, FIXTURES[i],
                "descriptor {i} ({d:?}) diverged from the recorded pre-arena digest"
            );
        }
        for core in QueueCoreKind::all() {
            for &s in SHARD_GRID {
                for &t in THREAD_GRID {
                    let got = run_digest(d, core, s, t);
                    assert_eq!(
                        got, reference,
                        "descriptor {i} ({d:?}) diverged at core={core} shards={s} threads={t}"
                    );
                }
            }
        }
    }
    if capture {
        println!("const FIXTURES: &[u64] = &[");
        for h in &recorded {
            println!("    0x{h:016X},");
        }
        println!("];");
        panic!("capture mode: fixtures printed above, not asserted");
    }
    assert_eq!(descs.len(), FIXTURES.len());
}
