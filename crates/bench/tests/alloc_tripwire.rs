//! Allocation-count regression tripwire for the engine hot path.
//!
//! This integration-test binary installs a counting `#[global_allocator]`
//! wrapper around the system allocator (integration tests are separate
//! binaries, so the wrapper never leaks into other test executables or
//! shipped code) and measures allocator calls per engine event on the
//! n = 512 reference workload. It is a **tripwire, not a benchmark**:
//! wall-clock never participates, only deterministic allocator-call
//! counts, so the assertion is stable on any machine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use amacl_bench::scaling;
use amacl_model::prelude::*;

/// Counts every allocation and reallocation routed through the global
/// allocator. Deallocations are not counted: the tripwire watches
/// allocator *pressure* on the hot path, and frees mirror allocs.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Allocator calls per event ×1000 (fixed-point so the recorded
/// ceiling is an integer) for one serial n = 512 reference run.
fn milli_allocs_per_event(core: QueueCoreKind) -> (u64, u64) {
    // Warm-up run: page in code paths and let the allocator settle so
    // the measured run reflects steady state, like the bench sweep.
    let _ = scaling::workload(core, 512, 0);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let events = scaling::workload(core, 512, 0);
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert!(events > 1_000_000, "n=512 run is implausibly small");
    ((after - before) * 1000 / events, events)
}

/// Allocator calls per event ×1000 measured on the pre-arena engine
/// (deep-cloned payload custody, array-of-structs queue entries,
/// `Vec<TraceEvent>` trace), recorded so the assertion below states
/// the memory-lean layout's win as a hard floor rather than a
/// benchmark anecdote.
const PRE_ARENA_MILLI_ALLOCS: &[(QueueCoreKind, u64)] =
    &[(QueueCoreKind::Heap, 829), (QueueCoreKind::Calendar, 835)];

/// The arena + structure-of-arrays + trace-ring layout must hold at
/// least a 2x reduction in allocator calls per event against the
/// recorded pre-arena ceiling. (Measured ~6x at the time of the
/// change — 134/140 milli-allocs per event — so this trips on a real
/// regression, not on noise; the counts are deterministic.)
#[test]
fn allocations_per_event_stay_at_least_2x_below_prearena_ceiling() {
    for &(core, ceiling) in PRE_ARENA_MILLI_ALLOCS {
        let (milli, events) = milli_allocs_per_event(core);
        eprintln!(
            "{core}: {milli} milli-allocs/event over {events} events ({:.3} allocs/event, \
             pre-arena ceiling {ceiling})",
            milli as f64 / 1000.0
        );
        assert!(
            milli <= ceiling / 2,
            "{core} core: {milli} milli-allocs/event exceeds half the pre-arena ceiling \
             ({ceiling} / 2 = {}): the hot path regressed into per-event allocations",
            ceiling / 2
        );
    }
}
