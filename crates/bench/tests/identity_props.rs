//! Property tests for the byte-identity theorem under the memory-lean
//! engine layout (payload arena + structure-of-arrays queues + binary
//! trace ring).
//!
//! The fixed-descriptor goldens live in `identity_fixtures.rs` and pin
//! today's engine to the digests recorded from the pre-arena tree.
//! These properties extend the same digest comparison to *randomized*
//! workload descriptors: for any descriptor the shim's deterministic
//! sampler draws, every `(queue core, shards, threads)` configuration
//! across heap/calendar × shards {1, 2, 3, 7} × T = 4 must reproduce
//! the serial heap reference digest bit for bit. A payload-custody bug
//! that happens to dodge the six recorded descriptors (a cancellation
//! race at one topology, a refcount slip at one crash time) has to
//! dodge every sampled one too.
//!
//! The second property extends the grid along the persistent pool's
//! superstep dimension: window batch K ∈ {1, 2, 8, auto} (with pool
//! workers forced on, so the pool protocol actually runs on
//! single-core CI machines) must be pure wake-policy — the digest
//! never moves.

use amacl_core::wpaxos::{WpaxosConfig, WpaxosNode};
use amacl_model::prelude::*;
use proptest::prelude::*;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Runs one sampled workload at `(core, shards, threads)` and digests
/// the identity surface: rendered trace, outcome, decisions, and the
/// deterministic metrics (shard bookkeeping and arena counters vary
/// legitimately per configuration and stay out, exactly as in the
/// recorded fixtures).
#[allow(clippy::too_many_arguments)]
fn run_digest(
    n: usize,
    topo_seed: u64,
    edge_p: f64,
    f_ack: u64,
    sched_seed: u64,
    engine_seed: u64,
    crash_at: u64,
    core: QueueCoreKind,
    shards: usize,
    threads: usize,
    batch: Option<WindowBatch>,
) -> u64 {
    let topo = Topology::random_connected(n, edge_p, topo_seed);
    let cfg = WpaxosConfig::new(n);
    let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
    let plan = if crash_at > 0 {
        CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(n / 2),
            time: Time(crash_at),
        }])
    } else {
        CrashPlan::none()
    };
    let mut builder = SimBuilder::new(topo, |s| WpaxosNode::new(inputs[s.index()], cfg))
        .scheduler(RandomScheduler::new(f_ack, sched_seed))
        .queue_core(core)
        .shards(shards)
        .threads(threads)
        .seed(engine_seed)
        .crashes(plan)
        .message_id_budget(10)
        .trace(true);
    if let Some(batch) = batch {
        // Force real parked pool workers so the superstep protocol
        // runs even on single-core CI machines.
        builder = builder.window_batch(batch).debug_force_pool_workers(2);
    }
    let mut sim = builder.build();
    let report = sim.run();

    let mut h = FNV_OFFSET;
    for ev in sim.trace().events() {
        fnv(&mut h, format!("{ev:?}").as_bytes());
    }
    fnv(&mut h, format!("{:?}", report.outcome).as_bytes());
    fnv(&mut h, format!("{:?}", report.end_time).as_bytes());
    fnv(&mut h, format!("{:?}", report.decisions).as_bytes());
    let m = &report.metrics;
    fnv(
        &mut h,
        format!(
            "{} {} {} {} {} {} {} {} {} {} {} {:?}",
            m.broadcasts,
            m.busy_discards,
            m.deliveries,
            m.unreliable_deliveries,
            m.acks,
            m.crashes,
            m.events,
            m.queue_pushes,
            m.queue_cancellations,
            m.max_message_ids,
            m.total_message_ids,
            m.per_slot_broadcasts,
        )
        .as_bytes(),
    );
    h
}

proptest! {
    // Each case runs 1 + 2 x 4 x 2 = 17 engine executions on an
    // 8..=20-node network; 10 cases keep the binary in libtest-second
    // territory while still sampling well past the six goldens.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random descriptor, full grid: every configuration reproduces
    /// the serial heap digest bit for bit.
    #[test]
    fn random_workloads_are_byte_identical_across_the_grid(
        n in 8usize..=20,
        topo_seed in any::<u64>(),
        edge_centi_p in 25u64..=75,
        f_ack in 3u64..=8,
        sched_seed in any::<u64>(),
        engine_seed in any::<u64>(),
        crash_at in 0u64..=14,
    ) {
        let edge_p = edge_centi_p as f64 / 100.0;
        let reference = run_digest(
            n, topo_seed, edge_p, f_ack, sched_seed, engine_seed, crash_at,
            QueueCoreKind::Heap, 1, 1, None,
        );
        for core in QueueCoreKind::all() {
            for &shards in &[1usize, 2, 3, 7] {
                for &threads in &[1usize, 4] {
                    let got = run_digest(
                        n, topo_seed, edge_p, f_ack, sched_seed, engine_seed, crash_at,
                        core, shards, threads, None,
                    );
                    prop_assert_eq!(
                        got, reference,
                        "n={} topo_seed={} crash_at={} diverged at core={} shards={} threads={}",
                        n, topo_seed, crash_at, core, shards, threads
                    );
                }
            }
        }
    }
}

proptest! {
    // Each case runs 1 + 2 x 4 x 4 = 33 engine executions, but on
    // small networks; 6 cases keep the binary fast while sweeping the
    // whole batch dimension with the pool protocol forced on.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random descriptor × batch K ∈ {1, 2, 8, auto} × shards
    /// {1, 2, 3, 7} × both cores, pool workers forced: the superstep
    /// batch size is pure wake-policy and the digest never moves from
    /// the serial heap reference.
    #[test]
    fn window_batch_sizes_are_byte_identical_across_the_grid(
        n in 8usize..=16,
        topo_seed in any::<u64>(),
        edge_centi_p in 25u64..=75,
        f_ack in 3u64..=8,
        sched_seed in any::<u64>(),
        engine_seed in any::<u64>(),
        crash_at in 0u64..=14,
    ) {
        let edge_p = edge_centi_p as f64 / 100.0;
        let reference = run_digest(
            n, topo_seed, edge_p, f_ack, sched_seed, engine_seed, crash_at,
            QueueCoreKind::Heap, 1, 1, None,
        );
        let batches = [
            WindowBatch::Fixed(1),
            WindowBatch::Fixed(2),
            WindowBatch::Fixed(8),
            WindowBatch::Auto,
        ];
        for core in QueueCoreKind::all() {
            for &shards in &[1usize, 2, 3, 7] {
                for batch in batches {
                    let got = run_digest(
                        n, topo_seed, edge_p, f_ack, sched_seed, engine_seed, crash_at,
                        core, shards, 4, Some(batch),
                    );
                    prop_assert_eq!(
                        got, reference,
                        "n={} topo_seed={} crash_at={} diverged at core={} shards={} batch={:?}",
                        n, topo_seed, crash_at, core, shards, batch
                    );
                }
            }
        }
    }
}
