//! E7: throughput of the exhaustive valid-step explorer (Theorem 3.2
//! machinery): how fast the bivalence census of the two- and three-node
//! configuration spaces runs.

use amacl_core::two_phase::TwoPhase;
use amacl_lowerbounds::bivalence::Explorer;
use amacl_lowerbounds::step::StepMachine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_bivalence_explorer");
    group.sample_size(10);
    group.bench_function("two_nodes_one_crash", |b| {
        b.iter(|| {
            let machine = StepMachine::new(vec![TwoPhase::new(0), TwoPhase::new(1)]);
            let mut ex = Explorer::new(1, 120);
            black_box(ex.explore(&machine))
        });
    });
    group.bench_function("three_nodes_one_crash", |b| {
        b.iter(|| {
            let machine =
                StepMachine::new(vec![TwoPhase::new(0), TwoPhase::new(1), TwoPhase::new(1)]);
            let mut ex = Explorer::new(1, 200);
            black_box(ex.explore(&machine))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
