//! E1: Two-Phase Consensus on cliques — decision time is `O(F_ack)`,
//! independent of `n` (Theorem 4.1). The Criterion measurement times
//! full simulated executions; the virtual-time series itself comes from
//! the `tables` binary.

use amacl_bench::experiments::e1;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_two_phase_clique");
    group.sample_size(20);
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(e1::one(n, 8, seed))
            });
        });
    }
    for f_ack in [1u64, 8, 64] {
        group.bench_with_input(BenchmarkId::new("f_ack", f_ack), &f_ack, |b, &f| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(e1::one(16, f, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
