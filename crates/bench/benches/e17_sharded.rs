//! E17: the sharded conservative-window engine vs. serial — the same
//! reference wPAXOS workload at a fixed size, swept over shard counts
//! on both queue cores.
//!
//! The execution is byte-identical at every shard count (the
//! conformance suite proves it), so this measures pure coordination
//! cost: the `(time, class, seq)` merge across shard heads, the
//! window bookkeeping, and the mailbox flushes. The shape to expect
//! on today's single-threaded coordinator: serial is fastest and the
//! overhead grows with the cross-shard traffic share; wider-lookahead
//! schedulers amortize more events per window. The committed numbers
//! live in `BENCH_engine.json` (regenerate with
//! `tables bench-engine`); this bench exists for interactive
//! profiling of the sharding seam itself.

use amacl_bench::parallel::{default_threads, run_seeds};
use amacl_bench::scaling;
use amacl_model::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sweep(core: QueueCoreKind, n: usize, shards: usize, seeds: &[u64]) -> u64 {
    let results = run_seeds(seeds, default_threads(), |seed| {
        scaling::workload_sharded(core, n, shards, seed)
    });
    results.iter().map(|r| r.result.events).sum()
}

fn bench_e17(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_sharded");
    group.sample_size(10);
    let seeds: Vec<u64> = (0..4).collect();
    for core in QueueCoreKind::all() {
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{core}-n128", core = core.name()), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| black_box(sweep(core, 128, shards, &seeds)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e17);
criterion_main!(benches);
