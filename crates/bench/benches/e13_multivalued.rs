//! E13: multi-valued consensus — bitwise composition of Algorithm 1
//! costs `Theta(B)` sequential binary rounds for `B`-bit values, while
//! value-agnostic wPAXOS pays one round regardless of width (the
//! concrete content of the paper's Section 2 open question).

use amacl_bench::experiments::{e13, wpaxos_run_for_bench};
use amacl_core::wpaxos::WpaxosConfig;
use amacl_model::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e13(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_multivalued");
    group.sample_size(20);
    for bits in [1u32, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("bitwise_bits", bits), &bits, |b, &bits| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(e13::one(8, bits, 4, seed))
            });
        });
    }
    // The direct comparison: wPAXOS on the same clique carries a full
    // u64 in a single agreement.
    group.bench_function("wpaxos_clique8_u64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(wpaxos_run_for_bench(
                Topology::clique(8),
                WpaxosConfig::new(8),
                4,
                seed,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e13);
criterion_main!(benches);
