//! E15: exhaustive model checking throughput — how fast the explorer
//! covers the full scheduler space of small instances, and the cost of
//! adding a crash budget to the explored adversary.

use amacl_checker::{ExploreConfig, Explorer};
use amacl_core::two_phase::TwoPhase;
use amacl_model::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn explore(n: usize, crash_budget: usize) -> usize {
    let inputs: Vec<Value> = (0..n).map(|i| (i % 2) as Value).collect();
    let procs: Vec<TwoPhase> = inputs.iter().map(|&v| TwoPhase::new(v)).collect();
    let out = Explorer::new(Topology::clique(n), procs, inputs, crash_budget).run(ExploreConfig {
        max_violations: usize::MAX,
        ..ExploreConfig::default()
    });
    black_box(out.states)
}

fn bench_e15(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_exhaustive_checking");
    group.sample_size(10);
    for n in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("two_phase_clique", n), &n, |b, &n| {
            b.iter(|| explore(n, 0));
        });
    }
    group.bench_function("two_phase_clique2_crash1", |b| {
        b.iter(|| explore(2, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_e15);
criterion_main!(benches);
