//! E8: wPAXOS ablations — aggregation, leader-priority queueing, tree
//! routing — end-to-end execution cost per configuration.

use amacl_bench::experiments::wpaxos_run_for_bench;
use amacl_core::wpaxos::WpaxosConfig;
use amacl_model::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_e8(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_ablations_star24");
    group.sample_size(10);
    let n = 24;
    let configs: [(&str, WpaxosConfig); 4] = [
        ("full", WpaxosConfig::new(n)),
        ("no_aggregation", WpaxosConfig::new(n).without_aggregation()),
        (
            "no_leader_priority",
            WpaxosConfig::new(n).without_leader_priority(),
        ),
        ("flooded", WpaxosConfig::new(n).flooded_responses()),
    ];
    for (name, cfg) in configs {
        group.bench_function(name, |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(wpaxos_run_for_bench(Topology::star(n), cfg, 4, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
