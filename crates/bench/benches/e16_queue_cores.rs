//! E16: engine scaling by queue core — the heap vs. calendar cores on
//! the reference wPAXOS workload at n ∈ {32, 128, 512}, with seeds
//! fanned out over the parallel multi-seed driver.
//!
//! The shape this measures: at small n the cores are comparable; as n
//! grows (more live events per tick) the calendar core's O(1) bucket
//! operations pull ahead of the heap's O(log n) sift. The committed
//! numbers live in `BENCH_engine.json` (regenerate with
//! `tables bench-engine`); this bench exists for interactive
//! profiling of the same sweep.

use amacl_bench::parallel::{default_threads, run_seeds};
use amacl_bench::scaling;
use amacl_model::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sweep(core: QueueCoreKind, n: usize, seeds: &[u64]) -> u64 {
    let results = run_seeds(seeds, default_threads(), |seed| {
        scaling::workload(core, n, seed)
    });
    results.iter().map(|r| r.result).sum()
}

fn bench_e16(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_queue_cores");
    group.sample_size(10);
    let seeds: Vec<u64> = (0..4).collect();
    for core in QueueCoreKind::all() {
        for n in [32usize, 128] {
            group.bench_with_input(BenchmarkId::new(core.name(), n), &n, |b, &n| {
                b.iter(|| black_box(sweep(core, n, &seeds)));
            });
        }
    }
    group.finish();

    // n = 512 runs seconds per sample; keep it in its own small group
    // so the sweep still covers the size where the cores diverge most.
    let mut large = c.benchmark_group("e16_queue_cores_large");
    large.sample_size(2);
    let seeds: Vec<u64> = vec![0];
    for core in QueueCoreKind::all() {
        large.bench_with_input(
            BenchmarkId::new(core.name(), 512usize),
            &512usize,
            |b, &n| {
                b.iter(|| black_box(sweep(core, n, &seeds)));
            },
        );
    }
    large.finish();
}

criterion_group!(benches, bench_e16);
criterion_main!(benches);
