//! E2: wPAXOS on multihop topologies — decision time is
//! `O(D * F_ack)` (Theorem 4.6).

use amacl_bench::experiments::e2;
use amacl_model::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_wpaxos");
    group.sample_size(10);
    for d in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("line_d", d), &d, |b, &d| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(e2::one(Topology::line(d + 1), 4, seed))
            });
        });
    }
    group.bench_function("grid_4x4", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(e2::one(Topology::grid(4, 4), 4, seed))
        });
    });
    group.bench_function("random_16", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(e2::one(Topology::random_connected(16, 0.2, 3), 4, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
