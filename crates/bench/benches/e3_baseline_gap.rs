//! E3: tree aggregation vs flooded responses on a star — the
//! `Theta(n * F_ack)` bottleneck gap (Section 4.2 introduction).

use amacl_bench::experiments::wpaxos_run_for_bench;
use amacl_core::wpaxos::WpaxosConfig;
use amacl_model::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_aggregation_gap");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("wpaxos_star", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(wpaxos_run_for_bench(
                    Topology::star(n),
                    WpaxosConfig::new(n),
                    4,
                    seed,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("flooded_star", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(wpaxos_run_for_bench(
                    Topology::star(n),
                    WpaxosConfig::new(n).flooded_responses(),
                    4,
                    seed,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
