//! `amacl` binary entry point: parse, execute, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match amacl_cli::run_cli(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
