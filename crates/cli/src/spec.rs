//! Plain-text specs (`family:params`) and argument parsing.

use amacl_checker::workload::ArrivalKind;
use amacl_model::prelude::*;

/// Which algorithm to run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AlgoSpec {
    /// Algorithm 1 (single-hop, binary, no knowledge of `n`).
    TwoPhase,
    /// wPAXOS (multihop, needs `n`).
    Wpaxos,
    /// The §4.2 "simpler alternative" on the same services.
    TreeGather,
    /// Flood-and-gather baseline.
    FloodGather,
    /// Bitwise multi-valued composition with the given width.
    Bitwise(u32),
    /// Randomized Ben-Or (binary, f = 1).
    BenOr,
    /// Failure-detector-guided Paxos with the given initial timeout.
    FdPaxos(u64),
}

impl AlgoSpec {
    /// Parses `two-phase`, `bitwise:16`, `fd-paxos:8`, ...
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, tail) = split_head(s);
        match head {
            "two-phase" => no_params(tail, s).map(|()| AlgoSpec::TwoPhase),
            "wpaxos" => no_params(tail, s).map(|()| AlgoSpec::Wpaxos),
            "tree-gather" => no_params(tail, s).map(|()| AlgoSpec::TreeGather),
            "flood-gather" => no_params(tail, s).map(|()| AlgoSpec::FloodGather),
            "bitwise" => Ok(AlgoSpec::Bitwise(one_param(tail, s)?)),
            "ben-or" => no_params(tail, s).map(|()| AlgoSpec::BenOr),
            "fd-paxos" => Ok(match tail {
                None => AlgoSpec::FdPaxos(4),
                Some(_) => AlgoSpec::FdPaxos(one_param(tail, s)?),
            }),
            _ => Err(format!("unknown algorithm `{s}`")),
        }
    }

    /// Short human label.
    pub fn name(&self) -> String {
        match self {
            AlgoSpec::TwoPhase => "two-phase".into(),
            AlgoSpec::Wpaxos => "wpaxos".into(),
            AlgoSpec::TreeGather => "tree-gather".into(),
            AlgoSpec::FloodGather => "flood-gather".into(),
            AlgoSpec::Bitwise(b) => format!("bitwise:{b}"),
            AlgoSpec::BenOr => "ben-or".into(),
            AlgoSpec::FdPaxos(t) => format!("fd-paxos:{t}"),
        }
    }
}

/// Which topology to build.
#[derive(Clone, PartialEq, Debug)]
pub struct TopoSpec {
    /// The original spec text (for reports).
    pub text: String,
    topo: Topology,
}

impl TopoSpec {
    /// Parses `clique:8`, `grid:4x3`, `random:12:0.2:7`, ...
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, tail) = split_head(s);
        let topo = match head {
            "clique" => Topology::clique(one_param(tail, s)?),
            "line" => Topology::line(one_param(tail, s)?),
            "ring" => Topology::ring(one_param(tail, s)?),
            "star" => Topology::star(one_param(tail, s)?),
            "grid" => {
                let (w, h) = wh_param(tail, s)?;
                Topology::grid(w, h)
            }
            "torus" => {
                let (w, h) = wh_param(tail, s)?;
                Topology::torus(w, h)
            }
            "hypercube" => Topology::hypercube(one_param(tail, s)?),
            "binary-tree" => Topology::binary_tree(one_param(tail, s)?),
            "barbell" => {
                let (k, bridge) = two_params(tail, s)?;
                Topology::barbell(k, bridge)
            }
            "star-of-lines" => {
                let (arms, len) = two_params(tail, s)?;
                Topology::star_of_lines(arms, len)
            }
            "caterpillar" => {
                let (spine, legs) = two_params(tail, s)?;
                Topology::caterpillar(spine, legs)
            }
            "lollipop" => {
                let (k, t) = two_params(tail, s)?;
                Topology::lollipop(k, t)
            }
            "random" => {
                let parts = params(tail, s, 3)?;
                let n: usize = num(&parts[0], s)?;
                let p: f64 = parts[1]
                    .parse()
                    .map_err(|_| format!("bad probability in `{s}`"))?;
                let seed: u64 = num(&parts[2], s)?;
                Topology::random_connected(n, p, seed)
            }
            "random-tree" => {
                let (n, seed) = two_params::<usize, u64>(tail, s)?;
                Topology::random_tree(n, seed)
            }
            _ => return Err(format!("unknown topology `{s}`")),
        };
        Ok(Self {
            text: s.to_string(),
            topo,
        })
    }

    /// The built topology.
    pub fn build(&self) -> Topology {
        self.topo.clone()
    }
}

/// Which scheduler adversary to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedSpec {
    /// Lockstep rounds of `F_ack` ticks.
    Sync(u64),
    /// Every broadcast takes the full `F_ack`.
    MaxDelay(u64),
    /// Seeded random delays.
    Random(u64, u64),
    /// Deliveries within `F_prog`, acks within `F_ack`.
    Dual(u64, u64, u64),
}

impl SchedSpec {
    /// Parses `sync:2`, `random:4:42`, `dual:2:8:7`, ...
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, tail) = split_head(s);
        match head {
            "sync" => Ok(SchedSpec::Sync(one_param(tail, s)?)),
            "max-delay" => Ok(SchedSpec::MaxDelay(one_param(tail, s)?)),
            "random" => {
                let (f, seed) = two_params(tail, s)?;
                Ok(SchedSpec::Random(f, seed))
            }
            "dual" => {
                let parts = params(tail, s, 3)?;
                Ok(SchedSpec::Dual(
                    num(&parts[0], s)?,
                    num(&parts[1], s)?,
                    num(&parts[2], s)?,
                ))
            }
            _ => Err(format!("unknown scheduler `{s}`")),
        }
    }

    /// The `F_ack` bound this spec honors.
    pub fn f_ack(&self) -> u64 {
        match *self {
            SchedSpec::Sync(f) | SchedSpec::MaxDelay(f) | SchedSpec::Random(f, _) => f,
            SchedSpec::Dual(_, f_ack, _) => f_ack,
        }
    }

    /// Builds the boxed scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedSpec::Sync(f) => Box::new(SynchronousScheduler::new(f)),
            SchedSpec::MaxDelay(f) => Box::new(MaxDelayScheduler::new(f)),
            SchedSpec::Random(f, seed) => Box::new(RandomScheduler::new(f, seed)),
            SchedSpec::Dual(f_prog, f_ack, seed) => {
                Box::new(DualBoundScheduler::new(f_prog, f_ack, seed))
            }
        }
    }
}

/// How to assign initial values.
#[derive(Clone, PartialEq, Debug)]
pub enum InputSpec {
    /// `0,1,0,1,...`
    Alternating,
    /// Everyone starts with `v`.
    Const(Value),
    /// Seeded uniform draw from `0..=max`.
    Random {
        /// RNG seed.
        seed: u64,
        /// Inclusive maximum value.
        max: Value,
    },
    /// Explicit per-slot values.
    Explicit(Vec<Value>),
}

impl InputSpec {
    /// Parses `alt`, `const:3`, `random:7`, `random:7:15`, or a CSV
    /// list like `0,1,1`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "alt" {
            return Ok(InputSpec::Alternating);
        }
        let (head, tail) = split_head(s);
        match head {
            "const" => return Ok(InputSpec::Const(one_param(tail, s)?)),
            "random" => {
                let parts = params(tail, s, usize::MAX)?;
                return match parts.len() {
                    1 => Ok(InputSpec::Random {
                        seed: num(&parts[0], s)?,
                        max: 1,
                    }),
                    2 => Ok(InputSpec::Random {
                        seed: num(&parts[0], s)?,
                        max: num(&parts[1], s)?,
                    }),
                    _ => Err(format!("`{s}`: expected random:<seed>[:<max>]")),
                };
            }
            _ => {}
        }
        let values: Result<Vec<Value>, _> = s.split(',').map(|p| p.trim().parse()).collect();
        values
            .map(InputSpec::Explicit)
            .map_err(|_| format!("bad inputs `{s}`"))
    }

    /// Materializes `n` inputs.
    ///
    /// # Errors
    ///
    /// Fails if an explicit list's length does not match `n`.
    pub fn materialize(&self, n: usize) -> Result<Vec<Value>, String> {
        match self {
            InputSpec::Alternating => Ok((0..n).map(|i| (i % 2) as Value).collect()),
            InputSpec::Const(v) => Ok(vec![*v; n]),
            InputSpec::Random { seed, max } => {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::SmallRng::seed_from_u64(*seed);
                Ok((0..n).map(|_| rng.gen_range(0..=*max)).collect())
            }
            InputSpec::Explicit(v) => {
                if v.len() == n {
                    Ok(v.clone())
                } else {
                    Err(format!(
                        "{} inputs given for a topology of {n} nodes",
                        v.len()
                    ))
                }
            }
        }
    }
}

/// Parses `slot=2,time=5` or `slot=2,bcast=1,delivered=0`.
pub fn parse_crash(s: &str) -> Result<CrashSpec, String> {
    let mut slot = None;
    let mut time = None;
    let mut bcast = None;
    let mut delivered = None;
    for part in s.split(',') {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("bad crash field `{part}` in `{s}`"))?;
        let v: u64 = v
            .trim()
            .parse()
            .map_err(|_| format!("bad number in crash field `{part}`"))?;
        match k.trim() {
            "slot" => slot = Some(v as usize),
            "time" => time = Some(v),
            "bcast" => bcast = Some(v),
            "delivered" => delivered = Some(v as usize),
            _ => return Err(format!("unknown crash field `{k}` in `{s}`")),
        }
    }
    let slot = slot.ok_or_else(|| format!("crash `{s}` needs slot=<s>"))?;
    match (time, bcast, delivered) {
        (Some(t), None, None) => Ok(CrashSpec::AtTime {
            slot: Slot(slot),
            time: Time(t),
        }),
        (None, Some(nth), Some(k)) => Ok(CrashSpec::MidBroadcast {
            slot: Slot(slot),
            nth_broadcast: nth,
            delivered: k,
        }),
        _ => Err(format!(
            "crash `{s}` needs either time=<t> or bcast=<n>,delivered=<k>"
        )),
    }
}

/// The engine-selection flags (`--queue`, `--shards`, `--threads`,
/// `--window-batch`) shared by every engine-running subcommand.
/// Parsing lives at one site (the private `EngineFlags::parse`), so
/// `--shards 0`, `--window-batch 0`, and typos are rejected with
/// identical messages everywhere, and resolution lives at one site
/// ([`EngineFlags::resolve`]), so flags beat the documented `AMACL_*`
/// env route beats the serial-heap default — uniformly across
/// subcommands.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineFlags {
    /// `--queue heap|calendar` (`None`: the `AMACL_QUEUE_CORE`
    /// default).
    pub queue: Option<QueueCoreKind>,
    /// `--shards <n>` (`None`: the `AMACL_SHARDS` default).
    pub shards: Option<usize>,
    /// `--threads <n>` (`None`: the `AMACL_THREADS` default).
    pub threads: Option<usize>,
    /// `--window-batch auto|<k>` (`None`: the `AMACL_WINDOW_BATCH`
    /// default).
    pub window_batch: Option<WindowBatch>,
}

impl EngineFlags {
    /// Parses the three optional engine flags. Values go through the
    /// same `FromStr` impls the env route uses, so the flag and env
    /// grammars (and their rejections) cannot drift apart.
    fn parse(opts: &mut Opts) -> Result<Self, String> {
        let queue = match opts.optional("--queue") {
            Some(s) => Some(s.parse::<QueueCoreKind>()?),
            None => None,
        };
        let shards = match opts.optional("--shards") {
            Some(s) => Some(
                s.parse::<ShardCount>()
                    .map_err(|e| format!("--shards: {e}"))?
                    .get(),
            ),
            None => None,
        };
        let threads = match opts.optional("--threads") {
            Some(s) => Some(
                s.parse::<ThreadCount>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .get(),
            ),
            None => None,
        };
        let window_batch = match opts.optional("--window-batch") {
            Some(s) => Some(
                s.parse::<WindowBatch>()
                    .map_err(|e| format!("--window-batch: {e}"))?,
            ),
            None => None,
        };
        Ok(Self {
            queue,
            shards,
            threads,
            window_batch,
        })
    }

    /// Resolves the flags against [`EngineConfig::from_env`] into a
    /// full engine configuration: each explicitly given flag
    /// overrides the corresponding env-derived knob.
    pub fn resolve(self) -> EngineConfig {
        let mut cfg = EngineConfig::from_env();
        if let Some(q) = self.queue {
            cfg = cfg.queue_core(q);
        }
        if let Some(s) = self.shards {
            cfg = cfg.shards(s);
        }
        if let Some(t) = self.threads {
            cfg = cfg.threads(t);
        }
        if let Some(b) = self.window_batch {
            cfg = cfg.window_batch(b);
        }
        cfg
    }
}

/// A fully parsed invocation.
#[derive(Clone, Debug)]
pub enum Command {
    /// `amacl run ...`
    Run {
        /// Algorithm.
        algo: AlgoSpec,
        /// Topology.
        topo: TopoSpec,
        /// Scheduler.
        sched: SchedSpec,
        /// Input assignment.
        inputs: InputSpec,
        /// Crashes to inject.
        crashes: Vec<CrashSpec>,
        /// Print decide/crash trace events.
        trace: bool,
        /// Replay the trace through the conformance checker.
        audit: bool,
        /// Per-message id budget override.
        id_budget: Option<usize>,
        /// Engine selection (`--queue/--shards/--threads/--window-batch`).
        engine: EngineFlags,
    },
    /// `amacl check ...`
    Check {
        /// Algorithm (must be checker-compatible).
        algo: AlgoSpec,
        /// Topology.
        topo: TopoSpec,
        /// Input assignment.
        inputs: InputSpec,
        /// Crash moves the explored scheduler may take.
        crash_budget: usize,
        /// State cap.
        max_states: usize,
        /// Breadth-first search (minimal counterexample schedules).
        bfs: bool,
    },
    /// `amacl fuzz ...`
    Fuzz {
        /// Algorithm (must be deterministic and clock-oblivious).
        algo: AlgoSpec,
        /// Topology.
        topo: TopoSpec,
        /// Input assignment.
        inputs: InputSpec,
        /// Crash moves each walk's scheduler may take.
        crash_budget: usize,
        /// Number of random walks.
        walks: usize,
        /// RNG seed.
        seed: u64,
    },
    /// `amacl topo ...`
    Topo {
        /// Topology to describe.
        topo: TopoSpec,
    },
    /// `amacl crosscheck ...`: the same algorithm on the discrete-event
    /// engine and the threaded runtime, diffed through the shared
    /// `MacLayer` trait.
    CrossCheck {
        /// Algorithm.
        algo: AlgoSpec,
        /// Topology.
        topo: TopoSpec,
        /// Input assignment.
        inputs: InputSpec,
        /// Engine-side adversary (`None`: seeded random under
        /// `f_ack`).
        sched: Option<SchedSpec>,
        /// Engine scheduler bound (used when `sched` is `None`).
        f_ack: u64,
        /// Crashes injected on both backends.
        crashes: Vec<CrashSpec>,
        /// Seed for both backends.
        seed: u64,
        /// Runtime delivery jitter, microseconds.
        jitter_us: u64,
        /// Runtime wall-clock budget, milliseconds.
        timeout_ms: u64,
        /// Demand bit-identical per-slot decisions (only sound for
        /// input-determined algorithms).
        strict: bool,
        /// Engine selection (`--queue/--shards/--threads/--window-batch`).
        engine: EngineFlags,
    },
    /// `amacl explore ...`: DPOR model checking of the delivery/ack/
    /// crash interleavings behind the `MacLayer` seam, with violating
    /// schedules lowered into sweep-ready scenarios.
    Explore {
        /// Algorithm (must be scenario-compatible: two-phase, wpaxos).
        algo: AlgoSpec,
        /// Topology (must have a scenario-descriptor form).
        topo: TopoSpec,
        /// Input assignment.
        inputs: InputSpec,
        /// Crash moves the explored scheduler may take.
        crash_budget: usize,
        /// State cap.
        max_states: usize,
        /// Depth cap.
        max_depth: usize,
        /// Plain DFS + state dedup instead of DPOR.
        naive: bool,
        /// Seeded ledger bug (`none` | `ack-early` | `drop-releases`).
        mutate: Option<String>,
    },
    /// `amacl sweep ...`: the named adversarial scenario catalogue on
    /// both backends, fanned out over worker threads.
    Sweep {
        /// Run the bounded CI subset instead of the full catalogue.
        smoke: bool,
        /// Run only the named scenario.
        scenario: Option<String>,
        /// Seeds per scenario.
        seeds: usize,
        /// List the catalogue and exit.
        list: bool,
        /// Engine selection: `--queue` picks the core for the
        /// vs-threads check (both cores are always compared against
        /// each other regardless), `--shards` pins the per-row
        /// serial-vs-sharded proof to one shard count (default: the
        /// `{2, 4}` pair, alternating cores), `--threads` sets the
        /// per-row threaded proof's worker count (floored at 2 so the
        /// parallel stepper actually runs).
        engine: EngineFlags,
    },
    /// `amacl load ...`: open-loop sustained consensus under a target
    /// arrival rate, with submit→decide latency SLO reporting
    /// (p50/p99/p999) and the serial/sharded/threaded identity proofs.
    Load {
        /// Run only the named scenario (`None`: full catalogue).
        scenario: Option<String>,
        /// Arrival process override (`det` | `poisson`).
        arrival: Option<ArrivalKind>,
        /// Target-rate override, requests per 1000 ticks.
        rate: Option<u64>,
        /// Arrival-window override, ticks.
        duration: Option<u64>,
        /// Workload seed override.
        seed: Option<u64>,
        /// List the catalogue and exit.
        list: bool,
        /// Engine selection. Without any engine flag, every scenario
        /// is swept across the identity grid (cores, shards, threads)
        /// with proof columns; with one, the run is pinned to the
        /// resolved configuration and only the latency surface is
        /// reported.
        engine: EngineFlags,
    },
}

impl Command {
    /// Parses the argument vector (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let Some((verb, rest)) = args.split_first() else {
            return Err(crate::USAGE.to_string());
        };
        let mut opts = Opts::scan(rest)?;
        let cmd = match verb.as_str() {
            "run" => Command::Run {
                algo: AlgoSpec::parse(&opts.required("--algo")?)?,
                topo: TopoSpec::parse(&opts.required("--topo")?)?,
                sched: SchedSpec::parse(&opts.optional("--sched").unwrap_or("random:4:42".into()))?,
                inputs: InputSpec::parse(&opts.optional("--inputs").unwrap_or("alt".into()))?,
                crashes: opts
                    .all("--crash")
                    .iter()
                    .map(|s| parse_crash(s))
                    .collect::<Result<_, _>>()?,
                trace: opts.flag("--trace"),
                audit: opts.flag("--audit"),
                id_budget: match opts.optional("--id-budget") {
                    Some(s) => Some(num(&s, "--id-budget")?),
                    None => None,
                },
                engine: EngineFlags::parse(&mut opts)?,
            },
            "check" => Command::Check {
                algo: AlgoSpec::parse(&opts.required("--algo")?)?,
                topo: TopoSpec::parse(&opts.required("--topo")?)?,
                inputs: InputSpec::parse(&opts.optional("--inputs").unwrap_or("alt".into()))?,
                crash_budget: match opts.optional("--crash-budget") {
                    Some(s) => num(&s, "--crash-budget")?,
                    None => 0,
                },
                max_states: match opts.optional("--max-states") {
                    Some(s) => num(&s, "--max-states")?,
                    None => 2_000_000,
                },
                bfs: opts.flag("--bfs"),
            },
            "fuzz" => Command::Fuzz {
                algo: AlgoSpec::parse(&opts.required("--algo")?)?,
                topo: TopoSpec::parse(&opts.required("--topo")?)?,
                inputs: InputSpec::parse(&opts.optional("--inputs").unwrap_or("alt".into()))?,
                crash_budget: match opts.optional("--crash-budget") {
                    Some(s) => num(&s, "--crash-budget")?,
                    None => 0,
                },
                walks: match opts.optional("--walks") {
                    Some(s) => num(&s, "--walks")?,
                    None => 100,
                },
                seed: match opts.optional("--seed") {
                    Some(s) => num(&s, "--seed")?,
                    None => 0,
                },
            },
            "topo" => Command::Topo {
                topo: TopoSpec::parse(&opts.required("--topo")?)?,
            },
            "crosscheck" => Command::CrossCheck {
                algo: AlgoSpec::parse(&opts.required("--algo")?)?,
                topo: TopoSpec::parse(&opts.required("--topo")?)?,
                inputs: InputSpec::parse(&opts.optional("--inputs").unwrap_or("alt".into()))?,
                sched: match opts.optional("--sched") {
                    Some(s) => Some(SchedSpec::parse(&s)?),
                    None => None,
                },
                crashes: opts
                    .all("--crash")
                    .iter()
                    .map(|s| parse_crash(s))
                    .collect::<Result<_, _>>()?,
                f_ack: match opts.optional("--f-ack") {
                    Some(s) => num(&s, "--f-ack")?,
                    None => 4,
                },
                seed: match opts.optional("--seed") {
                    Some(s) => num(&s, "--seed")?,
                    None => 0,
                },
                jitter_us: match opts.optional("--jitter-us") {
                    Some(s) => num(&s, "--jitter-us")?,
                    None => 200,
                },
                timeout_ms: match opts.optional("--timeout-ms") {
                    Some(s) => num(&s, "--timeout-ms")?,
                    None => 10_000,
                },
                strict: opts.flag("--strict"),
                engine: EngineFlags::parse(&mut opts)?,
            },
            "explore" => Command::Explore {
                algo: AlgoSpec::parse(&opts.required("--algo")?)?,
                topo: TopoSpec::parse(&opts.required("--topo")?)?,
                inputs: InputSpec::parse(&opts.optional("--inputs").unwrap_or("alt".into()))?,
                crash_budget: match opts.optional("--crash-budget") {
                    Some(s) => num(&s, "--crash-budget")?,
                    None => 0,
                },
                max_states: match opts.optional("--max-states") {
                    Some(s) => num(&s, "--max-states")?,
                    None => 500_000,
                },
                max_depth: match opts.optional("--max-depth") {
                    Some(s) => num(&s, "--max-depth")?,
                    None => 10_000,
                },
                naive: opts.flag("--naive"),
                mutate: opts.optional("--mutate"),
            },
            "sweep" => Command::Sweep {
                smoke: opts.flag("--smoke"),
                scenario: opts.optional("--scenario"),
                seeds: match opts.optional("--seeds") {
                    Some(s) => num(&s, "--seeds")?,
                    None => 2,
                },
                list: opts.flag("--list"),
                engine: EngineFlags::parse(&mut opts)?,
            },
            "load" => Command::Load {
                scenario: opts.optional("--scenario"),
                arrival: match opts.optional("--arrival") {
                    Some(s) => Some(s.parse()?),
                    None => None,
                },
                rate: match opts.optional("--rate") {
                    Some(s) => Some(num(&s, "--rate")?),
                    None => None,
                },
                duration: match opts.optional("--duration") {
                    Some(s) => Some(num(&s, "--duration")?),
                    None => None,
                },
                seed: match opts.optional("--seed") {
                    Some(s) => Some(num(&s, "--seed")?),
                    None => None,
                },
                list: opts.flag("--list"),
                engine: EngineFlags::parse(&mut opts)?,
            },
            "help" | "--help" | "-h" => return Err(crate::USAGE.to_string()),
            other => return Err(format!("unknown command `{other}`\n\n{}", crate::USAGE)),
        };
        opts.finish()?;
        Ok(cmd)
    }
}

/// Minimal `--key value` / `--flag` scanner with leftovers detection.
struct Opts {
    pairs: Vec<(String, Option<String>)>,
    used: Vec<bool>,
}

impl Opts {
    fn scan(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if !a.starts_with("--") {
                return Err(format!("unexpected argument `{a}`"));
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                _ => None,
            };
            pairs.push((a.clone(), value));
        }
        let used = vec![false; pairs.len()];
        Ok(Self { pairs, used })
    }

    fn take(&mut self, key: &str) -> Option<Option<String>> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if !self.used[i] && k == key {
                self.used[i] = true;
                return Some(v.clone());
            }
        }
        None
    }

    fn required(&mut self, key: &str) -> Result<String, String> {
        self.take(key)
            .flatten()
            .ok_or_else(|| format!("missing required option `{key} <value>`"))
    }

    fn optional(&mut self, key: &str) -> Option<String> {
        self.take(key).flatten()
    }

    fn all(&mut self, key: &str) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(Some(v)) = self.take(key) {
            out.push(v);
        }
        out
    }

    fn flag(&mut self, key: &str) -> bool {
        self.take(key).is_some()
    }

    fn finish(self) -> Result<(), String> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("unknown or duplicate option `{k}`"));
            }
        }
        Ok(())
    }
}

// --- tiny param helpers -------------------------------------------------

fn split_head(s: &str) -> (&str, Option<&str>) {
    match s.split_once(':') {
        Some((h, t)) => (h, Some(t)),
        None => (s, None),
    }
}

fn no_params(tail: Option<&str>, full: &str) -> Result<(), String> {
    match tail {
        None => Ok(()),
        Some(_) => Err(format!("`{full}` takes no parameters")),
    }
}

fn params(tail: Option<&str>, full: &str, want: usize) -> Result<Vec<String>, String> {
    let tail = tail.ok_or_else(|| format!("`{full}` needs parameters"))?;
    let parts: Vec<String> = tail.split(':').map(str::to_string).collect();
    if want != usize::MAX && parts.len() != want {
        return Err(format!("`{full}`: expected {want} parameter(s)"));
    }
    Ok(parts)
}

fn num<T: std::str::FromStr>(s: &str, ctx: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("bad number `{s}` in `{ctx}`"))
}

fn one_param<T: std::str::FromStr>(tail: Option<&str>, full: &str) -> Result<T, String> {
    let parts = params(tail, full, 1)?;
    num(&parts[0], full)
}

fn two_params<A: std::str::FromStr, B: std::str::FromStr>(
    tail: Option<&str>,
    full: &str,
) -> Result<(A, B), String> {
    let parts = params(tail, full, 2)?;
    Ok((num(&parts[0], full)?, num(&parts[1], full)?))
}

fn wh_param(tail: Option<&str>, full: &str) -> Result<(usize, usize), String> {
    let parts = params(tail, full, 1)?;
    let (w, h) = parts[0]
        .split_once('x')
        .ok_or_else(|| format!("`{full}`: expected <w>x<h>"))?;
    Ok((num(w, full)?, num(h, full)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn algo_specs_parse() {
        assert_eq!(AlgoSpec::parse("two-phase").unwrap(), AlgoSpec::TwoPhase);
        assert_eq!(
            AlgoSpec::parse("bitwise:16").unwrap(),
            AlgoSpec::Bitwise(16)
        );
        assert_eq!(AlgoSpec::parse("fd-paxos").unwrap(), AlgoSpec::FdPaxos(4));
        assert_eq!(AlgoSpec::parse("fd-paxos:9").unwrap(), AlgoSpec::FdPaxos(9));
        assert!(AlgoSpec::parse("raft").is_err());
        assert!(AlgoSpec::parse("two-phase:3").is_err());
    }

    #[test]
    fn topo_specs_parse_and_build() {
        assert_eq!(TopoSpec::parse("clique:5").unwrap().build().len(), 5);
        assert_eq!(TopoSpec::parse("grid:4x3").unwrap().build().len(), 12);
        assert_eq!(TopoSpec::parse("hypercube:3").unwrap().build().len(), 8);
        assert_eq!(TopoSpec::parse("barbell:4:2").unwrap().build().len(), 10);
        let r = TopoSpec::parse("random:10:0.3:7").unwrap().build();
        assert_eq!(r.len(), 10);
        assert!(r.is_connected());
        assert!(TopoSpec::parse("grid:4").is_err());
        assert!(TopoSpec::parse("blob:4").is_err());
    }

    #[test]
    fn sched_specs_parse() {
        assert_eq!(SchedSpec::parse("sync:2").unwrap(), SchedSpec::Sync(2));
        assert_eq!(
            SchedSpec::parse("random:4:42").unwrap(),
            SchedSpec::Random(4, 42)
        );
        assert_eq!(
            SchedSpec::parse("dual:2:8:1").unwrap(),
            SchedSpec::Dual(2, 8, 1)
        );
        assert_eq!(SchedSpec::parse("dual:2:8:1").unwrap().f_ack(), 8);
        assert!(SchedSpec::parse("sync").is_err());
    }

    #[test]
    fn input_specs_materialize() {
        assert_eq!(
            InputSpec::parse("alt").unwrap().materialize(4).unwrap(),
            vec![0, 1, 0, 1]
        );
        assert_eq!(
            InputSpec::parse("const:7").unwrap().materialize(3).unwrap(),
            vec![7, 7, 7]
        );
        assert_eq!(
            InputSpec::parse("0,1,1").unwrap().materialize(3).unwrap(),
            vec![0, 1, 1]
        );
        assert!(InputSpec::parse("0,1").unwrap().materialize(3).is_err());
        let r = InputSpec::parse("random:9:15")
            .unwrap()
            .materialize(100)
            .unwrap();
        assert!(r.iter().all(|&v| v <= 15));
        assert!(InputSpec::parse("x,y").is_err());
    }

    #[test]
    fn crash_specs_parse() {
        assert_eq!(
            parse_crash("slot=2,time=5").unwrap(),
            CrashSpec::AtTime {
                slot: Slot(2),
                time: Time(5)
            }
        );
        assert_eq!(
            parse_crash("slot=1,bcast=0,delivered=2").unwrap(),
            CrashSpec::MidBroadcast {
                slot: Slot(1),
                nth_broadcast: 0,
                delivered: 2
            }
        );
        assert!(parse_crash("slot=1").is_err());
        assert!(parse_crash("time=5").is_err());
        assert!(parse_crash("slot=1,time=2,bcast=0").is_err());
    }

    #[test]
    fn command_parse_run_with_defaults() {
        let cmd = Command::parse(&argv("run --algo two-phase --topo clique:4")).unwrap();
        match cmd {
            Command::Run {
                algo,
                sched,
                inputs,
                crashes,
                trace,
                audit,
                ..
            } => {
                assert_eq!(algo, AlgoSpec::TwoPhase);
                assert_eq!(sched, SchedSpec::Random(4, 42));
                assert_eq!(inputs, InputSpec::Alternating);
                assert!(crashes.is_empty());
                assert!(!trace && !audit);
            }
            _ => panic!("expected Run"),
        }
    }

    #[test]
    fn command_parse_repeated_crashes() {
        let cmd = Command::parse(&argv(
            "run --algo ben-or --topo clique:5 --crash slot=0,time=1 --crash slot=1,bcast=0,delivered=1",
        ))
        .unwrap();
        match cmd {
            Command::Run { crashes, .. } => assert_eq!(crashes.len(), 2),
            _ => panic!("expected Run"),
        }
    }

    #[test]
    fn command_rejects_unknown_options() {
        let err =
            Command::parse(&argv("run --algo two-phase --topo clique:4 --bogus 1")).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        let err = Command::parse(&argv("fly --algo two-phase")).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
    }

    #[test]
    fn command_parse_sweep() {
        let cmd = Command::parse(&argv(
            "sweep --smoke --seeds 3 --queue calendar --shards 2 --threads 4",
        ))
        .unwrap();
        match cmd {
            Command::Sweep {
                smoke,
                seeds,
                scenario,
                list,
                engine,
            } => {
                assert!(smoke && !list);
                assert_eq!(seeds, 3);
                assert_eq!(scenario, None);
                assert_eq!(engine.queue, Some(QueueCoreKind::Calendar));
                assert_eq!(engine.shards, Some(2));
                assert_eq!(engine.threads, Some(4));
            }
            _ => panic!("expected Sweep"),
        }
        let cmd = Command::parse(&argv("sweep --scenario partition-heal")).unwrap();
        match cmd {
            Command::Sweep {
                smoke,
                seeds,
                scenario,
                engine,
                ..
            } => {
                assert!(!smoke);
                assert_eq!(seeds, 2);
                assert_eq!(scenario.as_deref(), Some("partition-heal"));
                assert_eq!(engine, EngineFlags::default());
            }
            _ => panic!("expected Sweep"),
        }
    }

    #[test]
    fn shards_option_rejects_zero_and_garbage() {
        let err = Command::parse(&argv("run --algo wpaxos --topo line:4 --shards 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = Command::parse(&argv("sweep --smoke --shards many")).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let cmd = Command::parse(&argv("run --algo wpaxos --topo line:4 --shards 4")).unwrap();
        match cmd {
            Command::Run { engine, .. } => assert_eq!(engine.shards, Some(4)),
            _ => panic!("expected Run"),
        }
    }

    #[test]
    fn threads_option_rejects_zero_and_garbage() {
        let err = Command::parse(&argv("run --algo wpaxos --topo line:4 --threads 0")).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        let err = Command::parse(&argv("sweep --smoke --threads lots")).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let cmd = Command::parse(&argv(
            "crosscheck --algo wpaxos --topo line:4 --shards 2 --threads 2",
        ))
        .unwrap();
        match cmd {
            Command::CrossCheck { engine, .. } => assert_eq!(engine.threads, Some(2)),
            _ => panic!("expected CrossCheck"),
        }
    }

    #[test]
    fn window_batch_option_rejects_zero_and_garbage() {
        let err =
            Command::parse(&argv("run --algo wpaxos --topo line:4 --window-batch 0")).unwrap_err();
        assert!(err.contains("--window-batch"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        let err = Command::parse(&argv("sweep --smoke --window-batch automatic")).unwrap_err();
        assert!(err.contains("--window-batch"), "{err}");
        let err = Command::parse(&argv("load --window-batch 4x")).unwrap_err();
        assert!(err.contains("--window-batch"), "{err}");
        let cmd = Command::parse(&argv(
            "run --algo wpaxos --topo line:4 --threads 2 --window-batch 8",
        ))
        .unwrap();
        match cmd {
            Command::Run { engine, .. } => {
                assert_eq!(engine.window_batch, Some(WindowBatch::Fixed(8)));
            }
            _ => panic!("expected Run"),
        }
        let cmd = Command::parse(&argv("sweep --smoke --window-batch auto")).unwrap();
        match cmd {
            Command::Sweep { engine, .. } => {
                assert_eq!(engine.window_batch, Some(WindowBatch::Auto));
            }
            _ => panic!("expected Sweep"),
        }
    }

    #[test]
    fn command_parse_load() {
        let cmd = Command::parse(&argv(
            "load --scenario load-steady-state --arrival det --rate 8 --duration 5000 --seed 3",
        ))
        .unwrap();
        match cmd {
            Command::Load {
                scenario,
                arrival,
                rate,
                duration,
                seed,
                list,
                engine,
            } => {
                assert_eq!(scenario.as_deref(), Some("load-steady-state"));
                assert_eq!(arrival, Some(ArrivalKind::Deterministic));
                assert_eq!(rate, Some(8));
                assert_eq!(duration, Some(5000));
                assert_eq!(seed, Some(3));
                assert!(!list);
                assert_eq!(engine, EngineFlags::default());
            }
            _ => panic!("expected Load"),
        }
    }

    #[test]
    fn load_flags_share_the_engine_parser() {
        // The same parse site serves every subcommand, so `load`
        // rejects `--shards 0` and `--queue` typos with the exact
        // messages `run`/`sweep` produce.
        let err = Command::parse(&argv("load --shards 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = Command::parse(&argv("load --queue fifo")).unwrap_err();
        assert!(err.contains("unknown queue core"), "{err}");
        let err = Command::parse(&argv("load --threads some")).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let err = Command::parse(&argv("load --arrival psoison")).unwrap_err();
        assert!(err.contains("unknown arrival process"), "{err}");
        let cmd = Command::parse(&argv("load --queue calendar --shards 2 --threads 4")).unwrap();
        match cmd {
            Command::Load { engine, .. } => {
                assert_eq!(engine.queue, Some(QueueCoreKind::Calendar));
                assert_eq!(engine.shards, Some(2));
                assert_eq!(engine.threads, Some(4));
            }
            _ => panic!("expected Load"),
        }
    }

    #[test]
    fn engine_flags_resolve_prefers_explicit_values() {
        let cfg = EngineFlags {
            queue: Some(QueueCoreKind::Calendar),
            shards: Some(3),
            threads: Some(2),
            window_batch: Some(WindowBatch::Fixed(8)),
        }
        .resolve();
        assert_eq!(cfg.queue_core, QueueCoreKind::Calendar);
        assert_eq!(cfg.shards.get(), 3);
        assert_eq!(cfg.threads.get(), 2);
        assert_eq!(cfg.window_batch, WindowBatch::Fixed(8));
        // Unset flags fall back to the documented env route's values.
        let env = EngineConfig::from_env();
        let cfg = EngineFlags::default().resolve();
        assert_eq!(cfg, env);
    }

    #[test]
    fn command_parse_crosscheck_with_sched_and_crash() {
        let cmd = Command::parse(&argv(
            "crosscheck --algo wpaxos --topo clique:5 --sched dual:2:8:7 --crash slot=0,time=3",
        ))
        .unwrap();
        match cmd {
            Command::CrossCheck { sched, crashes, .. } => {
                assert_eq!(sched, Some(SchedSpec::Dual(2, 8, 7)));
                assert_eq!(crashes.len(), 1);
            }
            _ => panic!("expected CrossCheck"),
        }
    }

    #[test]
    fn command_parse_explore() {
        let cmd = Command::parse(&argv(
            "explore --algo two-phase --topo clique:2 --inputs 0,1 --mutate ack-early",
        ))
        .unwrap();
        match cmd {
            Command::Explore {
                algo,
                crash_budget,
                max_states,
                max_depth,
                naive,
                mutate,
                ..
            } => {
                assert_eq!(algo, AlgoSpec::TwoPhase);
                assert_eq!(crash_budget, 0);
                assert_eq!(max_states, 500_000);
                assert_eq!(max_depth, 10_000);
                assert!(!naive);
                assert_eq!(mutate.as_deref(), Some("ack-early"));
            }
            _ => panic!("expected Explore"),
        }
        let cmd = Command::parse(&argv(
            "explore --algo wpaxos --topo ring:4 --crash-budget 1 --max-states 99 --naive",
        ))
        .unwrap();
        match cmd {
            Command::Explore {
                crash_budget,
                max_states,
                naive,
                mutate,
                ..
            } => {
                assert_eq!(crash_budget, 1);
                assert_eq!(max_states, 99);
                assert!(naive);
                assert_eq!(mutate, None);
            }
            _ => panic!("expected Explore"),
        }
    }

    #[test]
    fn command_parse_check() {
        let cmd = Command::parse(&argv(
            "check --algo two-phase --topo clique:3 --inputs 0,1,1 --crash-budget 1",
        ))
        .unwrap();
        match cmd {
            Command::Check {
                crash_budget,
                max_states,
                ..
            } => {
                assert_eq!(crash_budget, 1);
                assert_eq!(max_states, 2_000_000);
            }
            _ => panic!("expected Check"),
        }
    }
}
