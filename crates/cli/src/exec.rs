//! Executes parsed [`Command`]s against the workspace libraries and
//! renders plain-text reports.

use std::fmt::Write as _;
use std::time::Duration;

use amacl_checker::{
    cross_check, CrossCheckConfig, ExploreConfig, Explorer, FuzzConfig, SearchOrder,
};
use amacl_core::baselines::flood_gather::FloodGather;
use amacl_core::extensions::ben_or::BenOr;
use amacl_core::extensions::fd_paxos::FdPaxos;
use amacl_core::multivalued::BitwiseTwoPhase;
use amacl_core::tree_gather::TreeGather;
use amacl_core::two_phase::TwoPhase;
use amacl_core::verify::check_consensus;
use amacl_core::wpaxos::{WpaxosConfig, WpaxosNode};
use amacl_model::prelude::*;
use amacl_model::sim::conformance::check_trace;
use amacl_model::sim::trace::TraceEvent;
use amacl_runtime::{MacRuntime, RuntimeConfig};

use crate::spec::{AlgoSpec, Command, EngineFlags, InputSpec, SchedSpec, TopoSpec};

/// Executes a parsed command, returning the rendered report.
///
/// # Errors
///
/// Returns a message when the instance is invalid (e.g. a multihop
/// topology for a single-hop algorithm) or a property fails.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Run {
            algo,
            topo,
            sched,
            inputs,
            crashes,
            trace,
            audit,
            id_budget,
            engine,
        } => run(
            algo, topo, sched, inputs, crashes, trace, audit, id_budget, engine,
        ),
        Command::Check {
            algo,
            topo,
            inputs,
            crash_budget,
            max_states,
            bfs,
        } => check(algo, topo, inputs, crash_budget, max_states, bfs),
        Command::Fuzz {
            algo,
            topo,
            inputs,
            crash_budget,
            walks,
            seed,
        } => fuzz(algo, topo, inputs, crash_budget, walks, seed),
        Command::Topo { topo } => Ok(describe_topo(&topo)),
        Command::CrossCheck {
            algo,
            topo,
            inputs,
            sched,
            f_ack,
            crashes,
            seed,
            jitter_us,
            timeout_ms,
            strict,
            engine,
        } => crosscheck(
            algo, topo, inputs, sched, f_ack, crashes, seed, jitter_us, timeout_ms, strict, engine,
        ),
        Command::Explore {
            algo,
            topo,
            inputs,
            crash_budget,
            max_states,
            max_depth,
            naive,
            mutate,
        } => explore_mac(
            algo,
            topo,
            inputs,
            crash_budget,
            max_states,
            max_depth,
            naive,
            mutate,
        ),
        Command::Sweep {
            smoke,
            scenario,
            seeds,
            list,
            engine,
        } => sweep(smoke, scenario, seeds, list, engine),
        Command::Load {
            scenario,
            arrival,
            rate,
            duration,
            seed,
            list,
            engine,
        } => load(scenario, arrival, rate, duration, seed, list, engine),
    }
}

/// Maps a parsed topology spec onto its scenario-descriptor form (the
/// plain-data shape `explore_mac` descriptors and lowered scenarios
/// carry), rejecting families the catalogue cannot express.
fn scenario_topo(spec: &TopoSpec) -> Result<amacl_checker::scenario::ScenarioTopo, String> {
    use amacl_checker::scenario::ScenarioTopo;
    let text = spec.text.as_str();
    let (head, tail) = match text.split_once(':') {
        Some((h, t)) => (h, t),
        None => (text, ""),
    };
    let one = || -> Result<usize, String> {
        tail.parse()
            .map_err(|_| format!("bad parameter in `{text}`"))
    };
    let wh = || -> Result<(usize, usize), String> {
        let (w, h) = tail
            .split_once('x')
            .ok_or_else(|| format!("bad parameter in `{text}`"))?;
        Ok((
            w.parse().map_err(|_| format!("bad width in `{text}`"))?,
            h.parse().map_err(|_| format!("bad height in `{text}`"))?,
        ))
    };
    match head {
        "clique" => Ok(ScenarioTopo::Clique(one()?)),
        "line" => Ok(ScenarioTopo::Line(one()?)),
        "ring" => Ok(ScenarioTopo::Ring(one()?)),
        "grid" => wh().map(|(w, h)| ScenarioTopo::Grid(w, h)),
        "torus" => wh().map(|(w, h)| ScenarioTopo::Torus(w, h)),
        "hypercube" => Ok(ScenarioTopo::Hypercube(one()?)),
        "random-tree" => {
            let (n, seed) = tail
                .split_once(':')
                .ok_or_else(|| format!("bad parameter in `{text}`"))?;
            Ok(ScenarioTopo::RandomTree(
                n.parse().map_err(|_| format!("bad size in `{text}`"))?,
                seed.parse().map_err(|_| format!("bad seed in `{text}`"))?,
            ))
        }
        _ => Err(format!(
            "`{text}` has no scenario-descriptor form; explore supports clique, line, \
             ring, grid, torus, hypercube, random-tree"
        )),
    }
}

/// Enumerates the delivery/ack/crash interleavings behind the
/// `MacLayer` seam for one instance, optionally under a seeded ledger
/// bug, and lowers the first violating schedule into a sweep-ready
/// scenario (the round-trip the regression catalogue is grown from).
#[allow(clippy::too_many_arguments)]
fn explore_mac(
    algo: AlgoSpec,
    topo_spec: TopoSpec,
    inputs_spec: InputSpec,
    crash_budget: usize,
    max_states: usize,
    max_depth: usize,
    naive: bool,
    mutate: Option<String>,
) -> Result<String, String> {
    use amacl_checker::explore_mac::{
        LedgerMutation, MacExploreConfig, MacExploreDescriptor, Reduction,
    };
    use amacl_checker::scenario::{sweep_scenario, ScenarioAlgo};

    let scenario_algo = match algo {
        AlgoSpec::TwoPhase => ScenarioAlgo::TwoPhase,
        AlgoSpec::Wpaxos => ScenarioAlgo::Wpaxos,
        other => {
            return Err(format!(
                "`{}` is not explorable behind the MacLayer seam; supported: two-phase, wpaxos",
                other.name()
            ))
        }
    };
    let topo = scenario_topo(&topo_spec)?;
    let inputs = inputs_spec.materialize(topo.build().len())?;
    let mutation = match mutate.as_deref() {
        None => LedgerMutation::None,
        Some(s) => LedgerMutation::parse(s).ok_or_else(|| {
            format!("unknown mutation `{s}`; supported: none, ack-early, drop-releases")
        })?,
    };
    let descriptor = MacExploreDescriptor {
        algo: scenario_algo,
        topo,
        inputs,
        crash_budget,
        mutation,
    };
    descriptor.validate()?;
    let cfg = MacExploreConfig {
        max_states,
        max_depth,
        max_violations: 1,
        reduction: if naive {
            Reduction::Naive
        } else {
            Reduction::Dpor
        },
    };
    let out = descriptor.explore(&cfg);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "explore {} on {} (n={}), inputs {:?}, crash budget {crash_budget}, \
         mutation {}, reduction {}",
        algo.name(),
        topo_spec.text,
        descriptor.inputs.len(),
        descriptor.inputs,
        mutation.label(),
        out.reduction.label()
    );
    let _ = writeln!(
        text,
        "explored {} states ({} distinct, {} quiescent), {} transitions, \
         deepest schedule {} moves{}",
        out.states,
        out.distinct_states,
        out.quiescent_states,
        out.transitions,
        out.max_depth_reached,
        if out.truncated { " — TRUNCATED" } else { "" }
    );
    match out.violations.first() {
        None if !out.truncated => {
            let _ = writeln!(
                text,
                "VERIFIED: agreement, validity, and termination hold on every interleaving"
            );
        }
        None => {
            let _ = writeln!(
                text,
                "no violation found, but the cover is incomplete — raise --max-states/--max-depth"
            );
        }
        Some(v) => {
            text.push_str(&v.render());
            // Lower the counterexample into a scenario descriptor and
            // prove the round trip. Under a seeded mutation the bug
            // only exists behind the mutated seam, so the lowered
            // scenario must sweep CLEAN on the real backends. A
            // termination violation found with NO mutation is a
            // genuine property of the real semantics (e.g. two-phase
            // is not crash tolerant) and is gated differently below.
            let scenario = descriptor.lower("explored-cli", v);
            let _ = writeln!(
                text,
                "lowered scenario: sched {}, {} crash(es), inputs {:?}",
                scenario.sched.label(),
                scenario.crashes.len(),
                scenario.inputs
            );
            scenario
                .validate()
                .map_err(|e| format!("{text}lowering produced an invalid scenario: {e}"))?;
            let genuine_stall = mutation == LedgerMutation::None
                && v.kind == amacl_checker::ViolationKind::Termination;
            if genuine_stall {
                // A genuine violation is an algorithm-level property:
                // THERE EXISTS a stalling interleaving. One backend
                // run cannot refute it, and demanding termination on
                // every backend would be category-wrong — the
                // threaded runtime's jitter may hit the stall the
                // engine's scripted timing escapes (and vice versa:
                // the coarse lowering pins only completion order, not
                // the delivery-vs-ack fine structure some stalls
                // need). The deterministic facts to gate on are
                // engine self-consistency and safety.
                let heap = scenario.run_engine_on(1, QueueCoreKind::Heap);
                let calendar = scenario.run_engine_on(1, QueueCoreKind::Calendar);
                if heap != calendar {
                    return Err(format!(
                        "{text}round-trip FAILED: queue cores diverged on the lowered scenario"
                    ));
                }
                for shards in [2usize, 4] {
                    let (sharded, _) = scenario.run_engine_sharded(1, QueueCoreKind::Heap, shards);
                    if sharded != heap {
                        return Err(format!(
                            "{text}round-trip FAILED: S={shards} diverged from serial on the \
                             lowered scenario"
                        ));
                    }
                }
                let decided = heap.decided_values();
                if decided.len() > 1 {
                    return Err(format!(
                        "{text}round-trip FAILED: deciders disagree on the lowered scenario: \
                         {decided:?}"
                    ));
                }
                if let Some(bad) = decided.iter().find(|d| !descriptor.inputs.contains(d)) {
                    return Err(format!(
                        "{text}round-trip FAILED: decided value {bad} was nobody's input"
                    ));
                }
                let _ = writeln!(
                    text,
                    "round-trip ok: lowered scenario is byte-identical across queue cores \
                     and shard counts (S in {{2, 4}}) with safety intact; the engine {} \
                     (a genuine stall is existential — other timings may still wedge)",
                    if heap.all_decided {
                        "terminates under this scripted timing"
                    } else {
                        "reproduces the stall"
                    }
                );
                return Ok(text);
            }
            let row = sweep_scenario(&scenario, 1);
            if !row.ok {
                return Err(format!(
                    "{text}round-trip FAILED: lowered scenario does not sweep clean on \
                     the real backends: {}",
                    row.failures.join("; ")
                ));
            }
            let _ = writeln!(
                text,
                "round-trip ok: lowered scenario sweeps clean on the real backends \
                 (engine vs threads, heap vs calendar, serial vs sharded)"
            );
        }
    }
    Ok(text)
}

/// Runs the named adversarial scenario catalogue on both backends,
/// fanning (scenario, seed) jobs out over the parallel multi-seed
/// driver, and reports per-row outcomes with the first diverging slot.
fn sweep(
    smoke: bool,
    scenario: Option<String>,
    seeds: usize,
    list: bool,
    engine: EngineFlags,
) -> Result<String, String> {
    use amacl_bench::parallel::{default_threads, run_seeds};
    use amacl_checker::scenario::{
        sweep_scenario_sharded, Scenario, SweepOutcome, SWEEP_SHARD_COUNTS,
    };

    if list {
        let mut out = String::from("scenario catalogue:\n");
        for s in Scenario::catalogue() {
            let _ = writeln!(
                out,
                "  {:<24} {:?} on {:?}, sched {}, {} crash(es), inputs {:?}{}",
                s.name,
                s.algo,
                s.topo,
                s.sched.label(),
                s.crashes.len(),
                s.inputs,
                match (s.strict, s.expect_stall) {
                    (true, _) => ", strict",
                    (_, true) => ", expects stall",
                    _ => "",
                }
            );
        }
        return Ok(out);
    }

    let scenarios = match scenario {
        Some(name) => vec![Scenario::by_name(&name)
            .ok_or_else(|| format!("unknown scenario `{name}` (see `amacl sweep --list`)"))?],
        None if smoke => Scenario::smoke(),
        None => Scenario::catalogue(),
    };
    for s in &scenarios {
        s.validate()?;
    }

    let seed_list: Vec<u64> = (0..seeds.max(1) as u64).collect();
    let jobs: Vec<(usize, u64)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seed_list.iter().map(move |&s| (i, s)))
        .collect();
    // Fan out over the parallel driver: one cross-check per job,
    // results reassembled in (scenario, seed) order. Each job also
    // proves the heap and calendar queue cores byte-identical on its
    // scenario, and the sharded engine byte-identical to serial at
    // every shard count in `shard_counts`; `core` picks the engine
    // core for the threads check.
    let resolved = engine.resolve();
    let core = resolved.queue_core;
    let shard_counts: Vec<usize> = match engine.shards {
        Some(s) => vec![s],
        None => SWEEP_SHARD_COUNTS.to_vec(),
    };
    // The per-row threaded proof re-runs the largest shard count on
    // the parallel stepper; floor the worker count at 2 so the proof
    // is never vacuous, even under a serial `AMACL_THREADS` default.
    let step_threads = resolved.threads.get().max(2);
    let indices: Vec<u64> = (0..jobs.len() as u64).collect();
    let rows = run_seeds(&indices, default_threads(), |i| {
        let (si, seed) = jobs[i as usize];
        sweep_scenario_sharded(&scenarios[si], seed, core, &shard_counts, step_threads)
    });
    let outcome = SweepOutcome {
        rows: rows.into_iter().map(|r| r.result).collect(),
    };

    let shard_label = shard_counts
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut out = format!(
        "sweep: {} scenario(s) x {} seed(s), engine ({core} core) vs threads, heap vs calendar, \
         serial vs sharded (S={{{shard_label}}}) vs parallel-stepped (T={step_threads})\n",
        scenarios.len(),
        seed_list.len()
    );
    out.push_str(&outcome.render());
    if outcome.ok() {
        out.push_str("sweep OK\n");
        Ok(out)
    } else {
        Err(format!(
            "{out}sweep FAILED: backend divergence or property violation"
        ))
    }
}

/// Runs the open-loop sustained-load catalogue: arrivals at the target
/// rate are injected into a long-lived consensus pipeline and the
/// submit→decide latency surface (p50/p99/p999) is reported. Without
/// engine flags every scenario is swept across the identity grid
/// (queue cores, shard counts, the parallel stepper) with the same
/// proof columns the closed-loop sweep carries; with an engine flag
/// the run is pinned to the resolved configuration.
fn load(
    scenario: Option<String>,
    arrival: Option<amacl_checker::ArrivalKind>,
    rate: Option<u64>,
    duration: Option<u64>,
    seed: Option<u64>,
    list: bool,
    engine: EngineFlags,
) -> Result<String, String> {
    use amacl_checker::workload::{
        render_load_rows, run_load, sweep_load, LoadScenario, LOAD_SWEEP_SHARD_COUNTS,
        LOAD_SWEEP_THREADS,
    };

    let mut scenarios = LoadScenario::catalogue();
    if list {
        let mut out = String::from("load scenario catalogue:\n");
        for s in &scenarios {
            let _ = writeln!(
                out,
                "  {:<24} {} arrivals at {}/kilotick for {} ticks, n={}, {} bits{}{}",
                s.name,
                s.spec.arrival,
                s.spec.rate_per_kilotick,
                s.spec.duration,
                s.spec.n,
                s.spec.bits,
                match s.crash {
                    Some((slot, t)) => format!(", crash slot {slot} at t={t}"),
                    None => String::new(),
                },
                match &s.partition {
                    Some((_, _, release)) => format!(", partition heals at t={release}"),
                    None => String::new(),
                }
            );
        }
        return Ok(out);
    }
    if let Some(name) = &scenario {
        scenarios.retain(|s| &s.name == name);
        if scenarios.is_empty() {
            return Err(format!(
                "unknown load scenario `{name}` (see `amacl load --list`)"
            ));
        }
    }
    for s in &mut scenarios {
        if let Some(a) = arrival {
            s.spec.arrival = a;
        }
        if let Some(r) = rate {
            s.spec.rate_per_kilotick = r;
        }
        if let Some(d) = duration {
            s.spec.duration = d;
        }
        if let Some(sd) = seed {
            s.spec.seed = sd;
        }
        s.validate()?;
    }

    if engine != EngineFlags::default() {
        // Pinned single-configuration mode: one run per scenario on
        // the resolved engine, latency surface only.
        let cfg = engine.resolve();
        let mut out = format!(
            "load: pinned engine ({} core, S={}, T={})\n",
            cfg.queue_core,
            cfg.shards.get(),
            cfg.threads.get()
        );
        for s in &scenarios {
            let run = run_load(
                s,
                cfg.queue_core,
                cfg.shards.get(),
                cfg.threads.get(),
                false,
            );
            let _ = writeln!(
                out,
                "{}: {}/{} decided ({} unfinished) | p50 {} p99 {} p999 {} max {} ticks \
                 | {:.2} decided/kilotick | {} engine events",
                s.name,
                run.histogram.count(),
                run.submitted,
                run.unfinished,
                run.histogram.p50(),
                run.histogram.p99(),
                run.histogram.p999(),
                run.histogram.max(),
                run.decided_per_kilotick(),
                run.engine_events
            );
        }
        return Ok(out);
    }

    let mut out = format!(
        "load: {} scenario(s), open-loop identity sweep (heap vs calendar, serial vs \
         S={{{}}}, parallel-stepped T={})\n",
        scenarios.len(),
        LOAD_SWEEP_SHARD_COUNTS
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
        LOAD_SWEEP_THREADS
    );
    let rows: Vec<_> = scenarios.iter().map(sweep_load).collect();
    out.push_str(&render_load_rows(&rows));
    if rows.iter().all(|r| r.ok()) {
        out.push_str("load OK\n");
        Ok(out)
    } else {
        Err(format!(
            "{out}load FAILED: open-loop run diverged across engine configurations"
        ))
    }
}

/// Runs `algo` on the engine and the threaded runtime through the
/// shared `MacLayer` trait and diffs the outcomes.
#[allow(clippy::too_many_arguments)]
fn crosscheck(
    algo: AlgoSpec,
    topo_spec: TopoSpec,
    inputs_spec: InputSpec,
    sched: Option<SchedSpec>,
    f_ack: u64,
    crashes: Vec<CrashSpec>,
    seed: u64,
    jitter_us: u64,
    timeout_ms: u64,
    strict: bool,
    engine: EngineFlags,
) -> Result<String, String> {
    let topo = topo_spec.build();
    let n = topo.len();
    let inputs = inputs_spec.materialize(n)?;
    if strict && !crashes.is_empty() {
        return Err(
            "--strict with --crash is unsound: a crashed slot may decide before its \
             deadline on one backend but not the other (the two clocks are incommensurable), \
             so identical decision vectors cannot be demanded"
                .into(),
        );
    }
    for (i, c) in crashes.iter().enumerate() {
        if c.slot().index() >= n {
            return Err(format!("crash slot {} out of range (n={n})", c.slot()));
        }
        if crashes[i + 1..].iter().any(|d| d.slot() == c.slot()) {
            return Err(format!("duplicate crash for slot {}", c.slot()));
        }
    }
    // Any engine-side adversary works here: the generalized SimBackend
    // takes a scheduler factory, so `--sched` reaches partitions and
    // scripted schedules too, not just the stock random scheduler.
    let mut sim = match sched {
        Some(spec) => {
            let factory: amacl_model::mac::SchedulerFactory =
                std::sync::Arc::new(move || spec.build());
            SimBackend::with_factory(topo.clone(), format!("{spec:?}"), factory)
        }
        None => SimBackend::new(topo.clone(), BackendSched::Random { f_ack, seed }),
    }
    .config(engine.resolve())
    .seed(seed)
    .crash_plan(CrashPlan::new(crashes.clone()));
    let mut rt = MacRuntime::new(
        topo,
        RuntimeConfig {
            max_jitter: Duration::from_micros(jitter_us),
            seed,
            timeout: Duration::from_millis(timeout_ms),
            ..RuntimeConfig::default()
        }
        .with_crash_specs(&crashes, amacl_checker::Scenario::TICK),
    );
    let cfg = CrossCheckConfig {
        expect_identical_decisions: strict,
        check_validity: true,
    };
    macro_rules! cc {
        ($mk:expr) => {
            cross_check(&mut sim, &mut rt, &mut $mk, &inputs, cfg)
        };
    }
    let iv = inputs.clone();
    let outcome = match algo {
        AlgoSpec::TwoPhase => cc!(|s: Slot| TwoPhase::new(iv[s.index()])),
        AlgoSpec::Wpaxos => {
            cc!(|s: Slot| WpaxosNode::new(iv[s.index()], WpaxosConfig::new(n)))
        }
        AlgoSpec::TreeGather => cc!(|s: Slot| TreeGather::new(iv[s.index()], n)),
        AlgoSpec::FloodGather => cc!(|s: Slot| FloodGather::new(iv[s.index()], n)),
        AlgoSpec::Bitwise(bits) => cc!(|s: Slot| BitwiseTwoPhase::new(iv[s.index()], bits)),
        AlgoSpec::BenOr => cc!(|s: Slot| BenOr::new(iv[s.index()], n)),
        AlgoSpec::FdPaxos(_) => {
            return Err(
                "fd-paxos timeouts are clock-scale dependent; crosscheck does not support it"
                    .into(),
            )
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "crosscheck {} on {} (n={n}): {} vs {}",
        algo.name(),
        topo_spec.text,
        outcome.left.backend,
        outcome.right.backend
    );
    if let Some(spec) = sched {
        let _ = writeln!(out, "  engine sched: {spec:?}");
    }
    if let Some(core) = engine.queue {
        let _ = writeln!(out, "  engine queue core: {core}");
    }
    if let Some(s) = engine.shards {
        let _ = writeln!(out, "  engine shards: {s}");
    }
    if let Some(t) = engine.threads {
        let _ = writeln!(out, "  engine threads: {t}");
    }
    if !crashes.is_empty() {
        let _ = writeln!(out, "  crashes (both backends): {crashes:?}");
    }
    for report in [&outcome.left, &outcome.right] {
        let _ = writeln!(
            out,
            "  {:>8}: all_decided={} broadcasts={} deliveries={} decided={:?}",
            report.backend,
            report.all_decided,
            report.broadcasts,
            report.deliveries,
            report.decided_values()
        );
    }
    match &outcome.divergence {
        None => {
            let _ = writeln!(out, "  decisions: identical per slot");
        }
        Some(d) => {
            let _ = writeln!(out, "  {d}");
        }
    }
    if outcome.ok() {
        let _ = writeln!(out, "cross-check OK");
        Ok(out)
    } else {
        Err(format!(
            "{out}cross-check FAILED: {}",
            outcome.failures.join("; ")
        ))
    }
}

/// The single-hop algorithms insist on a clique; catching it here gives
/// a friendlier message than a stuck simulation.
fn require_clique(algo: AlgoSpec, topo: &Topology) -> Result<(), String> {
    let is_clique = topo.edge_count() == topo.len() * topo.len().saturating_sub(1) / 2;
    if is_clique {
        Ok(())
    } else {
        Err(format!(
            "`{}` is a single-hop algorithm; use a clique topology (got {} nodes, {} edges)",
            algo.name(),
            topo.len(),
            topo.edge_count()
        ))
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    algo: AlgoSpec,
    topo_spec: TopoSpec,
    sched: SchedSpec,
    inputs_spec: InputSpec,
    crashes: Vec<CrashSpec>,
    trace: bool,
    audit: bool,
    id_budget: Option<usize>,
    engine: EngineFlags,
) -> Result<String, String> {
    let topo = topo_spec.build();
    let n = topo.len();
    let inputs = inputs_spec.materialize(n)?;
    for c in &crashes {
        if c.slot().index() >= n {
            return Err(format!("crash slot {} out of range (n={n})", c.slot()));
        }
    }
    let crashed: Vec<bool> = (0..n)
        .map(|i| crashes.iter().any(|c| c.slot() == Slot(i)))
        .collect();

    // One builder per algorithm arm: each has a distinct message type.
    macro_rules! simulate {
        ($mk:expr, $budget:expr) => {{
            let builder = SimBuilder::new(topo.clone(), $mk)
                .config(engine.resolve())
                .scheduler(sched.build())
                .crashes(CrashPlan::new(crashes.clone()))
                .message_id_budget(id_budget.unwrap_or($budget))
                .trace(trace || audit)
                .max_time(Time(2_000_000));
            let mut sim = builder.build();
            let report = sim.run();
            let audit_text = if audit {
                let a = check_trace(sim.topology(), sim.trace(), Some(sched.f_ack()), None);
                Some(format!(
                    "audit: {} broadcasts, {} deliveries, {} acks — violations: {}",
                    a.broadcasts,
                    a.deliveries,
                    a.acks,
                    if a.violations.is_empty() {
                        "none".to_string()
                    } else {
                        format!("{:?}", a.violations)
                    }
                ))
            } else {
                None
            };
            let trace_text = if trace {
                Some(render_trace(sim.trace().events()))
            } else {
                None
            };
            (report, trace_text, audit_text)
        }};
    }

    let iv = inputs.clone();
    let (report, trace_text, audit_text) = match algo {
        AlgoSpec::TwoPhase => {
            require_clique(algo, &topo)?;
            for &v in &inputs {
                if v > 1 {
                    return Err("two-phase is binary; use --inputs with 0/1 values".into());
                }
            }
            simulate!(|s: Slot| TwoPhase::new(iv[s.index()]), 1)
        }
        AlgoSpec::Wpaxos => {
            simulate!(
                |s: Slot| WpaxosNode::new(iv[s.index()], WpaxosConfig::new(n)),
                10
            )
        }
        AlgoSpec::TreeGather => simulate!(|s: Slot| TreeGather::new(iv[s.index()], n), 10),
        AlgoSpec::FloodGather => simulate!(|s: Slot| FloodGather::new(iv[s.index()], n), 1),
        AlgoSpec::Bitwise(bits) => {
            require_clique(algo, &topo)?;
            let top = if bits >= 64 {
                u64::MAX
            } else {
                (1 << bits) - 1
            };
            for &v in &inputs {
                if v > top {
                    return Err(format!("input {v} does not fit in {bits} bits"));
                }
            }
            simulate!(|s: Slot| BitwiseTwoPhase::new(iv[s.index()], bits), 1)
        }
        AlgoSpec::BenOr => {
            require_clique(algo, &topo)?;
            if n < 3 {
                return Err("ben-or needs n >= 3".into());
            }
            for &v in &inputs {
                if v > 1 {
                    return Err("ben-or is binary; use --inputs with 0/1 values".into());
                }
            }
            simulate!(|s: Slot| BenOr::new(iv[s.index()], n), 1)
        }
        AlgoSpec::FdPaxos(timeout) => {
            require_clique(algo, &topo)?;
            simulate!(|s: Slot| FdPaxos::new(iv[s.index()], n, timeout), 3)
        }
    };

    let check = check_consensus(&inputs, &report, &crashed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "algo {} | topo {} (n={n}, D={}) | sched {:?} | inputs {:?}",
        algo.name(),
        topo_spec.text,
        topo.diameter(),
        sched,
        inputs
    );
    if !crashes.is_empty() {
        let _ = writeln!(out, "crashes: {crashes:?}");
    }
    let _ = writeln!(
        out,
        "outcome: {:?} at t={} | broadcasts {} | deliveries {}",
        report.outcome,
        report.end_time.ticks(),
        report.metrics.broadcasts,
        report.metrics.deliveries
    );
    let _ = writeln!(
        out,
        "memory: payload clones {} | payload moves {} | arena peak {} B",
        report.metrics.payload_clones,
        report.metrics.payload_moves,
        report.metrics.arena_bytes_peak
    );
    if let Some(s) = engine.shards {
        let m = &report.metrics;
        let _ = writeln!(
            out,
            "shards: {s} | cross-shard deliveries {} | windows {} | mailbox flushes {} | skew {:.2}",
            m.cross_shard_deliveries,
            m.shard_window_advances,
            m.shard_mailbox_flushes,
            m.shard_skew()
        );
        if let Some(t) = engine.threads {
            let _ = writeln!(
                out,
                "threads: {t} | busy {:.3} ms | barrier wait {:.3} ms ({:.1}%)",
                m.shard_busy_ns.iter().sum::<u64>() as f64 / 1e6,
                m.shard_barrier_wait_ns.iter().sum::<u64>() as f64 / 1e6,
                m.barrier_pct()
            );
            let _ = writeln!(
                out,
                "pool: spawns {} | wakeups {} | supersteps {} | serial shortcuts {}",
                m.worker_spawns, m.worker_wakeups, m.superstep_count, m.serial_window_shortcuts
            );
        }
    }
    let _ = writeln!(
        out,
        "consensus: agreement={} validity={} termination={} decided={:?}",
        check.agreement, check.validity, check.termination, check.decided
    );
    if let Some(t) = report.max_decision_time() {
        let _ = writeln!(
            out,
            "latest decision: t={} ({:.2} x F_ack)",
            t.ticks(),
            t.ticks() as f64 / sched.f_ack() as f64
        );
    }
    if let Some(tt) = trace_text {
        let _ = writeln!(out, "{tt}");
    }
    if let Some(at) = audit_text {
        let _ = writeln!(out, "{at}");
    }
    if let Some(v) = check.violation {
        return Err(format!("{out}\nconsensus violation: {v}"));
    }
    Ok(out)
}

fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("trace (decide/crash events):");
    for ev in events {
        match ev {
            TraceEvent::Decide { time, slot, value } => {
                let _ = write!(out, "\n  t={:>6} {slot} decides {value}", time.ticks());
            }
            TraceEvent::Crash { time, slot } => {
                let _ = write!(out, "\n  t={:>6} {slot} CRASHES", time.ticks());
            }
            _ => {}
        }
    }
    out
}

fn check(
    algo: AlgoSpec,
    topo_spec: TopoSpec,
    inputs_spec: InputSpec,
    crash_budget: usize,
    max_states: usize,
    bfs: bool,
) -> Result<String, String> {
    let topo = topo_spec.build();
    let n = topo.len();
    let inputs = inputs_spec.materialize(n)?;
    let cfg = ExploreConfig {
        max_states,
        order: if bfs {
            SearchOrder::Bfs
        } else {
            SearchOrder::Dfs
        },
        ..ExploreConfig::default()
    };

    macro_rules! explore {
        ($procs:expr) => {{
            let explorer = Explorer::new(topo.clone(), $procs, inputs.clone(), crash_budget);
            explorer.run(cfg)
        }};
    }

    let out = match algo {
        AlgoSpec::TwoPhase => {
            require_clique(algo, &topo)?;
            explore!(inputs.iter().map(|&v| TwoPhase::new(v)).collect())
        }
        AlgoSpec::Bitwise(bits) => {
            require_clique(algo, &topo)?;
            explore!(inputs
                .iter()
                .map(|&v| BitwiseTwoPhase::new(v, bits))
                .collect())
        }
        AlgoSpec::TreeGather => explore!(inputs.iter().map(|&v| TreeGather::new(v, n)).collect()),
        AlgoSpec::FloodGather => {
            explore!(inputs.iter().map(|&v| FloodGather::new(v, n)).collect())
        }
        other => {
            return Err(format!(
                "`{}` is not checker-compatible (randomized or clock-driven); \
                 supported: two-phase, bitwise:<b>, tree-gather, flood-gather",
                other.name()
            ))
        }
    };

    let mut text = String::new();
    let _ = writeln!(
        text,
        "checked {} on {} (n={n}), inputs {:?}, crash budget {crash_budget}",
        algo.name(),
        topo_spec.text,
        inputs
    );
    let _ = writeln!(
        text,
        "explored {} states ({} terminal), deepest schedule {} moves{}",
        out.states,
        out.terminal_states,
        out.max_depth_reached,
        if out.truncated { " — TRUNCATED" } else { "" }
    );
    match out.violations.first() {
        None if !out.truncated => {
            let _ = writeln!(
                text,
                "VERIFIED: agreement, validity, and termination hold on every schedule"
            );
        }
        None => {
            let _ = writeln!(
                text,
                "no violation found, but the cover is incomplete — raise --max-states"
            );
        }
        Some(v) => {
            let _ = writeln!(text, "VIOLATION: {:?}", v.kind);
            let _ = writeln!(text, "decisions: {:?}", v.decisions);
            let _ = writeln!(text, "schedule ({} moves):", v.schedule.len());
            for c in &v.schedule {
                let _ = writeln!(text, "  {c:?}");
            }
        }
    }
    Ok(text)
}

fn fuzz(
    algo: AlgoSpec,
    topo_spec: TopoSpec,
    inputs_spec: InputSpec,
    crash_budget: usize,
    walks: usize,
    seed: u64,
) -> Result<String, String> {
    let topo = topo_spec.build();
    let n = topo.len();
    let inputs = inputs_spec.materialize(n)?;
    let cfg = FuzzConfig {
        walks,
        seed,
        ..FuzzConfig::default()
    };

    macro_rules! campaign {
        ($procs:expr) => {{
            Explorer::new(topo.clone(), $procs, inputs.clone(), crash_budget).fuzz(cfg)
        }};
    }

    let out = match algo {
        AlgoSpec::TwoPhase => {
            require_clique(algo, &topo)?;
            campaign!(inputs.iter().map(|&v| TwoPhase::new(v)).collect())
        }
        AlgoSpec::Bitwise(bits) => {
            require_clique(algo, &topo)?;
            campaign!(inputs
                .iter()
                .map(|&v| BitwiseTwoPhase::new(v, bits))
                .collect())
        }
        AlgoSpec::Wpaxos => {
            campaign!(inputs
                .iter()
                .map(|&v| WpaxosNode::new(v, WpaxosConfig::new(n)))
                .collect())
        }
        AlgoSpec::TreeGather => campaign!(inputs.iter().map(|&v| TreeGather::new(v, n)).collect()),
        AlgoSpec::FloodGather => {
            campaign!(inputs.iter().map(|&v| FloodGather::new(v, n)).collect())
        }
        other => {
            return Err(format!(
                "`{}` is not fuzz-compatible (randomized or clock-driven); \
                 supported: two-phase, bitwise:<b>, wpaxos, tree-gather, flood-gather",
                other.name()
            ))
        }
    };

    let mut text = String::new();
    let _ = writeln!(
        text,
        "fuzzed {} on {} (n={n}), inputs {:?}, crash budget {crash_budget}",
        algo.name(),
        topo_spec.text,
        inputs
    );
    let _ = writeln!(
        text,
        "{} walks ({} decided, {} stuck-terminal, {} truncated), {} total moves, longest walk {}",
        out.walks,
        out.decided_walks,
        out.terminal_walks,
        out.truncated_walks,
        out.total_moves,
        out.max_walk_moves
    );
    match out.violations.first() {
        None => {
            let _ = writeln!(
                text,
                "CLEAN: no walk violated agreement/validity/termination"
            );
        }
        Some(v) => {
            let _ = writeln!(text, "VIOLATION: {:?}", v.kind);
            let _ = writeln!(text, "decisions: {:?}", v.decisions);
            let _ = writeln!(text, "schedule ({} moves):", v.schedule.len());
            for c in &v.schedule {
                let _ = writeln!(text, "  {c:?}");
            }
        }
    }
    Ok(text)
}

fn describe_topo(spec: &TopoSpec) -> String {
    let topo = spec.build();
    let n = topo.len();
    let degrees: Vec<usize> = (0..n).map(|i| topo.degree(Slot(i))).collect();
    let mut out = String::new();
    let _ = writeln!(out, "topology {}", spec.text);
    let _ = writeln!(
        out,
        "n = {n}, edges = {}, connected = {}, diameter = {}",
        topo.edge_count(),
        topo.is_connected(),
        topo.diameter()
    );
    let _ = writeln!(
        out,
        "degree: min {} / max {} / mean {:.2}",
        degrees.iter().min().copied().unwrap_or(0),
        degrees.iter().max().copied().unwrap_or(0),
        if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        }
    );
    if n <= 16 {
        for i in 0..n {
            let nb: Vec<String> = topo
                .neighbors(Slot(i))
                .iter()
                .map(|s| s.index().to_string())
                .collect();
            let _ = writeln!(out, "  {i}: {}", nb.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::run_cli;

    fn cli(s: &str) -> Result<String, String> {
        run_cli(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn run_two_phase_on_clique() {
        let out = cli("run --algo two-phase --topo clique:5 --sched sync:2").unwrap();
        assert!(out.contains("agreement=true"), "{out}");
        assert!(out.contains("latest decision: t=4"), "{out}");
    }

    #[test]
    fn run_wpaxos_on_grid_with_trace_and_audit() {
        let out =
            cli("run --algo wpaxos --topo grid:3x2 --sched random:3:9 --trace --audit").unwrap();
        assert!(out.contains("decides"), "{out}");
        assert!(out.contains("violations: none"), "{out}");
    }

    #[test]
    fn run_fd_paxos_with_crash() {
        let out = cli("run --algo fd-paxos --topo clique:5 --sched random:4:3 \
             --crash slot=0,bcast=1,delivered=2 --inputs const:6")
        .unwrap();
        assert!(out.contains("decided=Some(6)"), "{out}");
    }

    #[test]
    fn run_bitwise_with_wide_inputs() {
        let out = cli("run --algo bitwise:4 --topo clique:3 --sched max-delay:2 --inputs 9,5,12")
            .unwrap();
        assert!(out.contains("agreement=true"), "{out}");
    }

    #[test]
    fn single_hop_algorithms_reject_multihop_topologies() {
        let err = cli("run --algo two-phase --topo line:4").unwrap_err();
        assert!(err.contains("single-hop"), "{err}");
        let err = cli("run --algo ben-or --topo ring:5").unwrap_err();
        assert!(err.contains("single-hop"), "{err}");
    }

    #[test]
    fn binary_algorithms_reject_wide_inputs() {
        let err = cli("run --algo two-phase --topo clique:3 --inputs 0,1,2").unwrap_err();
        assert!(err.contains("binary"), "{err}");
        let err = cli("run --algo bitwise:2 --topo clique:2 --inputs 1,9").unwrap_err();
        assert!(err.contains("does not fit"), "{err}");
    }

    #[test]
    fn check_verifies_two_phase_pair() {
        let out = cli("check --algo two-phase --topo clique:2 --inputs 0,1").unwrap();
        assert!(out.contains("VERIFIED"), "{out}");
    }

    #[test]
    fn check_finds_crash_violation() {
        let out =
            cli("check --algo two-phase --topo clique:2 --inputs 0,1 --crash-budget 1").unwrap();
        assert!(out.contains("VIOLATION"), "{out}");
        assert!(out.contains("schedule"), "{out}");
    }

    #[test]
    fn check_bfs_gives_a_schedule_no_longer_than_dfs() {
        let sched_len = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("schedule ("))
                .and_then(|l| {
                    l.split_once('(')?
                        .1
                        .split_whitespace()
                        .next()?
                        .parse::<usize>()
                        .ok()
                })
                .expect("schedule length line")
        };
        let dfs =
            cli("check --algo two-phase --topo clique:2 --inputs 0,1 --crash-budget 1").unwrap();
        let bfs = cli("check --algo two-phase --topo clique:2 --inputs 0,1 --crash-budget 1 --bfs")
            .unwrap();
        assert!(sched_len(&bfs) <= sched_len(&dfs), "bfs: {bfs}\ndfs: {dfs}");
    }

    #[test]
    fn check_rejects_randomized_algorithms() {
        let err = cli("check --algo ben-or --topo clique:3").unwrap_err();
        assert!(err.contains("not checker-compatible"), "{err}");
    }

    #[test]
    fn fuzz_wpaxos_clean_on_a_grid() {
        let out = cli("fuzz --algo wpaxos --topo grid:2x2 --walks 5 --seed 3").unwrap();
        assert!(out.contains("CLEAN"), "{out}");
        assert!(out.contains("5 walks (5 decided"), "{out}");
    }

    #[test]
    fn fuzz_finds_crash_violation() {
        let out = cli("fuzz --algo flood-gather --topo clique:3 --inputs 0,1,1 \
             --crash-budget 1 --walks 50 --seed 2")
        .unwrap();
        assert!(out.contains("VIOLATION: Termination"), "{out}");
    }

    #[test]
    fn fuzz_rejects_clock_driven_algorithms() {
        let err = cli("fuzz --algo fd-paxos --topo clique:3").unwrap_err();
        assert!(err.contains("not fuzz-compatible"), "{err}");
    }

    #[test]
    fn sweep_list_names_the_catalogue() {
        let out = cli("sweep --list").unwrap();
        assert!(out.contains("partition-heal"), "{out}");
        assert!(out.contains("quorum-timed-crashes"), "{out}");
        assert!(out.contains("scenario catalogue"), "{out}");
        assert!(out.contains("explored-ack-early-witness"), "{out}");
        assert!(out.contains("wpaxos-majority-loss-stall"), "{out}");
        assert!(out.contains("expects stall"), "{out}");
    }

    #[test]
    fn explore_verifies_a_clean_pair() {
        let out = cli("explore --algo two-phase --topo clique:2 --inputs 0,1").unwrap();
        assert!(out.contains("VERIFIED"), "{out}");
        assert!(out.contains("reduction dpor"), "{out}");
        let naive = cli("explore --algo two-phase --topo clique:2 --inputs 0,1 --naive").unwrap();
        assert!(naive.contains("VERIFIED"), "{naive}");
        assert!(naive.contains("reduction naive"), "{naive}");
    }

    #[test]
    fn explore_finds_seeded_bug_and_round_trips_the_counterexample() {
        let out = cli("explore --algo two-phase --topo clique:2 --inputs 0,1 --mutate ack-early")
            .unwrap();
        assert!(out.contains("mutation ack-early"), "{out}");
        assert!(out.contains("VIOLATION"), "{out}");
        assert!(out.contains("lowered scenario"), "{out}");
        assert!(out.contains("round-trip ok"), "{out}");
    }

    #[test]
    fn explore_finds_drop_releases_bug_under_a_crash_budget() {
        let out = cli("explore --algo two-phase --topo clique:3 --inputs 0,1,1 \
             --crash-budget 1 --mutate drop-releases")
        .unwrap();
        assert!(out.contains("VIOLATION: Termination"), "{out}");
        assert!(out.contains("round-trip ok"), "{out}");
    }

    #[test]
    fn explore_round_trips_a_genuine_crash_stall() {
        // No mutation: the violation is a real property of two-phase
        // (it is not crash tolerant), so the round trip gates on
        // engine byte-identity and safety rather than termination —
        // this particular stall needs the delivery-before-ack fine
        // structure scripted delays cannot pin, so the engine
        // terminates while the threaded runtime's jitter can still
        // wedge.
        let out =
            cli("explore --algo two-phase --topo clique:2 --inputs 0,1 --crash-budget 1").unwrap();
        assert!(out.contains("VIOLATION: Termination"), "{out}");
        assert!(out.contains("round-trip ok"), "{out}");
        assert!(out.contains("byte-identical across queue cores"), "{out}");
        assert!(
            out.contains("terminates under this scripted timing"),
            "{out}"
        );
    }

    #[test]
    fn explore_reports_truncation_honestly() {
        let out = cli("explore --algo two-phase --topo clique:3 --inputs 0,1,1 \
             --max-states 5")
        .unwrap();
        assert!(out.contains("TRUNCATED"), "{out}");
        assert!(out.contains("cover is incomplete"), "{out}");
        assert!(!out.contains("VERIFIED"), "{out}");
    }

    #[test]
    fn explore_rejects_bad_instances() {
        let err = cli("explore --algo ben-or --topo clique:3").unwrap_err();
        assert!(err.contains("not explorable"), "{err}");
        let err = cli("explore --algo two-phase --topo barbell:4:2").unwrap_err();
        assert!(err.contains("no scenario-descriptor form"), "{err}");
        let err = cli("explore --algo two-phase --topo clique:2 --inputs 0,1 --mutate late-ack")
            .unwrap_err();
        assert!(err.contains("unknown mutation"), "{err}");
    }

    #[test]
    fn sweep_single_scenario_passes() {
        let out = cli("sweep --scenario sync-lockstep --seeds 1").unwrap();
        assert!(out.contains("sweep OK"), "{out}");
        assert!(out.contains("sync-lockstep"), "{out}");
        assert!(out.contains("1 runs, 1 passed, 0 failed"), "{out}");
    }

    #[test]
    fn sweep_smoke_runs_the_ci_subset() {
        let out = cli("sweep --smoke --seeds 1").unwrap();
        assert!(out.contains("sweep OK"), "{out}");
        assert!(out.contains("partition-heal"), "{out}");
        assert!(out.contains("0 failed"), "{out}");
    }

    #[test]
    fn sweep_rejects_unknown_scenarios() {
        let err = cli("sweep --scenario nope").unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn crosscheck_with_sched_and_crash() {
        let out = cli(
            "crosscheck --algo wpaxos --topo clique:5 --sched dual:2:8:3 \
             --crash slot=0,time=3 --inputs const:4 --seed 5",
        )
        .unwrap();
        assert!(out.contains("cross-check OK"), "{out}");
        assert!(out.contains("engine sched"), "{out}");
        assert!(out.contains("crashes (both backends)"), "{out}");
    }

    #[test]
    fn crosscheck_accepts_queue_core_selection() {
        let out = cli(
            "crosscheck --algo two-phase --topo clique:4 --inputs const:1 \
             --queue calendar --strict",
        )
        .unwrap();
        assert!(out.contains("cross-check OK"), "{out}");
        assert!(out.contains("engine queue core: calendar"), "{out}");
        let err = cli("crosscheck --algo wpaxos --topo clique:3 --queue fifo").unwrap_err();
        assert!(err.contains("unknown queue core"), "{err}");
    }

    #[test]
    fn sweep_row_reports_core_equivalence() {
        let out = cli("sweep --scenario multi-cut-heal --seeds 1 --queue calendar").unwrap();
        assert!(out.contains("sweep OK"), "{out}");
        assert!(out.contains("cores identical"), "{out}");
        assert!(out.contains("calendar core"), "{out}");
    }

    #[test]
    fn sweep_row_reports_shard_equivalence_and_counters() {
        let out = cli("sweep --scenario torus-multi-cut --seeds 1").unwrap();
        assert!(out.contains("sweep OK"), "{out}");
        assert!(out.contains("shards identical"), "{out}");
        assert!(out.contains("serial vs sharded (S={2,4})"), "{out}");
        // The counter columns are present and aligned under headers.
        for col in ["xdeliv", "windows", "flushes", "skew%", "pclones"] {
            assert!(out.contains(col), "missing column {col}: {out}");
        }
    }

    #[test]
    fn sweep_accepts_a_pinned_shard_count() {
        let out = cli("sweep --scenario sync-lockstep --seeds 1 --shards 3").unwrap();
        assert!(out.contains("sweep OK"), "{out}");
        assert!(out.contains("serial vs sharded (S={3})"), "{out}");
    }

    #[test]
    fn run_sharded_reports_counters_and_matches_serial() {
        let serial = cli("run --algo wpaxos --topo torus:4x4 --sched random:4:9").unwrap();
        let sharded =
            cli("run --algo wpaxos --topo torus:4x4 --sched random:4:9 --shards 4").unwrap();
        assert!(
            sharded.contains("shards: 4 | cross-shard deliveries"),
            "{sharded}"
        );
        // Identical outcome line (the sharded line is extra).
        let outcome = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("outcome:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(outcome(&serial), outcome(&sharded));
    }

    #[test]
    fn sweep_row_reports_threaded_equivalence_and_barrier_column() {
        let out = cli("sweep --scenario sync-lockstep --seeds 1 --threads 2").unwrap();
        assert!(out.contains("sweep OK"), "{out}");
        assert!(out.contains("shards identical"), "{out}");
        assert!(out.contains("threaded identical"), "{out}");
        assert!(out.contains("parallel-stepped (T=2)"), "{out}");
        assert!(out.contains("barrier%"), "{out}");
    }

    #[test]
    fn run_threaded_reports_worker_timers_and_matches_serial() {
        let serial = cli("run --algo wpaxos --topo torus:4x4 --sched random:4:9").unwrap();
        let threaded = cli("run --algo wpaxos --topo torus:4x4 --sched random:4:9 \
             --shards 4 --threads 2")
        .unwrap();
        assert!(threaded.contains("threads: 2 | busy"), "{threaded}");
        assert!(threaded.contains("barrier wait"), "{threaded}");
        assert!(threaded.contains("pool: spawns"), "{threaded}");
        assert!(threaded.contains("| supersteps"), "{threaded}");
        let outcome = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("outcome:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(outcome(&serial), outcome(&threaded));
    }

    #[test]
    fn run_accepts_window_batch_and_matches_serial() {
        let serial = cli("run --algo wpaxos --topo torus:4x4 --sched random:4:9").unwrap();
        let batched = cli("run --algo wpaxos --topo torus:4x4 --sched random:4:9 \
             --shards 4 --threads 2 --window-batch 8")
        .unwrap();
        assert!(batched.contains("pool: spawns"), "{batched}");
        let outcome = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("outcome:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(outcome(&serial), outcome(&batched));
    }

    #[test]
    fn crosscheck_accepts_threads() {
        let out = cli(
            "crosscheck --algo two-phase --topo clique:4 --inputs const:1 \
             --shards 2 --threads 2 --strict",
        )
        .unwrap();
        assert!(out.contains("cross-check OK"), "{out}");
        assert!(out.contains("engine threads: 2"), "{out}");
    }

    #[test]
    fn crosscheck_accepts_shards() {
        let out = cli(
            "crosscheck --algo two-phase --topo clique:4 --inputs const:1 \
             --shards 2 --strict",
        )
        .unwrap();
        assert!(out.contains("cross-check OK"), "{out}");
        assert!(out.contains("engine shards: 2"), "{out}");
        let err = cli("crosscheck --algo wpaxos --topo clique:3 --shards 0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn crosscheck_rejects_out_of_range_crash() {
        let err =
            cli("crosscheck --algo wpaxos --topo clique:3 --crash slot=9,time=1").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn crosscheck_rejects_strict_with_crashes() {
        let err = cli(
            "crosscheck --algo two-phase --topo clique:4 --inputs const:1 \
             --crash slot=0,time=40 --strict",
        )
        .unwrap_err();
        assert!(err.contains("unsound"), "{err}");
    }

    #[test]
    fn topo_report_includes_stats() {
        let out = cli("topo --topo barbell:4:2").unwrap();
        assert!(out.contains("n = 10"), "{out}");
        assert!(out.contains("connected = true"), "{out}");
    }

    #[test]
    fn load_list_names_the_catalogue() {
        let out = cli("load --list").unwrap();
        assert!(out.contains("load-steady-state"), "{out}");
        assert!(out.contains("load-crash-steady-state"), "{out}");
        assert!(out.contains("load-partition-backlog"), "{out}");
        assert!(out.contains("partition heals"), "{out}");
    }

    #[test]
    fn load_sweep_reports_identity_columns() {
        let out = cli("load --scenario load-steady-state --duration 4000 --rate 5").unwrap();
        assert!(out.contains("load-steady-state"), "{out}");
        assert!(out.contains("cores identical"), "{out}");
        assert!(out.contains("shards identical"), "{out}");
        assert!(out.contains("threaded identical"), "{out}");
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("load OK"), "{out}");
    }

    #[test]
    fn load_pinned_engine_reports_the_latency_surface() {
        // All three engine flags are pinned so the expectation holds
        // whatever AMACL_* environment the suite runs under (CI runs
        // the whole suite with AMACL_THREADS=4 etc.; an explicit flag
        // must beat the env var).
        let out = cli("load --scenario load-steady-state --duration 4000 \
             --queue calendar --shards 2 --threads 1")
        .unwrap();
        assert!(
            out.contains("pinned engine (calendar core, S=2, T=1)"),
            "{out}"
        );
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("decided/kilotick"), "{out}");
        assert!(!out.contains("identical"), "{out}");
    }

    #[test]
    fn load_rejects_unknown_scenarios() {
        let err = cli("load --scenario nope").unwrap_err();
        assert!(err.contains("unknown load scenario"), "{err}");
    }

    #[test]
    fn crash_slot_out_of_range_is_rejected() {
        let err = cli("run --algo wpaxos --topo line:3 --crash slot=9,time=1").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn explicit_input_length_mismatch_is_rejected() {
        let err = cli("run --algo wpaxos --topo line:3 --inputs 0,1").unwrap_err();
        assert!(err.contains("2 inputs given"), "{err}");
    }
}
