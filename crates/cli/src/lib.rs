//! # `amacl-cli`: command-line driver for the `amacl` workspace
//!
//! Exposes the library's algorithms, topologies, schedulers, crash
//! injection, conformance auditing, and the exhaustive model checker
//! behind one binary:
//!
//! ```text
//! amacl run   --algo wpaxos --topo grid:6x4 --sched random:4:42
//! amacl run   --algo two-phase --topo clique:8 --sched max-delay:16 --trace
//! amacl run   --algo fd-paxos --topo clique:5 --crash slot=0,bcast=1,delivered=2
//! amacl check --algo two-phase --topo clique:3 --inputs 0,1,1 --crash-budget 1
//! amacl fuzz  --algo wpaxos --topo grid:3x3 --walks 200
//! amacl topo  --topo barbell:6:3
//! ```
//!
//! Everything is plain-text specs (`family:params`), parsed by
//! [`spec`]; [`exec`] maps a parsed [`Command`](spec::Command) onto the
//! library and renders a report. The crate is a thin, well-tested shim:
//! all semantics live in the workspace libraries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod spec;

/// Parses `args` (without the program name) and executes the command,
/// returning the rendered report.
///
/// # Errors
///
/// Returns a usage/parse/execution error message intended for stderr.
pub fn run_cli(args: &[String]) -> Result<String, String> {
    let cmd = spec::Command::parse(args)?;
    exec::execute(cmd)
}

/// The top-level usage text.
pub const USAGE: &str = "\
amacl — consensus with an abstract MAC layer (Newport, PODC 2014)

USAGE:
  amacl run   --algo <ALGO> --topo <TOPO> [--sched <SCHED>] [--inputs <INPUTS>]
              [--crash <CRASH>]... [--trace] [--audit] [--id-budget <N>]
              [--queue heap|calendar] [--shards <S>] [--threads <T>]
              [--window-batch auto|<K>]
  amacl check --algo <ALGO> --topo <TOPO> [--inputs <INPUTS>]
              [--crash-budget <N>] [--max-states <N>] [--bfs]
  amacl fuzz  --algo <ALGO> --topo <TOPO> [--inputs <INPUTS>]
              [--crash-budget <N>] [--walks <N>] [--seed <S>]
  amacl topo  --topo <TOPO>
  amacl crosscheck --algo <ALGO> --topo <TOPO> [--inputs <INPUTS>]
              [--sched <SCHED>] [--crash <CRASH>]... [--f-ack <N>]
              [--seed <S>] [--jitter-us <N>] [--timeout-ms <N>] [--strict]
              [--queue heap|calendar] [--shards <S>] [--threads <T>]
              [--window-batch auto|<K>]
  amacl explore --algo <ALGO> --topo <TOPO> [--inputs <INPUTS>]
              [--crash-budget <N>] [--max-states <N>] [--max-depth <N>]
              [--naive] [--mutate none|ack-early|drop-releases]
  amacl sweep [--smoke] [--scenario <NAME>] [--seeds <N>] [--list]
              [--queue heap|calendar] [--shards <S>] [--threads <T>]
              [--window-batch auto|<K>]
  amacl load  [--scenario <NAME>] [--arrival det|poisson] [--rate <R>]
              [--duration <TICKS>] [--seed <S>] [--list]
              [--queue heap|calendar] [--shards <S>] [--threads <T>]
              [--window-batch auto|<K>]

ALGO:    two-phase | wpaxos | tree-gather | flood-gather | bitwise:<bits>
         | ben-or | fd-paxos[:<initial-timeout>]
TOPO:    clique:<n> | line:<n> | ring:<n> | star:<n> | grid:<w>x<h>
         | torus:<w>x<h> | hypercube:<dim> | binary-tree:<levels>
         | barbell:<k>:<bridge> | star-of-lines:<arms>:<len>
         | caterpillar:<spine>:<legs> | lollipop:<k>:<tail>
         | random:<n>:<p>:<seed> | random-tree:<n>:<seed>
SCHED:   sync:<F_ack> | max-delay:<F_ack> | random:<F_ack>:<seed>
         | dual:<F_prog>:<F_ack>:<seed>          (default: random:4:42)
INPUTS:  alt | const:<v> | random:<seed>[:<max>] | <v0>,<v1>,...
         (default: alt — alternating 0,1,0,1,...)
CRASH:   slot=<s>,time=<t>  |  slot=<s>,bcast=<nth>,delivered=<k>

`check` explores EVERY schedule (and crash placement within the budget)
for the instance and reports either full verification or a violating
schedule. Supported: two-phase, bitwise, tree-gather, flood-gather.

`fuzz` runs random walks over the same unrestricted scheduler space at
sizes `check` cannot cover (additionally supports wpaxos), checking
safety at every move.

`crosscheck` runs the same algorithm on BOTH execution backends — the
discrete-event engine and the threaded runtime — through the shared
`MacLayer` trait, verifies agreement/termination/validity on each, and
reports the first diverging slot with both backends' views. `--sched`
picks the engine-side adversary; `--crash` injects the same crash plan
into both backends (timed crashes map onto wall-clock deadlines on the
threaded side). `--strict` additionally demands bit-identical decisions
(sound only for crash-free, input-determined instances, e.g. uniform
inputs). `--queue` pins the engine's event-queue core (default: the
AMACL_QUEUE_CORE env var, else heap). fd-paxos is excluded (its
timeouts are clock-scale dependent).

`explore` model-checks the MacLayer seam itself: it enumerates every
delivery/ack/crash interleaving of the shared broadcast ledger (DPOR
with sleep sets by default; `--naive` for plain DFS + state dedup) and
judges agreement/validity/termination in every reachable state.
`--mutate` seeds a deliberate ledger bug (`ack-early` confirms
broadcasts before all deliveries land; `drop-releases` leaks the ack
obligations of crashed nodes) — the explorer must then find a
violating schedule, and the command lowers it into a scripted-scheduler
+ crash-plan scenario and proves the round trip: the lowered scenario
sweeps clean on the real backends, so it can be enrolled in the
catalogue verbatim (`explored-ack-early-witness` is one such entry).
A violation found with NO mutation is instead a genuine property of
the algorithm (e.g. two-phase is not crash tolerant); since such a
stall is existential — one backend's timing may escape the exact
interleaving — its round trip gates on engine byte-identity across
queue cores and shard counts plus safety, and reports whether the
engine reproduces the stall. Supported: two-phase, wpaxos (note
wPAXOS's untimed ballot space is far too large to cover exhaustively
— expect truncation).

`sweep` runs the named adversarial scenario catalogue — healing
partitions (single and multi-cut, line and torus), quorum-member timed
crashes, crash storms at the f = minority boundary (cliques and random
trees), partial-delivery crashes, slow-ack/fast-progress skew (grids
and hypercubes), scripted worst-case interleavings — on both backends,
fanned out over worker threads, and fails on any divergence or
property violation. Every row additionally (a) runs the engine once
per queue core (heap and calendar) and (b) runs the SHARDED engine
(default S in {2, 4}, alternating cores) and fails unless every report
is byte-identical to serial; the cross-shard counters (mailbox
deliveries, window advances, flushes, load skew) are printed as
aligned columns. `--queue` picks the core used for the vs-threads
comparison; `--shards` pins the serial-vs-sharded proof to one shard
count. `--smoke` is the bounded subset CI runs on every PR; `--list`
prints the catalogue.

`load` drives an OPEN-LOOP sustained workload: client requests arrive
continuously at a target rate (`--arrival det` evenly spaced, `poisson`
exponential inter-arrival; `--rate` requests per 1000 ticks over
`--duration` ticks), queue at a single proposer, and are decided by a
pipeline of consensus instances over the bitwise machinery against one
long-lived engine. It reports submit-to-decide latency histograms
(p50/p99/p999/max) and sustained decisions per kilotick. By default
every scenario — steady state, a follower crash mid-run, a partition
building backlog before healing — is swept across the identity grid
(heap vs calendar, serial vs sharded, parallel-stepped) and fails
unless the trace, the histogram, and every per-request latency are
byte-identical; with an engine flag the run is pinned to that
configuration and only the latency surface is reported.

`--queue/--shards/--threads/--window-batch` select the engine on every
engine-running subcommand (run, crosscheck, sweep, load) through one
shared parser and one resolution rule: an explicit flag beats the
`AMACL_QUEUE_CORE` / `AMACL_SHARDS` / `AMACL_THREADS` /
`AMACL_WINDOW_BATCH` env vars, which beat the serial-heap default
(`EngineConfig::from_env` is the single documented env route).
`--shards` executes the engine sharded (the conservative time-window
coordinator; identical results by construction, surfaced so the claim
is checkable from the CLI); `--threads` steps windows on a persistent
worker pool, and `--window-batch` caps how many consecutive windows
each pool wakeup covers (`auto` or a count >= 1 — pure wake-policy,
results stay byte-identical); a typo in any flag or env var is
rejected rather than silently ignored, with the same message
everywhere.
";
