//! Property tests for the cancellable event-queue core and the
//! determinism contract it gives the engine.
//!
//! 1. Pop order always equals the stable sort of pushes by
//!    `(time, class, insertion order)`.
//! 2. Cancelled events never fire; everything else fires exactly once.
//! 3. Identical seeds give identical traces (bit-reproducible engine
//!    runs), and differing runs are reported with a first-divergence
//!    diff, not a boolean.

use amacl_model::prelude::*;
use amacl_model::sim::conformance::compare_traces;
use amacl_model::sim::queue::EventQueue;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pops come out in (time, class, insertion) order — the queue's
    /// deterministic tie-break contract.
    #[test]
    fn pop_order_matches_stable_sort(
        pushes in vec((0u64..50, 0u8..3), 1..80),
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, c)) in pushes.iter().enumerate() {
            q.push(Time(t), c, i);
        }
        let mut expected: Vec<(u64, u8, usize)> = pushes
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| (t, c, i))
            .collect();
        expected.sort(); // stable; index is the final tie-break anyway
        let popped: Vec<(u64, u8, usize)> = std::iter::from_fn(|| q.pop())
            .map(|e| {
                let (t, c) = pushes[e.payload];
                prop_assert_eq!(e.time, Time(t));
                (t, c, e.payload)
            })
            .collect();
        prop_assert_eq!(popped, expected);
    }

    /// Cancelled entries never pop; live entries all pop, in order,
    /// and `len` tracks exactly the live count.
    #[test]
    fn cancelled_events_never_fire(
        pushes in vec((0u64..40, 0u8..3), 1..60),
        cancel_mask in vec(any::<bool>(), 60),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = pushes
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| q.push(Time(t), c, i))
            .collect();
        let mut live = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                prop_assert!(q.cancel(*id), "first cancel must succeed");
                prop_assert!(!q.cancel(*id), "second cancel must be a no-op");
            } else {
                live.push(i);
            }
        }
        prop_assert_eq!(q.len(), live.len());
        let mut fired = Vec::new();
        while let Some(e) = q.pop() {
            fired.push(e.payload);
        }
        // Exactly the live set fired, in (time, class, insertion) order.
        let mut expected = live.clone();
        expected.sort_by_key(|&i| (pushes[i].0, pushes[i].1, i));
        prop_assert_eq!(fired, expected);
        prop_assert!(q.is_empty());
    }

    /// Identical seeds → bit-identical engine traces, on any topology
    /// and schedule; `compare_traces` confirms with `None`.
    #[test]
    fn identical_seeds_give_identical_traces(
        seed in 0u64..500,
        n in 3usize..10,
        f_ack in 1u64..6,
    ) {
        let run = |s: u64| {
            let mut sim = SimBuilder::new(
                Topology::random_connected(n, 0.3, s),
                |slot| Flood { initiator: slot.index() == 0, relayed: false },
            )
            .scheduler(RandomScheduler::new(f_ack, s))
            .seed(s)
            .trace(true)
            .build();
            sim.run();
            sim.trace().events().to_vec()
        };
        let a = run(seed);
        let b = run(seed);
        let (ta, tb) = (to_trace(&a), to_trace(&b));
        prop_assert_eq!(compare_traces("a", &ta, "b", &tb), None);
    }
}

/// Minimal flooding process for the determinism properties.
struct Flood {
    initiator: bool,
    relayed: bool,
}

#[derive(Clone, Debug)]
struct Tok;
impl Payload for Tok {
    fn id_count(&self) -> usize {
        0
    }
}

impl Process for Flood {
    type Msg = Tok;
    fn on_start(&mut self, ctx: &mut Context<'_, Tok>) {
        if self.initiator {
            self.relayed = true;
            ctx.broadcast(Tok);
            ctx.decide(0);
        }
    }
    fn on_receive(&mut self, _m: Tok, ctx: &mut Context<'_, Tok>) {
        if !self.relayed {
            self.relayed = true;
            ctx.broadcast(Tok);
        }
        if ctx.decided().is_none() {
            ctx.decide(1);
        }
    }
    fn on_ack(&mut self, _ctx: &mut Context<'_, Tok>) {}
}

fn to_trace(events: &[amacl_model::sim::trace::TraceEvent]) -> amacl_model::sim::trace::Trace {
    let mut t = amacl_model::sim::trace::Trace::new(true);
    for &e in events {
        t.push(e);
    }
    t
}

/// Different seeds almost always diverge — and when they do, the diff
/// names the first differing event with both views.
#[test]
fn differing_seeds_report_a_first_divergence() {
    let run = |s: u64| {
        let mut sim = SimBuilder::new(Topology::random_connected(8, 0.3, 1), |slot| Flood {
            initiator: slot.index() == 0,
            relayed: false,
        })
        .scheduler(RandomScheduler::new(5, s))
        .seed(s)
        .trace(true)
        .build();
        sim.run();
        sim.trace().events().to_vec()
    };
    let mut diverged = 0;
    for seed in 0..10u64 {
        let (a, b) = (run(seed), run(seed + 100));
        if let Some(d) = compare_traces("left", &to_trace(&a), "right", &to_trace(&b)) {
            assert!(!d.left_view.is_empty() && !d.right_view.is_empty());
            assert!(d.to_string().contains("first divergence"), "{d}");
            diverged += 1;
        }
    }
    assert!(diverged > 0, "no seed pair diverged at all");
}
