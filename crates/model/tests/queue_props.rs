//! Property tests for the cancellable event-queue core and the
//! determinism contract it gives the engine.
//!
//! 1. Pop order always equals the stable sort of pushes by
//!    `(time, class, insertion order)`.
//! 2. Cancelled events never fire; everything else fires exactly once.
//! 3. Identical seeds give identical traces (bit-reproducible engine
//!    runs), and differing runs are reported with a first-divergence
//!    diff, not a boolean.
//! 4. The heap and calendar [`QueueCore`]s are observably identical:
//!    the same interleaved insert/cancel/pop workload produces the
//!    same pop sequence, cancel outcomes, and live counts on both —
//!    and whole engine executions produce bit-identical traces
//!    whichever core they run on.

use amacl_model::prelude::*;
use amacl_model::sim::conformance::compare_traces;
use amacl_model::sim::queue::EventQueue;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pops come out in (time, class, insertion) order — the queue's
    /// deterministic tie-break contract.
    #[test]
    fn pop_order_matches_stable_sort(
        pushes in vec((0u64..50, 0u8..3), 1..80),
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, c)) in pushes.iter().enumerate() {
            q.push(Time(t), c, i);
        }
        let mut expected: Vec<(u64, u8, usize)> = pushes
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| (t, c, i))
            .collect();
        expected.sort(); // stable; index is the final tie-break anyway
        let popped: Vec<(u64, u8, usize)> = std::iter::from_fn(|| q.pop())
            .map(|e| {
                let (t, c) = pushes[e.payload];
                prop_assert_eq!(e.time, Time(t));
                (t, c, e.payload)
            })
            .collect();
        prop_assert_eq!(popped, expected);
    }

    /// Cancelled entries never pop; live entries all pop, in order,
    /// and `len` tracks exactly the live count.
    #[test]
    fn cancelled_events_never_fire(
        pushes in vec((0u64..40, 0u8..3), 1..60),
        cancel_mask in vec(any::<bool>(), 60),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = pushes
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| q.push(Time(t), c, i))
            .collect();
        let mut live = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                prop_assert!(q.cancel(*id), "first cancel must succeed");
                prop_assert!(!q.cancel(*id), "second cancel must be a no-op");
            } else {
                live.push(i);
            }
        }
        prop_assert_eq!(q.len(), live.len());
        let mut fired = Vec::new();
        while let Some(e) = q.pop() {
            fired.push(e.payload);
        }
        // Exactly the live set fired, in (time, class, insertion) order.
        let mut expected = live.clone();
        expected.sort_by_key(|&i| (pushes[i].0, pushes[i].1, i));
        prop_assert_eq!(fired, expected);
        prop_assert!(q.is_empty());
    }

    /// Identical seeds → bit-identical engine traces, on any topology
    /// and schedule; `compare_traces` confirms with `None`.
    #[test]
    fn identical_seeds_give_identical_traces(
        seed in 0u64..500,
        n in 3usize..10,
        f_ack in 1u64..6,
    ) {
        let run = |s: u64| {
            let mut sim = SimBuilder::new(
                Topology::random_connected(n, 0.3, s),
                |slot| Flood { initiator: slot.index() == 0, relayed: false },
            )
            .scheduler(RandomScheduler::new(f_ack, s))
            .seed(s)
            .trace(true)
            .build();
            sim.run();
            sim.trace().events().to_vec()
        };
        let a = run(seed);
        let b = run(seed);
        let (ta, tb) = (to_trace(&a), to_trace(&b));
        prop_assert_eq!(compare_traces("a", &ta, "b", &tb), None);
    }

    /// The two queue cores are interchangeable: a random interleaved
    /// insert/cancel/pop workload (including far-future times that
    /// exercise the calendar's overflow tier and lazy resize) produces
    /// identical pop sequences, cancel outcomes, and live counts.
    #[test]
    fn heap_and_calendar_cores_agree_on_random_workloads(
        ops in vec(
            prop_oneof![
                // Pushes land at a time offset in a band that
                // straddles the calendar's ring horizon.
                (0u64..220, 0u8..3).prop_map(|(dt, c)| Op::Push(dt, c)),
                (0usize..64).prop_map(Op::Cancel),
                Just(Op::Pop),
            ],
            1..250,
        ),
    ) {
        let mut heap: EventQueue<usize> = EventQueue::with_core(QueueCoreKind::Heap);
        let mut cal: EventQueue<usize> = EventQueue::with_core(QueueCoreKind::Calendar);
        let mut ids: Vec<EventId> = Vec::new();
        let mut clock = 0u64; // pops never rewind time
        let mut payload = 0usize;
        for op in ops {
            match op {
                Op::Push(dt, class) => {
                    let t = Time(clock + dt);
                    let a = heap.push(t, class, payload);
                    let b = cal.push(t, class, payload);
                    prop_assert_eq!(a, b, "id allocation diverged");
                    ids.push(a);
                    payload += 1;
                }
                Op::Cancel(k) => {
                    if !ids.is_empty() {
                        let id = ids[k % ids.len()];
                        prop_assert_eq!(heap.cancel(id), cal.cancel(id));
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(heap.peek_time(), cal.peek_time());
                    let (a, b) = (heap.pop(), cal.pop());
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            prop_assert_eq!((x.time, x.id, x.payload), (y.time, y.id, y.payload));
                            clock = clock.max(x.time.ticks());
                        }
                        (x, y) => prop_assert!(false, "cores diverged: {:?} vs {:?}",
                            x.map(|e| e.payload), y.map(|e| e.payload)),
                    }
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
        // Drain both: the tails must match too.
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    prop_assert_eq!((x.time, x.id, x.payload), (y.time, y.id, y.payload));
                }
                _ => prop_assert!(false, "cores diverged while draining"),
            }
        }
        prop_assert_eq!(heap.cancelled_total(), cal.cancelled_total());
    }

    /// Swapping the queue core never changes an engine execution: the
    /// full event traces are bit-identical on random connected
    /// topologies under the random scheduler, with a crash injected.
    #[test]
    fn engine_traces_are_identical_across_queue_cores(
        seed in 0u64..300,
        n in 3usize..12,
        f_ack in 1u64..7,
        crash_slot in 0usize..12,
        crash_time in 1u64..20,
    ) {
        let run = |core: QueueCoreKind| {
            let mut sim = SimBuilder::new(
                Topology::random_connected(n, 0.3, seed),
                |slot| Flood { initiator: slot.index() == 0, relayed: false },
            )
            .scheduler(RandomScheduler::new(f_ack, seed))
            .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
                slot: Slot(crash_slot % n),
                time: Time(crash_time),
            }]))
            .seed(seed)
            .queue_core(core)
            .trace(true)
            .build();
            let report = sim.run();
            (sim.trace().events().to_vec(), report.end_time, report.metrics.events)
        };
        let (ta, ea, eva) = run(QueueCoreKind::Heap);
        let (tb, eb, evb) = run(QueueCoreKind::Calendar);
        prop_assert_eq!(ea, eb);
        prop_assert_eq!(eva, evb);
        prop_assert_eq!(
            compare_traces("heap", &to_trace(&ta), "calendar", &to_trace(&tb)),
            None
        );
    }
}

/// One step of the cross-core workload generator.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Push at `now + offset` in the given class band.
    Push(u64, u8),
    /// Cancel the `k % len`-th id handed out so far.
    Cancel(usize),
    /// Pop (and compare) one entry from both cores.
    Pop,
}

/// Minimal flooding process for the determinism properties.
struct Flood {
    initiator: bool,
    relayed: bool,
}

#[derive(Clone, Debug)]
struct Tok;
impl Payload for Tok {
    fn id_count(&self) -> usize {
        0
    }
}

impl Process for Flood {
    type Msg = Tok;
    fn on_start(&mut self, ctx: &mut Context<'_, Tok>) {
        if self.initiator {
            self.relayed = true;
            ctx.broadcast(Tok);
            ctx.decide(0);
        }
    }
    fn on_receive(&mut self, _m: Tok, ctx: &mut Context<'_, Tok>) {
        if !self.relayed {
            self.relayed = true;
            ctx.broadcast(Tok);
        }
        if ctx.decided().is_none() {
            ctx.decide(1);
        }
    }
    fn on_ack(&mut self, _ctx: &mut Context<'_, Tok>) {}
}

fn to_trace(events: &[amacl_model::sim::trace::TraceEvent]) -> amacl_model::sim::trace::Trace {
    let mut t = amacl_model::sim::trace::Trace::new(true);
    for &e in events {
        t.push(e);
    }
    t
}

/// Different seeds almost always diverge — and when they do, the diff
/// names the first differing event with both views.
#[test]
fn differing_seeds_report_a_first_divergence() {
    let run = |s: u64| {
        let mut sim = SimBuilder::new(Topology::random_connected(8, 0.3, 1), |slot| Flood {
            initiator: slot.index() == 0,
            relayed: false,
        })
        .scheduler(RandomScheduler::new(5, s))
        .seed(s)
        .trace(true)
        .build();
        sim.run();
        sim.trace().events().to_vec()
    };
    let mut diverged = 0;
    for seed in 0..10u64 {
        let (a, b) = (run(seed), run(seed + 100));
        if let Some(d) = compare_traces("left", &to_trace(&a), "right", &to_trace(&b)) {
            assert!(!d.left_view.is_empty() && !d.right_view.is_empty());
            assert!(d.to_string().contains("first divergence"), "{d}");
            diverged += 1;
        }
    }
    assert!(diverged > 0, "no seed pair diverged at all");
}
