//! Property tests for [`EngineConfig`]: the unified configuration
//! struct must be a pure repackaging of the older fluent knobs.
//!
//! 1. A `Sim` built via `.config(EngineConfig)` is byte-identical —
//!    full trace, end time, event count, decisions — to one built via
//!    the original fluent path (`.seed().queue_core().shards()
//!    .threads().crashes()`), for every knob combination.
//! 2. Knob-by-knob override order holds: a fluent setter applied
//!    *after* `.config()` wins over the config's value for that knob
//!    and only that knob.

use amacl_model::prelude::*;
use amacl_model::sim::conformance::compare_traces;
use proptest::prelude::*;

/// Minimal flooding process for the equivalence properties.
struct Flood {
    initiator: bool,
    relayed: bool,
}

#[derive(Clone, Debug)]
struct Tok;
impl Payload for Tok {
    fn id_count(&self) -> usize {
        0
    }
}

impl Process for Flood {
    type Msg = Tok;
    fn on_start(&mut self, ctx: &mut Context<'_, Tok>) {
        if self.initiator {
            self.relayed = true;
            ctx.broadcast(Tok);
            ctx.decide(0);
        }
    }
    fn on_receive(&mut self, _m: Tok, ctx: &mut Context<'_, Tok>) {
        if !self.relayed {
            self.relayed = true;
            ctx.broadcast(Tok);
        }
        if ctx.decided().is_none() {
            ctx.decide(1);
        }
    }
    fn on_ack(&mut self, _ctx: &mut Context<'_, Tok>) {}
}

/// The builder skeleton shared by both construction paths.
fn builder(n: usize, seed: u64, f_ack: u64) -> SimBuilder<Flood> {
    SimBuilder::new(Topology::random_connected(n, 0.3, seed), |slot| Flood {
        initiator: slot.index() == 0,
        relayed: false,
    })
    .scheduler(RandomScheduler::new(f_ack, seed))
    .trace(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `.config(cfg)` ≡ the original fluent path, for every knob
    /// combination (both queue cores, shards {1, 2, 4}, threads
    /// {1, 4}, with and without a timed crash).
    #[test]
    fn config_path_is_byte_identical_to_fluent_path(
        seed in 0u64..300,
        n in 3usize..12,
        f_ack in 1u64..7,
        core_idx in 0usize..2,
        shards_idx in 0usize..3,
        threaded in any::<bool>(),
        crashed in any::<bool>(),
        crash_slot in 1usize..12,
        crash_time in 1u64..20,
    ) {
        let core = [QueueCoreKind::Heap, QueueCoreKind::Calendar][core_idx];
        let shards = [1usize, 2, 4][shards_idx];
        let threads = if threaded { 4 } else { 1 };
        let plan = if crashed {
            CrashPlan::new(vec![CrashSpec::AtTime {
                slot: Slot(crash_slot % n),
                time: Time(crash_time),
            }])
        } else {
            CrashPlan::none()
        };

        let via_config = {
            let cfg = EngineConfig::new()
                .seed(seed)
                .queue_core(core)
                .shards(shards)
                .threads(threads)
                .crash_plan(plan.clone());
            let mut sim = builder(n, seed, f_ack).config(cfg).build();
            let report = sim.run();
            (sim.trace().clone(), report.end_time, report.metrics.events, sim.decisions().to_vec())
        };
        let via_fluent = {
            let mut sim = builder(n, seed, f_ack)
                .seed(seed)
                .queue_core(core)
                .shards(shards)
                .threads(threads)
                .crashes(plan)
                .build();
            let report = sim.run();
            (sim.trace().clone(), report.end_time, report.metrics.events, sim.decisions().to_vec())
        };

        prop_assert_eq!(via_config.1, via_fluent.1);
        prop_assert_eq!(via_config.2, via_fluent.2);
        prop_assert_eq!(via_config.3, via_fluent.3);
        prop_assert_eq!(
            compare_traces("config", &via_config.0, "fluent", &via_fluent.0),
            None
        );
    }

    /// Later fluent setters override the config knob-by-knob: seeding
    /// after `.config()` replaces only the seed, leaving the config's
    /// queue core in force — the result equals the pure fluent build
    /// with exactly those final values.
    #[test]
    fn fluent_setter_after_config_wins_knob_by_knob(
        seed_a in 0u64..150,
        seed_b in 150u64..300,
        n in 3usize..10,
        f_ack in 1u64..6,
    ) {
        let cfg = EngineConfig::new().seed(seed_a).queue_core(QueueCoreKind::Calendar);
        let overridden = {
            let mut sim = builder(n, seed_a, f_ack).config(cfg).seed(seed_b).build();
            let report = sim.run();
            (sim.trace().clone(), report.metrics.events)
        };
        let direct = {
            let mut sim = builder(n, seed_a, f_ack)
                .seed(seed_b)
                .queue_core(QueueCoreKind::Calendar)
                .build();
            let report = sim.run();
            (sim.trace().clone(), report.metrics.events)
        };
        prop_assert_eq!(overridden.1, direct.1);
        prop_assert_eq!(
            compare_traces("config+override", &overridden.0, "direct", &direct.0),
            None
        );
    }
}
