//! Engine-level integration scenarios: scheduler/crash/overlay
//! interplay, pause-resume semantics, and metric accounting.

use amacl_model::msg::Payload;
use amacl_model::prelude::*;
use amacl_model::proc::Context;
use amacl_model::sim::conformance::check_trace;
use amacl_model::topo::unreliable::UnreliableOverlay;

/// Flood-and-count probe used throughout.
struct Probe {
    relay: bool,
    relayed: bool,
    received: u64,
    acks: u64,
}

impl Probe {
    fn new(start: bool) -> Self {
        Self {
            relay: start,
            relayed: false,
            received: 0,
            acks: 0,
        }
    }
}

#[derive(Clone, Debug)]
struct Tok;
impl Payload for Tok {
    fn id_count(&self) -> usize {
        0
    }
}

impl Process for Probe {
    type Msg = Tok;
    fn on_start(&mut self, ctx: &mut Context<'_, Tok>) {
        if self.relay {
            self.relayed = true;
            ctx.broadcast(Tok);
        }
    }
    fn on_receive(&mut self, _m: Tok, ctx: &mut Context<'_, Tok>) {
        self.received += 1;
        if !self.relayed {
            self.relayed = true;
            ctx.broadcast(Tok);
        }
    }
    fn on_ack(&mut self, _ctx: &mut Context<'_, Tok>) {
        self.acks += 1;
    }
}

#[test]
fn max_delay_wavefront_is_exactly_hop_times_f_ack() {
    for f_ack in [1u64, 3, 9] {
        let mut sim = SimBuilder::new(Topology::line(7), |s| Probe::new(s.index() == 0))
            .scheduler(MaxDelayScheduler::new(f_ack))
            .trace(true)
            .stop_when_all_decided(false)
            .build();
        sim.run();
        // Node i first receives the wave at exactly i * f_ack.
        let mut first_recv = [None; 7];
        for ev in sim.trace().events() {
            if let amacl_model::sim::trace::TraceEvent::Deliver { time, to, .. } = ev {
                first_recv[to.index()].get_or_insert(*time);
            }
        }
        for i in 1..7u64 {
            assert_eq!(
                first_recv[i as usize],
                Some(Time(i * f_ack)),
                "F_ack={f_ack}, node {i}"
            );
        }
    }
}

#[test]
fn run_until_is_idempotent_at_the_same_time() {
    let mut sim = SimBuilder::new(Topology::line(5), |s| Probe::new(s.index() == 0))
        .scheduler(SynchronousScheduler::new(1))
        .stop_when_all_decided(false)
        .build();
    sim.run_until(Time(2));
    let received_at_2: Vec<u64> = (0..5).map(|i| sim.process(Slot(i)).received).collect();
    sim.run_until(Time(2));
    let received_again: Vec<u64> = (0..5).map(|i| sim.process(Slot(i)).received).collect();
    assert_eq!(received_at_2, received_again);
    assert_eq!(sim.now(), Time(2));
    // And time never goes backwards.
    sim.run_until(Time(1));
    assert_eq!(sim.now(), Time(2));
}

#[test]
fn unreliable_overlay_delivers_probabilistically() {
    // With p = 1 every overlay edge fires on every broadcast; with
    // p = 0 none do.
    let base = Topology::line(4);
    let overlay = UnreliableOverlay::new(&base, &[(0, 2), (0, 3)]);
    for (p, expect_extra) in [(1.0, true), (0.0, false)] {
        let mut sim = SimBuilder::new(base.clone(), |s| Probe::new(s.index() == 0))
            .scheduler(SynchronousScheduler::new(1))
            .unreliable(overlay.clone(), p)
            .stop_when_all_decided(false)
            .build();
        let report = sim.run();
        if expect_extra {
            assert!(
                report.metrics.unreliable_deliveries > 0,
                "p=1 delivered nothing"
            );
            // Nodes 2 and 3 heard node 0 directly despite no edge.
            assert!(sim.process(Slot(2)).received >= 2);
        } else {
            assert_eq!(report.metrics.unreliable_deliveries, 0);
        }
    }
}

#[test]
fn unreliable_deliveries_do_not_gate_acks() {
    // Even at p = 1, the ack schedule is unchanged: overlay targets are
    // not neighbors.
    let base = Topology::line(3);
    let overlay = UnreliableOverlay::new(&base, &[(0, 2)]);
    let mut sim = SimBuilder::new(base, |s| Probe::new(s.index() == 0))
        .scheduler(MaxDelayScheduler::new(4))
        .unreliable(overlay.clone(), 1.0)
        .trace(true)
        .stop_when_all_decided(false)
        .build();
    sim.run();
    let audit = check_trace(sim.topology(), sim.trace(), Some(4), Some(&overlay));
    audit.assert_ok();
}

#[test]
fn edge_delay_cut_plus_crash_interact_cleanly() {
    // A cut delays node 0's messages; node 0 also crashes before the
    // release. Nothing from node 0 is ever delivered, and the rest of
    // the run conforms.
    let topo = Topology::clique(4);
    let all: Vec<Slot> = topo.slots().collect();
    let mut sim = SimBuilder::new(topo, |s| Probe::new(s.index() == 0))
        .scheduler(EdgeDelayScheduler::new(
            SynchronousScheduler::new(1),
            vec![DirectedCut::new([Slot(0)], all, Time(100))],
        ))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(0),
            time: Time(10),
        }]))
        .trace(true)
        .stop_when_all_decided(false)
        .max_time(Time(500))
        .build();
    let report = sim.run();
    assert_eq!(report.metrics.crashes, 1);
    assert_eq!(
        report.metrics.deliveries, 0,
        "the cut + crash silenced node 0"
    );
    for i in 1..4 {
        assert_eq!(sim.process(Slot(i)).received, 0);
    }
    let audit = check_trace(sim.topology(), sim.trace(), None, None);
    audit.assert_ok();
}

#[test]
fn metrics_account_broadcasts_deliveries_acks_consistently() {
    for seed in 0..10u64 {
        let topo = Topology::random_connected(9, 0.25, seed);
        let degree_sum: u64 = topo.slots().map(|s| topo.degree(s) as u64).sum();
        let mut sim = SimBuilder::new(topo, |s| Probe::new(s.index() == 0))
            .scheduler(RandomScheduler::new(5, seed))
            .stop_when_all_decided(false)
            .build();
        let report = sim.run();
        // Everyone broadcasts exactly once (initiator at start, others
        // on first receive), so deliveries equal the degree sum and
        // acks equal n.
        assert_eq!(report.metrics.broadcasts, 9, "seed {seed}");
        assert_eq!(report.metrics.acks, 9, "seed {seed}");
        assert_eq!(report.metrics.deliveries, degree_sum, "seed {seed}");
        assert_eq!(report.metrics.busy_discards, 0, "seed {seed}");
    }
}

#[test]
fn scripted_scheduler_orders_cross_node_races_exactly() {
    // Slot 1's broadcast outruns slot 0's: node 2 (adjacent to both)
    // hears 1 first even though 0 started in the same instant.
    struct Order {
        start: bool,
        log: Vec<Time>,
    }
    #[derive(Clone, Debug)]
    struct T2;
    impl Payload for T2 {
        fn id_count(&self) -> usize {
            0
        }
    }
    impl Process for Order {
        type Msg = T2;
        fn on_start(&mut self, ctx: &mut Context<'_, T2>) {
            if self.start {
                ctx.broadcast(T2);
            }
        }
        fn on_receive(&mut self, _m: T2, ctx: &mut Context<'_, T2>) {
            self.log.push(ctx.now());
        }
        fn on_ack(&mut self, _ctx: &mut Context<'_, T2>) {}
    }
    let topo = Topology::from_edges(3, &[(0, 2), (1, 2)]);
    let mut sim = SimBuilder::new(topo, |s| Order {
        start: s.index() < 2,
        log: Vec::new(),
    })
    .scheduler(
        ScriptedScheduler::new(1)
            .delay(Slot(0), 0, 9)
            .delay(Slot(1), 0, 2),
    )
    .stop_when_all_decided(false)
    .build();
    sim.run();
    assert_eq!(sim.process(Slot(2)).log, vec![Time(2), Time(9)]);
}
