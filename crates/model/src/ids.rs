//! Node identity types.
//!
//! The model distinguishes between a node's *position* in the topology
//! (its [`Slot`], an index into the adjacency structure, known only to
//! the simulator) and its *logical identifier* (its [`NodeId`], the
//! unique id an algorithm may compare and embed in messages).
//!
//! Keeping these separate lets tests check that algorithms do not
//! depend on any relationship between ids and topology positions, and
//! lets *anonymous* algorithms simply never consult their [`NodeId`].

use std::fmt;

/// A node's position in the topology graph (simulator-internal).
///
/// Slots index the adjacency lists of a [`Topology`](crate::topo::Topology)
/// and are dense in `0..n`. Algorithms never see slots; they see
/// [`NodeId`]s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Slot(pub usize);

impl Slot {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A node's unique logical identifier.
///
/// The paper assumes ids are comparable and that messages may carry at
/// most a constant number of them (see [`Payload`](crate::msg::Payload)).
/// Ids are arbitrary `u64`s: the simulator can assign them as a
/// permutation unrelated to topology positions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the raw id value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_ordering_and_display() {
        assert!(Slot(1) < Slot(2));
        assert_eq!(Slot(7).to_string(), "s7");
        assert_eq!(Slot(7).index(), 7);
    }

    #[test]
    fn node_id_ordering_and_display() {
        assert!(NodeId(10) > NodeId(2));
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).raw(), 3);
    }
}
