//! Standard topology builders.
//!
//! These cover the workloads used throughout the evaluation: cliques
//! for the single-hop algorithm (Section 4.1), lines for the time lower
//! bound (Theorem 3.10), grids/tori/random graphs for general multihop
//! wPAXOS runs, and stars / stars-of-lines for the aggregation
//! bottleneck experiment (E3): a hub that must relay `Θ(n)` acceptor
//! responses with `O(1)` ids per message.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use super::graph::{Topology, TopologyBuilder};

impl Topology {
    /// Complete graph on `n` vertices (the single-hop setting).
    pub fn clique(n: usize) -> Self {
        let mut b = TopologyBuilder::new(n);
        let verts: Vec<usize> = (0..n).collect();
        b.clique_among(&verts);
        b.build()
    }

    /// Path `0 - 1 - ... - n-1` (diameter `n - 1`).
    pub fn line(n: usize) -> Self {
        let mut b = TopologyBuilder::new(n);
        let verts: Vec<usize> = (0..n).collect();
        b.path(&verts);
        b.build()
    }

    /// Cycle on `n >= 3` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 vertices");
        let mut b = TopologyBuilder::new(n);
        let verts: Vec<usize> = (0..n).collect();
        b.path(&verts);
        b.edge(n - 1, 0);
        b.build()
    }

    /// Star with hub `0` and `n - 1` leaves (diameter 2).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "star needs at least 2 vertices");
        let mut b = TopologyBuilder::new(n);
        for v in 1..n {
            b.edge(0, v);
        }
        b.build()
    }

    /// `w x h` grid; vertex `(x, y)` is slot `y * w + x`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "grid dimensions must be positive");
        let mut b = TopologyBuilder::new(w * h);
        for y in 0..h {
            for x in 0..w {
                let s = y * w + x;
                if x + 1 < w {
                    b.edge(s, s + 1);
                }
                if y + 1 < h {
                    b.edge(s, s + w);
                }
            }
        }
        b.build()
    }

    /// `w x h` torus (grid with wraparound); requires `w, h >= 3`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 3 (smaller wraps would
    /// create duplicate or self edges).
    pub fn torus(w: usize, h: usize) -> Self {
        assert!(w >= 3 && h >= 3, "torus needs both dimensions >= 3");
        let mut b = TopologyBuilder::new(w * h);
        for y in 0..h {
            for x in 0..w {
                let s = y * w + x;
                b.edge(s, y * w + (x + 1) % w);
                b.edge(s, ((y + 1) % h) * w + x);
            }
        }
        b.build()
    }

    /// Connected Erdos-Renyi-style random graph: a random spanning tree
    /// (guaranteeing connectivity) plus each remaining edge with
    /// probability `p`. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `p` is not in `[0, 1]`.
    pub fn random_connected(n: usize, p: f64, seed: u64) -> Self {
        assert!(n > 0, "random_connected needs at least one vertex");
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = TopologyBuilder::new(n);
        // Random spanning tree: attach each vertex (in a random order)
        // to a uniformly random earlier vertex.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for i in 1..n {
            let j = rng.gen_range(0..i);
            b.edge(order[i], order[j]);
        }
        for u in 0..n {
            for v in u + 1..n {
                if rng.gen_bool(p) {
                    b.edge(u, v);
                }
            }
        }
        b.build()
    }

    /// Uniformly random labeled tree on `n` vertices (via random
    /// attachment). Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_tree(n: usize, seed: u64) -> Self {
        Self::random_connected(n, 0.0, seed)
    }

    /// Barbell: two `k`-cliques joined by a path of `bridge` extra
    /// vertices. With `bridge = 0` the cliques share a single edge
    /// between their endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1`.
    pub fn barbell(k: usize, bridge: usize) -> Self {
        assert!(k >= 1, "barbell cliques need at least one vertex");
        let n = 2 * k + bridge;
        let mut b = TopologyBuilder::new(n);
        let left: Vec<usize> = (0..k).collect();
        let right: Vec<usize> = (k + bridge..n).collect();
        b.clique_among(&left);
        b.clique_among(&right);
        let mut chain = vec![k - 1];
        chain.extend(k..k + bridge);
        chain.push(k + bridge);
        b.path(&chain);
        b.build()
    }

    /// Star of lines: `arms` paths of `arm_len` vertices, all attached
    /// to a central hub (slot 0). Diameter `2 * arm_len`; size
    /// `arms * arm_len + 1`.
    ///
    /// This is the bottleneck workload for experiment E3: all traffic
    /// between arms funnels through the hub.
    ///
    /// # Panics
    ///
    /// Panics if `arms < 1` or `arm_len < 1`.
    pub fn star_of_lines(arms: usize, arm_len: usize) -> Self {
        assert!(arms >= 1 && arm_len >= 1);
        let n = arms * arm_len + 1;
        let mut b = TopologyBuilder::new(n);
        for a in 0..arms {
            let base = 1 + a * arm_len;
            b.edge(0, base);
            for i in 0..arm_len - 1 {
                b.edge(base + i, base + i + 1);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Slot;

    #[test]
    fn clique_shape() {
        let t = Topology::clique(5);
        assert_eq!(t.edge_count(), 10);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn line_shape() {
        let t = Topology::line(6);
        assert_eq!(t.edge_count(), 5);
        assert_eq!(t.diameter(), 5);
        assert_eq!(t.degree(Slot(0)), 1);
        assert_eq!(t.degree(Slot(3)), 2);
    }

    #[test]
    fn star_shape() {
        let t = Topology::star(7);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.degree(Slot(0)), 6);
    }

    #[test]
    fn grid_shape() {
        let t = Topology::grid(4, 3);
        assert_eq!(t.len(), 12);
        assert_eq!(t.edge_count(), 3 * 3 + 4 * 2); // horizontal + vertical
        assert_eq!(t.diameter(), 3 + 2);
    }

    #[test]
    fn torus_shape() {
        let t = Topology::torus(4, 4);
        assert_eq!(t.len(), 16);
        assert_eq!(t.edge_count(), 32);
        assert_eq!(t.diameter(), 4);
        for s in t.slots() {
            assert_eq!(t.degree(s), 4);
        }
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in 0..20 {
            let t = Topology::random_connected(40, 0.05, seed);
            assert!(t.is_connected(), "seed {seed} disconnected");
            let t2 = Topology::random_connected(40, 0.05, seed);
            assert_eq!(t, t2, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn random_tree_has_n_minus_1_edges() {
        for seed in 0..10 {
            let t = Topology::random_tree(25, seed);
            assert_eq!(t.edge_count(), 24);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn barbell_shape() {
        let t = Topology::barbell(4, 3);
        assert_eq!(t.len(), 11);
        assert!(t.is_connected());
        // Left clique internal diameter 1, bridge length 4 hops, right 1.
        assert_eq!(t.diameter(), 1 + 4 + 1);
    }

    #[test]
    fn barbell_zero_bridge() {
        let t = Topology::barbell(3, 0);
        assert_eq!(t.len(), 6);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn star_of_lines_shape() {
        let t = Topology::star_of_lines(5, 3);
        assert_eq!(t.len(), 16);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), 6);
        assert_eq!(t.degree(Slot(0)), 5);
    }
}
