//! Network topologies.
//!
//! The abstract MAC layer model fixes an undirected graph `G = (V, E)`
//! whose vertices are the wireless devices and whose edges connect
//! nodes within reliable communication range (paper Section 2).
//!
//! This module provides:
//!
//! * [`Topology`] — an immutable undirected graph with adjacency lists,
//! * standard builders (clique, line, ring, star, grid, torus, random
//!   connected, random tree, barbell, star-of-lines) in
//!   [`builders`](self),
//! * the paper's lower-bound constructions:
//!   [`gadgets`] for Figure 1's Networks A and B (Theorem 3.3, the
//!   anonymity lower bound) and [`kd`] for Figure 2's `K_D` network
//!   (Theorem 3.9, the knowledge-of-`n` lower bound),
//! * graph algorithms (BFS, diameter, connectivity) in `algo`,
//! * an optional overlay of *unreliable* edges ([`unreliable`]),
//!   modeling the dual-graph abstract MAC layer variant the paper
//!   lists as future work.

mod algo;
mod builders;
mod extra;
pub mod gadgets;
mod graph;
pub mod kd;
pub mod unreliable;

pub use algo::UNREACHABLE;
pub use graph::{Topology, TopologyBuilder};
