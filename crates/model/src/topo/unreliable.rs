//! Unreliable-link overlay (dual-graph model variant).
//!
//! Some abstract MAC layer definitions include a second topology graph
//! `G'` of *unreliable* links that sometimes deliver messages and
//! sometimes do not; the paper omits it (which strengthens its lower
//! bounds) and lists adapting the multihop upper bound to such links as
//! an open question (Sections 2 and 5).
//!
//! This module provides the overlay as an extension point: a set of
//! extra edges on which the simulator *may* deliver a broadcast, at the
//! scheduler's whim, without the ack ever waiting for them. Experiment
//! E10 uses it to check that wPAXOS's safety argument (Lemma 4.2's
//! count invariant) is unaffected by spurious extra deliveries.

use std::collections::BTreeSet;

use crate::ids::Slot;

use super::Topology;

/// A set of unreliable extra edges over a base topology.
///
/// Overlay edges must not duplicate base edges (a link is either
/// reliable or unreliable, not both).
#[derive(Clone, Debug, Default)]
pub struct UnreliableOverlay {
    edges: BTreeSet<(usize, usize)>,
}

impl UnreliableOverlay {
    /// Creates an overlay from undirected edge pairs, validated against
    /// the base topology.
    ///
    /// # Panics
    ///
    /// Panics if an edge is out of range, a self-loop, or already a
    /// reliable edge of `base`.
    pub fn new(base: &Topology, edges: &[(usize, usize)]) -> Self {
        let mut set = BTreeSet::new();
        for &(u, v) in edges {
            assert!(
                u < base.len() && v < base.len(),
                "overlay edge out of range"
            );
            assert_ne!(u, v, "overlay self-loop");
            assert!(
                !base.has_edge(Slot(u), Slot(v)),
                "({u},{v}) is already a reliable edge"
            );
            set.insert(if u <= v { (u, v) } else { (v, u) });
        }
        Self { edges: set }
    }

    /// Number of unreliable edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the overlay has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Unreliable neighbors of `slot`, in sorted order.
    pub fn neighbors(&self, slot: Slot) -> Vec<Slot> {
        let mut out: Vec<Slot> = self
            .edges
            .iter()
            .filter_map(|&(u, v)| {
                if u == slot.0 {
                    Some(Slot(v))
                } else if v == slot.0 {
                    Some(Slot(u))
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_neighbors() {
        let base = Topology::line(4);
        let ov = UnreliableOverlay::new(&base, &[(0, 2), (0, 3)]);
        assert_eq!(ov.len(), 2);
        assert_eq!(ov.neighbors(Slot(0)), vec![Slot(2), Slot(3)]);
        assert_eq!(ov.neighbors(Slot(2)), vec![Slot(0)]);
        assert!(ov.neighbors(Slot(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "already a reliable edge")]
    fn rejects_duplicate_of_reliable_edge() {
        let base = Topology::line(4);
        UnreliableOverlay::new(&base, &[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let base = Topology::line(3);
        UnreliableOverlay::new(&base, &[(0, 5)]);
    }

    #[test]
    fn default_is_empty() {
        let ov = UnreliableOverlay::default();
        assert!(ov.is_empty());
        assert_eq!(ov.len(), 0);
    }
}
