//! Additional topology families used by the wider experiment sweeps:
//! hypercubes (logarithmic diameter at exponential size), complete
//! binary trees (logarithmic diameter with relay bottlenecks at the
//! root), caterpillars (long spines with leaf load), and lollipops
//! (clique + tail, the classic mixing-time pathology).

use super::graph::{Topology, TopologyBuilder};

impl Topology {
    /// The `dim`-dimensional hypercube: `2^dim` vertices, diameter
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `dim > 16`.
    pub fn hypercube(dim: usize) -> Self {
        assert!((1..=16).contains(&dim), "dimension must be in 1..=16");
        let n = 1usize << dim;
        let mut b = TopologyBuilder::new(n);
        for v in 0..n {
            for bit in 0..dim {
                let u = v ^ (1 << bit);
                if u > v {
                    b.edge(v, u);
                }
            }
        }
        b.build()
    }

    /// Complete binary tree with the given number of levels (root at
    /// slot 0; `2^levels - 1` vertices; diameter `2 * (levels - 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `levels > 16`.
    pub fn binary_tree(levels: usize) -> Self {
        assert!((1..=16).contains(&levels), "levels must be in 1..=16");
        let n = (1usize << levels) - 1;
        let mut b = TopologyBuilder::new(n);
        for v in 1..n {
            b.edge(v, (v - 1) / 2);
        }
        b.build()
    }

    /// Caterpillar: a spine path of `spine` vertices with `legs` leaves
    /// attached to every spine vertex. Size `spine * (legs + 1)`;
    /// diameter `spine + 1` for `legs >= 1` (leaf to far leaf).
    ///
    /// # Panics
    ///
    /// Panics if `spine == 0`.
    pub fn caterpillar(spine: usize, legs: usize) -> Self {
        assert!(spine >= 1, "need a spine");
        let n = spine * (legs + 1);
        let mut b = TopologyBuilder::new(n);
        for s in 0..spine.saturating_sub(1) {
            b.edge(s, s + 1);
        }
        for s in 0..spine {
            for l in 0..legs {
                b.edge(s, spine + s * legs + l);
            }
        }
        b.build()
    }

    /// Lollipop: a `k`-clique with a tail path of `tail` extra
    /// vertices. Size `k + tail`; diameter `tail + 1` for `k >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn lollipop(k: usize, tail: usize) -> Self {
        assert!(k >= 1, "need a clique head");
        let n = k + tail;
        let mut b = TopologyBuilder::new(n);
        let head: Vec<usize> = (0..k).collect();
        b.clique_among(&head);
        let mut chain = vec![k - 1];
        chain.extend(k..n);
        b.path(&chain);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Slot;

    #[test]
    fn hypercube_shape() {
        for dim in 1..=6 {
            let t = Topology::hypercube(dim);
            assert_eq!(t.len(), 1 << dim);
            assert!(t.is_connected());
            assert_eq!(t.diameter() as usize, dim, "dim {dim}");
            for s in t.slots() {
                assert_eq!(t.degree(s), dim);
            }
            assert_eq!(t.edge_count(), dim * (1 << dim) / 2);
        }
    }

    #[test]
    fn binary_tree_shape() {
        for levels in 1..=6 {
            let t = Topology::binary_tree(levels);
            assert_eq!(t.len(), (1 << levels) - 1);
            assert!(t.is_connected());
            assert_eq!(t.edge_count(), t.len() - 1);
            assert_eq!(t.diameter() as usize, 2 * (levels - 1), "levels {levels}");
        }
        // Root degree 2, internal degree 3, leaf degree 1.
        let t = Topology::binary_tree(4);
        assert_eq!(t.degree(Slot(0)), 2);
        assert_eq!(t.degree(Slot(1)), 3);
        assert_eq!(t.degree(Slot(14)), 1);
    }

    #[test]
    fn caterpillar_shape() {
        let t = Topology::caterpillar(5, 2);
        assert_eq!(t.len(), 15);
        assert!(t.is_connected());
        assert_eq!(t.diameter() as usize, 6);
        assert_eq!(t.degree(Slot(0)), 3); // spine end: 1 spine + 2 legs
        assert_eq!(t.degree(Slot(2)), 4); // mid spine: 2 spine + 2 legs

        let bare = Topology::caterpillar(4, 0);
        assert_eq!(bare.diameter() as usize, 3);
    }

    #[test]
    fn lollipop_shape() {
        let t = Topology::lollipop(5, 3);
        assert_eq!(t.len(), 8);
        assert!(t.is_connected());
        assert_eq!(t.diameter() as usize, 4);
        assert_eq!(t.degree(Slot(0)), 4);
        assert_eq!(t.degree(Slot(7)), 1);

        let no_tail = Topology::lollipop(4, 0);
        assert_eq!(no_tail.diameter(), 1);
    }

    #[test]
    fn singleton_corner_cases() {
        assert_eq!(Topology::hypercube(1).len(), 2);
        assert_eq!(Topology::binary_tree(1).len(), 1);
        assert_eq!(Topology::caterpillar(1, 0).len(), 1);
        assert_eq!(Topology::lollipop(1, 2).len(), 3);
    }
}
