//! Figure 2 of the paper: the `K_D` network for the knowledge-of-`n`
//! lower bound (Theorem 3.9).
//!
//! `K_D` consists of two copies of the line `L_D` (each `D + 1` nodes)
//! and one line `L_{D-1}` (`D` nodes), with an edge from **every** node
//! of both `L_D` copies to one fixed endpoint (the *hub*) of the
//! `L_{D-1}` line. The long tail gives the network diameter exactly
//! `D`, while each `L_D` copy sits one hop from the hub.
//!
//! The proof starts copy 1 with input 0 and copy 2 with input 1 and
//! uses a *semi-synchronous* scheduler that withholds all messages from
//! the hub to the `L_D` copies for `t` synchronous steps. During that
//! window each copy's execution is indistinguishable from running alone
//! on a plain line `L_D` with a uniform input — so an algorithm that
//! (lacking knowledge of `n`) terminates on every line within `t` steps
//! decides 0 in copy 1 and 1 in copy 2, violating agreement.

use crate::ids::Slot;

use super::graph::{Topology, TopologyBuilder};

/// The `K_D` network with slot bookkeeping.
#[derive(Clone, Debug)]
pub struct KdNetwork {
    diameter: usize,
    topo: Topology,
}

impl KdNetwork {
    /// Builds `K_D` for the given diameter `D >= 2`.
    ///
    /// Slot layout: copy 1 of `L_D` at `0..=D`, copy 2 at
    /// `D+1..=2D+1`, the `L_{D-1}` tail at `2D+2..3D+2` with the hub at
    /// slot `2D+2`. Total size `3D + 2`.
    ///
    /// # Panics
    ///
    /// Panics if `diameter < 2` (the tail would be empty).
    pub fn new(diameter: usize) -> Self {
        assert!(diameter >= 2, "K_D needs D >= 2");
        let d = diameter;
        let n = 3 * d + 2;
        let mut b = TopologyBuilder::new(n);
        // The two L_D copies: lines of D+1 nodes.
        let copy1: Vec<usize> = (0..=d).collect();
        let copy2: Vec<usize> = (d + 1..=2 * d + 1).collect();
        b.path(&copy1);
        b.path(&copy2);
        // The L_{D-1} tail: a line of D nodes, hub first.
        let tail: Vec<usize> = (2 * d + 2..n).collect();
        b.path(&tail);
        // Every node of both copies attaches to the hub.
        let hub = 2 * d + 2;
        for &v in copy1.iter().chain(copy2.iter()) {
            b.edge(v, hub);
        }
        Self {
            diameter: d,
            topo: b.build(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The requested diameter `D`.
    pub fn diameter(&self) -> usize {
        self.diameter
    }

    /// Slots of `L_D` copy 1 (started with input 0 in the proof).
    pub fn copy1_slots(&self) -> Vec<Slot> {
        (0..=self.diameter).map(Slot).collect()
    }

    /// Slots of `L_D` copy 2 (started with input 1 in the proof).
    pub fn copy2_slots(&self) -> Vec<Slot> {
        (self.diameter + 1..=2 * self.diameter + 1)
            .map(Slot)
            .collect()
    }

    /// Slots of the `L_{D-1}` tail, hub first.
    pub fn tail_slots(&self) -> Vec<Slot> {
        (2 * self.diameter + 2..3 * self.diameter + 2)
            .map(Slot)
            .collect()
    }

    /// The hub: the tail endpoint adjacent to every copy node.
    pub fn hub(&self) -> Slot {
        Slot(2 * self.diameter + 2)
    }

    /// Within copy `idx` (1 or 2), the slot at line position `pos`
    /// (`0..=D`).
    ///
    /// # Panics
    ///
    /// Panics for `idx` not in `{1, 2}` or `pos > D`.
    pub fn copy_slot(&self, idx: usize, pos: usize) -> Slot {
        assert!(pos <= self.diameter);
        match idx {
            1 => Slot(pos),
            2 => Slot(self.diameter + 1 + pos),
            _ => panic!("copy index must be 1 or 2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_matches_figure() {
        for d in 2..10 {
            let kd = KdNetwork::new(d);
            assert_eq!(kd.topology().len(), 3 * d + 2);
            assert_eq!(kd.copy1_slots().len(), d + 1);
            assert_eq!(kd.copy2_slots().len(), d + 1);
            assert_eq!(kd.tail_slots().len(), d);
        }
    }

    #[test]
    fn diameter_is_exactly_d() {
        for d in 2..12 {
            let kd = KdNetwork::new(d);
            assert!(kd.topology().is_connected());
            assert_eq!(kd.topology().diameter() as usize, d, "D = {d}");
        }
    }

    #[test]
    fn every_copy_node_touches_hub() {
        let kd = KdNetwork::new(5);
        let hub = kd.hub();
        for s in kd.copy1_slots().iter().chain(kd.copy2_slots().iter()) {
            assert!(kd.topology().has_edge(*s, hub), "{s:?} not on hub");
        }
        // Hub degree: 2(D+1) copy nodes + 1 tail neighbor.
        assert_eq!(kd.topology().degree(hub), 2 * 6 + 1);
    }

    #[test]
    fn copies_are_lines_internally() {
        let kd = KdNetwork::new(4);
        for idx in [1, 2] {
            for pos in 0..4 {
                assert!(kd
                    .topology()
                    .has_edge(kd.copy_slot(idx, pos), kd.copy_slot(idx, pos + 1)));
            }
        }
        // No direct edges between the two copies.
        for a in kd.copy1_slots() {
            for b in kd.copy2_slots() {
                assert!(!kd.topology().has_edge(a, b));
            }
        }
    }

    #[test]
    fn copy_slot_round_trips() {
        let kd = KdNetwork::new(3);
        assert_eq!(kd.copy_slot(1, 0), Slot(0));
        assert_eq!(kd.copy_slot(1, 3), Slot(3));
        assert_eq!(kd.copy_slot(2, 0), Slot(4));
        assert_eq!(kd.copy_slot(2, 3), Slot(7));
        assert_eq!(kd.hub(), Slot(8));
    }

    #[test]
    #[should_panic(expected = "D >= 2")]
    fn rejects_tiny_diameter() {
        KdNetwork::new(1);
    }
}
