//! Graph algorithms over [`Topology`]: BFS, distances, diameter,
//! connectivity, and shortest-path trees.
//!
//! The lower-bound constructions (Figures 1 and 2) make exact claims
//! about diameter (Claim 3.4); these routines let tests verify those
//! claims rather than trust them.

use std::collections::VecDeque;

use crate::ids::Slot;

use super::Topology;

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

impl Topology {
    /// Breadth-first distances from `src` to every vertex.
    ///
    /// Unreachable vertices get [`UNREACHABLE`].
    pub fn bfs_distances(&self, src: Slot) -> Vec<u32> {
        let mut dist = vec![UNREACHABLE; self.len()];
        let mut q = VecDeque::new();
        dist[src.0] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u.0];
            for &v in self.neighbors(u) {
                if dist[v.0] == UNREACHABLE {
                    dist[v.0] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Hop distance between two vertices, or [`UNREACHABLE`].
    pub fn distance(&self, u: Slot, v: Slot) -> u32 {
        self.bfs_distances(u)[v.0]
    }

    /// `true` iff the graph is connected (the empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.bfs_distances(Slot(0))
            .iter()
            .all(|&d| d != UNREACHABLE)
    }

    /// Eccentricity of `src`: the maximum BFS distance to any vertex.
    ///
    /// Returns [`UNREACHABLE`] if some vertex is unreachable.
    pub fn eccentricity(&self, src: Slot) -> u32 {
        self.bfs_distances(src).into_iter().max().unwrap_or(0)
    }

    /// Exact diameter by running BFS from every vertex.
    ///
    /// Returns `0` for graphs with at most one vertex and
    /// [`UNREACHABLE`] for disconnected graphs. Quadratic in `n`; fine
    /// for the test- and bench-scale graphs used here.
    pub fn diameter(&self) -> u32 {
        if self.len() <= 1 {
            return 0;
        }
        let mut best = 0;
        for s in self.slots() {
            let e = self.eccentricity(s);
            if e == UNREACHABLE {
                return UNREACHABLE;
            }
            best = best.max(e);
        }
        best
    }

    /// BFS parent pointers from `root`: `parent[root] = root`,
    /// `parent[v] = u` for the BFS tree edge `u -> v`, and `None` for
    /// unreachable vertices.
    ///
    /// Ties (multiple shortest predecessors) resolve to the
    /// smallest-slot parent, deterministically.
    pub fn bfs_tree(&self, root: Slot) -> Vec<Option<Slot>> {
        let mut parent = vec![None; self.len()];
        let mut dist = vec![UNREACHABLE; self.len()];
        let mut q = VecDeque::new();
        parent[root.0] = Some(root);
        dist[root.0] = 0;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v.0] == UNREACHABLE {
                    dist[v.0] = dist[u.0] + 1;
                    parent[v.0] = Some(u);
                    q.push_back(v);
                }
            }
        }
        parent
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        let mut seen = vec![false; self.len()];
        let mut count = 0;
        for s in self.slots() {
            if seen[s.0] {
                continue;
            }
            count += 1;
            let mut q = VecDeque::new();
            seen[s.0] = true;
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                for &v in self.neighbors(u) {
                    if !seen[v.0] {
                        seen[v.0] = true;
                        q.push_back(v);
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let t = Topology::line(5);
        let d = t.bfs_distances(Slot(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.distance(Slot(0), Slot(4)), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn clique_diameter_is_one() {
        assert_eq!(Topology::clique(6).diameter(), 1);
        assert_eq!(Topology::clique(1).diameter(), 0);
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), UNREACHABLE);
        assert_eq!(t.component_count(), 2);
        assert_eq!(t.distance(Slot(0), Slot(3)), UNREACHABLE);
    }

    #[test]
    fn bfs_tree_parents_point_toward_root() {
        let t = Topology::line(4);
        let p = t.bfs_tree(Slot(0));
        assert_eq!(p[0], Some(Slot(0)));
        assert_eq!(p[1], Some(Slot(0)));
        assert_eq!(p[2], Some(Slot(1)));
        assert_eq!(p[3], Some(Slot(2)));
    }

    #[test]
    fn bfs_tree_breaks_ties_deterministically() {
        // Square: 0-1, 0-2, 1-3, 2-3. Vertex 3 has two shortest parents
        // (1 and 2); the smaller slot wins.
        let t = Topology::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p = t.bfs_tree(Slot(0));
        assert_eq!(p[3], Some(Slot(1)));
    }

    #[test]
    fn eccentricity_of_line_center() {
        let t = Topology::line(5);
        assert_eq!(t.eccentricity(Slot(2)), 2);
        assert_eq!(t.eccentricity(Slot(0)), 4);
    }

    #[test]
    fn ring_diameter() {
        assert_eq!(Topology::ring(8).diameter(), 4);
        assert_eq!(Topology::ring(7).diameter(), 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Topology::from_edges(0, &[]).is_connected());
        assert_eq!(Topology::from_edges(1, &[]).diameter(), 0);
    }
}
