//! Figure 1 of the paper: Networks A and B for the anonymity lower
//! bound (Theorem 3.3).
//!
//! The theorem shows that no *anonymous* algorithm solves consensus in
//! all networks of a given (even) diameter `D` and size `n'`, even when
//! nodes know both. The proof builds two networks of identical size and
//! diameter:
//!
//! * **Network A** contains two disjoint copies of a *gadget* joined
//!   through a bridge node `q` (plus a clique `C` hanging off `q` to
//!   pad the size). One gadget starts with input 0, the other with 1.
//! * **Network B** is a connected **3-fold covering graph (3-lift)** of
//!   the gadget: three copies of every gadget vertex, with edges
//!   arranged so each copy of `u` has *exactly one* neighbor in the
//!   copy-set `S_v` of each gadget-neighbor `v`, and no other edges —
//!   this is property (*) used by Lemma 3.6.
//!
//! While `q` stays silent, an anonymous node in a Network A gadget
//! cannot distinguish its execution from Network B, where all nodes
//! share one input and must decide it. Running the same algorithm with
//! inputs 0 and 1 in the two A-gadgets then violates agreement.
//!
//! ## Construction details (and one deviation from the paper)
//!
//! A covering graph of a tree is a forest, so for Network B to be
//! *connected* the gadget must contain a cycle. We realize the gadget
//! as:
//!
//! * a chain `c - a_1 - a_2 - ... - a_d`,
//! * a 4-cycle `a_1 - a^+_2 - a^+_3 - a^+_4 - a_1` (the three `a^+`
//!   nodes of Figure 1),
//! * `k` leaves `a^*_1..a^*_k` attached to `a_{d-1}`.
//!
//! Gadget size is `g = d + k + 4`, so `n' = 3g = 3(d + k) + 12`,
//! exactly the paper's count. Network B identity-lifts every gadget
//! edge except `a^+_4 - a_1`, which is lifted with a cyclic shift
//! (`a^+_4` of copy `i` connects to `a_1` of copy `i+1 mod 3`). This
//! makes B connected, puts the three `a_1` copies pairwise at distance
//! 4, and gives both networks diameter exactly `2d + 2 = D`.
//!
//! The paper's garbled figure does not pin down where the `a^+` nodes
//! attach; our 4-cycle placement is the (unique, up to symmetry) choice
//! that satisfies all of the proof's stated requirements — size
//! `3(d+k)+12`, diameter exactly `D` for both networks, and property
//! (*) — but it needs `d >= 3`, i.e. even `D >= 8`, rather than the
//! paper's `D >= 4`. Tests verify Claim 3.4 (size and diameter) and
//! property (*) programmatically for a sweep of `D` and `n`.

use crate::ids::Slot;

use super::graph::{Topology, TopologyBuilder};

/// Local (within-gadget) vertex indices.
///
/// `c = 0`, `a_i = i` for `1 <= i <= d`, `a^+_2.. a^+_4 = d+1..d+3`,
/// `a^*_j = d + 4 + j` for `0 <= j < k`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GadgetVertex(pub usize);

/// The Figure 1 pair of networks, with bookkeeping for the
/// indistinguishability argument.
#[derive(Clone, Debug)]
pub struct Fig1 {
    d: usize,
    k: usize,
    network_a: Topology,
    network_b: Topology,
}

/// Parameters derived from a `(D, n)` pair per Theorem 3.3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fig1Params {
    /// Half the gadget-chain length: `d = (D - 2) / 2`.
    pub d: usize,
    /// Number of `a^*` padding leaves per gadget.
    pub k: usize,
    /// The realized network size `n' = 3(d + k) + 12 >= n`.
    pub n_prime: usize,
}

impl Fig1Params {
    /// Computes `(d, k, n')` for a requested even diameter `D >= 8` and
    /// size floor `n`, following the theorem: `k` is the smallest
    /// integer `>= 0` with `3((D-2)/2 + k) + 12 >= n`.
    ///
    /// # Panics
    ///
    /// Panics if `D` is odd or below 8 (see module docs for why this
    /// construction needs `d >= 3`).
    pub fn for_diameter_and_size(diameter: usize, n: usize) -> Self {
        assert!(diameter >= 8, "this construction needs even D >= 8");
        assert_eq!(diameter % 2, 0, "D must be even");
        let d = (diameter - 2) / 2;
        let base = 3 * d + 12;
        let k = if n > base {
            // Smallest k with 3(d + k) + 12 >= n.
            (n - base).div_ceil(3)
        } else {
            0
        };
        Self {
            d,
            k,
            n_prime: 3 * (d + k) + 12,
        }
    }
}

impl Fig1 {
    /// Builds the Network A / Network B pair for the given parameters.
    pub fn new(params: Fig1Params) -> Self {
        let Fig1Params { d, k, .. } = params;
        assert!(d >= 3, "gadget chain parameter d must be >= 3");
        let g = d + k + 4;

        // Network A: gadget 0 at offset 0, gadget 1 at offset g,
        // bridge q at 2g, clique C at 2g+1 .. 3g.
        let mut a = TopologyBuilder::new(3 * g);
        for off in [0, g] {
            add_gadget_edges(&mut a, off, d, k, None);
        }
        let q = 2 * g;
        a.edge(q, 0); // q - c of gadget 0
        a.edge(q, g); // q - c of gadget 1
        let clique: Vec<usize> = (2 * g + 1..3 * g).collect();
        a.clique_among(&clique);
        for &x in &clique {
            a.edge(q, x);
        }

        // Network B: three gadget copies at offsets 0, g, 2g; identity
        // lift everywhere except the a^+_4 - a_1 edge, which shifts to
        // the next copy.
        let mut b = TopologyBuilder::new(3 * g);
        for i in 0..3 {
            let next_a1 = ((i + 1) % 3) * g + 1;
            add_gadget_edges(&mut b, i * g, d, k, Some(next_a1));
        }

        Self {
            d,
            k,
            network_a: a.build(),
            network_b: b.build(),
        }
    }

    /// Builds directly from a `(D, n)` request.
    pub fn for_diameter_and_size(diameter: usize, n: usize) -> Self {
        Self::new(Fig1Params::for_diameter_and_size(diameter, n))
    }

    /// Gadget size `g = d + k + 4`.
    pub fn gadget_size(&self) -> usize {
        self.d + self.k + 4
    }

    /// Realized network size `n' = 3g` (both networks).
    pub fn n_prime(&self) -> usize {
        3 * self.gadget_size()
    }

    /// The target diameter `D = 2d + 2` of both networks.
    pub fn diameter(&self) -> usize {
        2 * self.d + 2
    }

    /// Network A (two gadgets + bridge `q` + clique `C`).
    pub fn network_a(&self) -> &Topology {
        &self.network_a
    }

    /// Network B (connected 3-lift of the gadget).
    pub fn network_b(&self) -> &Topology {
        &self.network_b
    }

    /// Slots of gadget `idx` (0 or 1) in Network A — the node sets
    /// `A_0` and `A_1` of the proof.
    ///
    /// # Panics
    ///
    /// Panics if `idx > 1`.
    pub fn a_gadget_slots(&self, idx: usize) -> Vec<Slot> {
        assert!(idx <= 1);
        let g = self.gadget_size();
        (idx * g..(idx + 1) * g).map(Slot).collect()
    }

    /// The bridge node `q` in Network A.
    pub fn q_slot(&self) -> Slot {
        Slot(2 * self.gadget_size())
    }

    /// The padding-clique slots `C` in Network A.
    pub fn clique_slots(&self) -> Vec<Slot> {
        let g = self.gadget_size();
        (2 * g + 1..3 * g).map(Slot).collect()
    }

    /// For gadget-local vertex `u`, the copy-set `S_u`: the three slots
    /// of Network B corresponding to `u`.
    pub fn s_u(&self, u: GadgetVertex) -> [Slot; 3] {
        let g = self.gadget_size();
        assert!(u.0 < g, "gadget vertex out of range");
        [Slot(u.0), Slot(g + u.0), Slot(2 * g + u.0)]
    }

    /// Maps a Network A gadget slot to its gadget-local vertex, or
    /// `None` for `q` / clique slots.
    pub fn local_vertex(&self, slot: Slot) -> Option<GadgetVertex> {
        let g = self.gadget_size();
        if slot.0 < 2 * g {
            Some(GadgetVertex(slot.0 % g))
        } else {
            None
        }
    }

    /// Gadget-local edge list (used by the lift verification).
    pub fn gadget_edges(&self) -> Vec<(usize, usize)> {
        let mut b = TopologyBuilder::new(self.gadget_size());
        add_gadget_edges(&mut b, 0, self.d, self.k, None);
        b.build().edges().map(|(u, v)| (u.0, v.0)).collect()
    }

    /// Verifies property (*) of Lemma 3.6: Network B is an exact 3-lift
    /// of the gadget — every copy `u'` of gadget vertex `u` has exactly
    /// one neighbor in `S_v` for each gadget neighbor `v` of `u`, and
    /// no neighbors outside those sets.
    ///
    /// Returns `Err` with a description of the first violation.
    pub fn verify_lift_property(&self) -> Result<(), String> {
        let g = self.gadget_size();
        let gadget = Topology::from_edges(g, &self.gadget_edges());
        for u in 0..g {
            let su = self.s_u(GadgetVertex(u));
            let nbrs_in_gadget: Vec<usize> =
                gadget.neighbors(Slot(u)).iter().map(|s| s.0).collect();
            for &u_copy in &su {
                let actual: Vec<usize> = self
                    .network_b
                    .neighbors(u_copy)
                    .iter()
                    .map(|s| s.0)
                    .collect();
                if actual.len() != nbrs_in_gadget.len() {
                    return Err(format!(
                        "copy {u_copy:?} of gadget vertex {u} has degree {} != gadget degree {}",
                        actual.len(),
                        nbrs_in_gadget.len()
                    ));
                }
                for &v in &nbrs_in_gadget {
                    let sv = self.s_u(GadgetVertex(v));
                    let count = actual
                        .iter()
                        .filter(|&&w| sv.iter().any(|s| s.0 == w))
                        .count();
                    if count != 1 {
                        return Err(format!(
                            "copy {u_copy:?} of vertex {u} has {count} neighbors in S_{v} (want 1)"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Adds one gadget copy's edges at slot offset `off`.
///
/// `lifted_a1`: when `Some(t)`, the `a^+_4 - a_1` cycle-closing edge
/// attaches `a^+_4` to absolute slot `t` instead of this copy's own
/// `a_1` (the Network B cyclic lift). When `None`, the edge stays
/// within the copy (Network A / the base gadget).
fn add_gadget_edges(
    b: &mut TopologyBuilder,
    off: usize,
    d: usize,
    k: usize,
    lifted_a1: Option<usize>,
) {
    let c = off;
    let a = |i: usize| off + i; // a_i, 1 <= i <= d
    let ap2 = off + d + 1;
    let ap3 = off + d + 2;
    let ap4 = off + d + 3;

    b.edge(c, a(1));
    for i in 1..d {
        b.edge(a(i), a(i + 1));
    }
    b.edge(a(1), ap2);
    b.edge(ap2, ap3);
    b.edge(ap3, ap4);
    b.edge(ap4, lifted_a1.unwrap_or_else(|| a(1)));
    for j in 0..k {
        b.edge(a(d - 1), off + d + 4 + j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_theorem_formula() {
        let p = Fig1Params::for_diameter_and_size(10, 30);
        assert_eq!(p.d, 4);
        // base = 3*4 + 12 = 24 < 30 => k = ceil(6/3) = 2, n' = 3*6+12 = 30.
        assert_eq!(p.k, 2);
        assert_eq!(p.n_prime, 30);
        assert!(p.n_prime >= 30);
    }

    #[test]
    fn params_with_small_n_use_k_zero() {
        let p = Fig1Params::for_diameter_and_size(12, 10);
        assert_eq!(p.d, 5);
        assert_eq!(p.k, 0);
        assert_eq!(p.n_prime, 27);
    }

    #[test]
    fn n_prime_is_within_constant_factor_of_n() {
        // Theorem 3.3 promises n' in {n, ..., c*n} for a constant c.
        for n in 12..200 {
            let p = Fig1Params::for_diameter_and_size(8, n);
            assert!(p.n_prime >= n);
            assert!(p.n_prime <= 3 * n + 27, "n={n} gave n'={}", p.n_prime);
        }
    }

    #[test]
    fn claim_3_4_sizes_and_diameters() {
        // Claim 3.4: both networks have size n' and diameter D.
        for diameter in [8usize, 10, 12, 16] {
            for n in [10usize, 40, 100] {
                let fig = Fig1::for_diameter_and_size(diameter, n);
                let a = fig.network_a();
                let b = fig.network_b();
                assert_eq!(a.len(), fig.n_prime(), "D={diameter} n={n} A size");
                assert_eq!(b.len(), fig.n_prime(), "D={diameter} n={n} B size");
                assert!(a.is_connected());
                assert!(b.is_connected());
                assert_eq!(a.diameter() as usize, diameter, "D={diameter} n={n} A diam");
                assert_eq!(b.diameter() as usize, diameter, "D={diameter} n={n} B diam");
            }
        }
    }

    #[test]
    fn network_b_is_an_exact_3_lift() {
        for diameter in [8usize, 10, 14] {
            let fig = Fig1::for_diameter_and_size(diameter, 20);
            fig.verify_lift_property().expect("property (*)");
        }
    }

    #[test]
    fn gadget_bookkeeping_is_consistent() {
        let fig = Fig1::for_diameter_and_size(8, 24);
        let g = fig.gadget_size();
        assert_eq!(fig.n_prime(), 3 * g);
        assert_eq!(fig.a_gadget_slots(0).len(), g);
        assert_eq!(fig.a_gadget_slots(1).len(), g);
        assert_eq!(fig.q_slot().0, 2 * g);
        assert_eq!(fig.clique_slots().len(), g - 1);
        // Every gadget slot maps back to a local vertex; q and clique do not.
        assert_eq!(fig.local_vertex(Slot(0)), Some(GadgetVertex(0)));
        assert_eq!(fig.local_vertex(Slot(g + 2)), Some(GadgetVertex(2)));
        assert_eq!(fig.local_vertex(fig.q_slot()), None);
        assert_eq!(fig.local_vertex(fig.clique_slots()[0]), None);
    }

    #[test]
    fn q_touches_both_gadgets_at_c_only() {
        let fig = Fig1::for_diameter_and_size(10, 30);
        let g = fig.gadget_size();
        let a = fig.network_a();
        let q = fig.q_slot();
        let nbrs = a.neighbors(q);
        // q's gadget neighbors are exactly the two c nodes.
        let gadget_nbrs: Vec<_> = nbrs.iter().filter(|s| s.0 < 2 * g).collect();
        assert_eq!(gadget_nbrs.len(), 2);
        assert_eq!(gadget_nbrs[0].0, 0);
        assert_eq!(gadget_nbrs[1].0, g);
        // Plus the whole clique.
        assert_eq!(nbrs.len(), 2 + (g - 1));
    }

    #[test]
    #[should_panic(expected = "even D >= 8")]
    fn rejects_small_diameter() {
        Fig1Params::for_diameter_and_size(6, 20);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_diameter() {
        Fig1Params::for_diameter_and_size(9, 20);
    }
}
