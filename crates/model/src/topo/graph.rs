//! The core undirected graph type.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::Slot;

/// An immutable undirected topology graph.
///
/// Vertices are dense [`Slot`]s in `0..n`. Self-loops are rejected;
/// duplicate edges are idempotent. Adjacency lists are kept sorted so
/// that all iteration over neighbors is deterministic.
///
/// Construct one with [`Topology::from_edges`], a named builder such as
/// [`Topology::clique`], or incrementally via [`TopologyBuilder`].
#[derive(Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    adj: Vec<Vec<Slot>>,
    edges: BTreeSet<(usize, usize)>,
}

impl Topology {
    /// Creates a topology with `n` vertices and the given undirected
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range or if an edge is a
    /// self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut b = TopologyBuilder::new(n);
        for &(u, v) in edges {
            b.edge(u, v);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the topology has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sorted neighbors of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn neighbors(&self, slot: Slot) -> &[Slot] {
        &self.adj[slot.0]
    }

    /// Degree of `slot`.
    #[inline]
    pub fn degree(&self, slot: Slot) -> usize {
        self.adj[slot.0].len()
    }

    /// `true` iff `u` and `v` are adjacent.
    pub fn has_edge(&self, u: Slot, v: Slot) -> bool {
        let key = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edges.contains(&key)
    }

    /// Iterator over all vertices.
    pub fn slots(&self) -> impl Iterator<Item = Slot> + '_ {
        (0..self.n).map(Slot)
    }

    /// Iterator over all undirected edges as `(smaller, larger)` slots.
    pub fn edges(&self) -> impl Iterator<Item = (Slot, Slot)> + '_ {
        self.edges.iter().map(|&(u, v)| (Slot(u), Slot(v)))
    }

    /// Returns a new topology with the same vertices plus the given
    /// extra edges.
    pub fn with_extra_edges(&self, extra: &[(usize, usize)]) -> Self {
        let mut b = TopologyBuilder::new(self.n);
        for &(u, v) in &self.edges {
            b.edge(u, v);
        }
        for &(u, v) in extra {
            b.edge(u, v);
        }
        b.build()
    }
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Topology(n={}, m={})", self.n, self.edges.len())
    }
}

/// Incremental builder for [`Topology`].
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl TopologyBuilder {
    /// Starts a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge `{u, v}`. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn edge(&mut self, u: usize, v: usize) -> &mut Self {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range (n={})",
            self.n
        );
        assert_ne!(u, v, "self-loop at {u}");
        self.edges.insert(if u <= v { (u, v) } else { (v, u) });
        self
    }

    /// Adds a path along the given vertex sequence.
    pub fn path(&mut self, seq: &[usize]) -> &mut Self {
        for w in seq.windows(2) {
            self.edge(w[0], w[1]);
        }
        self
    }

    /// Adds all `k*(k-1)/2` edges among the given vertices.
    pub fn clique_among(&mut self, verts: &[usize]) -> &mut Self {
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                self.edge(u, v);
            }
        }
        self
    }

    /// Finalizes the topology.
    pub fn build(&self) -> Topology {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(Slot(v));
            adj[v].push(Slot(u));
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        Topology {
            n: self.n,
            adj,
            edges: self.edges.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_sorted_adjacency() {
        let t = Topology::from_edges(4, &[(2, 0), (0, 1), (3, 0)]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.neighbors(Slot(0)), &[Slot(1), Slot(2), Slot(3)]);
        assert_eq!(t.degree(Slot(0)), 3);
        assert_eq!(t.degree(Slot(1)), 1);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Topology::from_edges(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Topology::from_edges(3, &[(0, 3)]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let t = Topology::from_edges(3, &[(0, 2)]);
        assert!(t.has_edge(Slot(0), Slot(2)));
        assert!(t.has_edge(Slot(2), Slot(0)));
        assert!(!t.has_edge(Slot(0), Slot(1)));
    }

    #[test]
    fn builder_path_and_clique() {
        let mut b = TopologyBuilder::new(5);
        b.path(&[0, 1, 2]).clique_among(&[2, 3, 4]);
        let t = b.build();
        assert_eq!(t.edge_count(), 2 + 3);
        assert!(t.has_edge(Slot(3), Slot(4)));
    }

    #[test]
    fn with_extra_edges_adds() {
        let t = Topology::from_edges(3, &[(0, 1)]);
        let t2 = t.with_extra_edges(&[(1, 2)]);
        assert_eq!(t2.edge_count(), 2);
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn edges_iterator_is_normalized() {
        let t = Topology::from_edges(3, &[(2, 1), (1, 0)]);
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges, vec![(Slot(0), Slot(1)), (Slot(1), Slot(2))]);
    }
}
