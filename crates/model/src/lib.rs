//! # `amacl-model`: the abstract MAC layer model
//!
//! This crate implements the *abstract MAC layer* model of
//! Kuhn, Lynch, and Newport (as used by Newport, *Consensus with an
//! Abstract MAC Layer*, PODC 2014). The model captures the guarantees
//! provided by most wireless MAC layers while hiding their low-level
//! details behind a nondeterministic message scheduler:
//!
//! * Nodes communicate by **acknowledged local broadcast**: a message
//!   broadcast by node `u` is eventually received by every non-faulty
//!   neighbor of `u` in a fixed topology graph `G`, after which `u`
//!   receives an *ack*.
//! * Broadcasts are **not atomic**: different neighbors may receive the
//!   message at different times (e.g., due to the hidden terminal
//!   problem), and a node that crashes mid-broadcast may have delivered
//!   its message to only a subset of its neighbors.
//! * A node that attempts to broadcast while a broadcast is already
//!   outstanding has the extra message **discarded**.
//! * Message delivery order and timing are chosen by an adversarial
//!   **scheduler**, subject to an upper bound `F_ack` on the time from
//!   broadcast to ack. `F_ack` exists but is *unknown to the nodes*.
//! * Local (non-communication) computation takes zero time; all
//!   nondeterminism lives in the scheduler.
//!
//! The crate provides:
//!
//! * [`topo`] — topology graphs, including the worst-case constructions
//!   from the paper's lower bounds (Figures 1 and 2),
//! * [`proc`] — the [`Process`](proc::Process) trait that algorithms
//!   implement, and the [`Context`](proc::Context) handle through which
//!   they broadcast and decide,
//! * [`sim`] — a deterministic discrete-event simulator that executes
//!   processes under a pluggable [`Scheduler`](sim::sched::Scheduler),
//!   with crash injection (including mid-broadcast partial delivery),
//!   tracing, and metrics,
//! * [`mac`] — the backend-agnostic [`MacLayer`](mac::MacLayer) trait
//!   (one `Process` implementation, many execution substrates) and the
//!   [`BcastLedger`](mac::BcastLedger) delivery/ack/crash bookkeeping
//!   shared by the simulator and the threaded runtime in
//!   `amacl-runtime`.
//!
//! ## Quick example
//!
//! ```
//! use amacl_model::prelude::*;
//!
//! /// A process that broadcasts once and decides its own input.
//! struct Trivial(u64);
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Payload for Ping {
//!     fn id_count(&self) -> usize { 0 }
//! }
//!
//! impl Process for Trivial {
//!     type Msg = Ping;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
//!         ctx.broadcast(Ping);
//!     }
//!     fn on_receive(&mut self, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
//!     fn on_ack(&mut self, ctx: &mut Context<'_, Ping>) {
//!         ctx.decide(self.0);
//!     }
//! }
//!
//! let topo = Topology::clique(4);
//! let mut sim = SimBuilder::new(topo, |slot| Trivial(slot.index() as u64))
//!     .scheduler(SynchronousScheduler::new(1))
//!     .build();
//! let report = sim.run();
//! assert!(report.all_decided());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod mac;
pub mod msg;
pub mod proc;
pub mod sim;
pub mod topo;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::ids::{NodeId, Slot};
    pub use crate::mac::{
        BackendSched, LedgerShardView, MacLayer, MacReport, SchedulerFactory, SimBackend,
    };
    pub use crate::msg::Payload;
    pub use crate::proc::{Context, Decision, NodeCell, Process, Value};
    pub use crate::sim::config::EngineConfig;
    pub use crate::sim::crash::{CrashPlan, CrashSpec};
    pub use crate::sim::engine::{RunOutcome, RunReport, Sim, SimBuilder};
    pub use crate::sim::queue::{
        CalendarCore, EventId, EventQueue, HeapCore, QueueCore, QueueCoreKind, ScheduledEvent,
    };
    pub use crate::sim::sched::{
        dual::DualBoundScheduler,
        partition::{DirectedCut, EdgeDelayScheduler},
        random::RandomScheduler,
        scripted::ScriptedScheduler,
        stall::MaxDelayScheduler,
        sync::SynchronousScheduler,
        BroadcastPlan, Scheduler,
    };
    pub use crate::sim::shard::{ShardCount, ShardMap, ThreadCount, WindowBatch};
    pub use crate::sim::time::{Time, Timestamp};
    pub use crate::topo::Topology;
}
