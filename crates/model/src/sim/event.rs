//! Internal event payload types for the discrete-event engine.
//!
//! Ordering and cancellation live in the generic
//! [`queue::EventQueue`](super::queue::EventQueue); this module only
//! defines what the engine schedules ([`EventKind`]) and the priority
//! band each kind occupies at equal times ([`EventClass`]).

use crate::ids::Slot;

/// Identifier of one broadcast instance (unique per execution).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) struct BcastId(pub u64);

/// Event classes, ordered by processing priority at equal times.
///
/// Crashes fire first (so a crash at time `t` can cut off deliveries at
/// `t`), then receives, then acks — the latter matching the
/// synchronous scheduler's "deliver all current messages, *then* give
/// all nodes their acks" semantics within one lockstep round.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum EventClass {
    Crash = 0,
    Receive = 1,
    Ack = 2,
}

#[derive(Clone, Debug)]
pub(crate) enum EventKind {
    /// Deliver broadcast `bcast` (sent by `from`) to node `to`.
    Receive {
        to: Slot,
        from: Slot,
        bcast: BcastId,
        /// Delivery over an unreliable overlay edge: does not count
        /// toward the ack precondition.
        unreliable: bool,
    },
    /// Acknowledge completion of `bcast` to its sender.
    Ack { node: Slot, bcast: BcastId },
    /// Crash `node` (scheduled from a [`CrashPlan`](super::crash::CrashPlan)).
    Crash { node: Slot },
}

impl EventKind {
    /// The queue priority band for this event kind.
    pub(crate) fn class(&self) -> u8 {
        (match self {
            EventKind::Crash { .. } => EventClass::Crash,
            EventKind::Receive { .. } => EventClass::Receive,
            EventKind::Ack { .. } => EventClass::Ack,
        }) as u8
    }

    /// The slot that processes this event — the slot whose owning
    /// shard the sharded engine routes it to.
    pub(crate) fn target(&self) -> Slot {
        match *self {
            EventKind::Receive { to, .. } => to,
            EventKind::Ack { node, .. } => node,
            EventKind::Crash { node } => node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::queue::EventQueue;
    use crate::sim::time::Time;

    fn recv(to: usize) -> EventKind {
        EventKind::Receive {
            to: Slot(to),
            from: Slot(0),
            bcast: BcastId(0),
            unreliable: false,
        }
    }

    #[test]
    fn queue_pops_time_then_class_then_seq() {
        let mut q = EventQueue::new();
        let ack = EventKind::Ack {
            node: Slot(0),
            bcast: BcastId(0),
        };
        q.push(Time(2), ack.class(), ack);
        q.push(Time(2), recv(1).class(), recv(1));
        let c2 = EventKind::Crash { node: Slot(2) };
        let c3 = EventKind::Crash { node: Slot(3) };
        q.push(Time(1), c2.class(), c2);
        q.push(Time(2), c3.class(), c3);

        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.ticks(), e.payload.class()))
            .collect();
        assert_eq!(
            order,
            vec![
                (1, EventClass::Crash as u8),
                (2, EventClass::Crash as u8),
                (2, EventClass::Receive as u8),
                (2, EventClass::Ack as u8),
            ]
        );
    }

    #[test]
    fn same_class_orders_by_insertion() {
        let mut q = EventQueue::new();
        for to in [3usize, 1, 2] {
            q.push(Time(1), recv(to).class(), recv(to));
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventKind::Receive { to, .. } => to.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![3, 1, 2], "insertion order, not slot order");
    }
}
