//! Internal event queue types for the discrete-event engine.

use std::cmp::Ordering;

use crate::ids::Slot;

use super::time::Time;

/// Identifier of one broadcast instance (unique per execution).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) struct BcastId(pub u64);

/// Event classes, ordered by processing priority at equal times.
///
/// Crashes fire first (so a crash at time `t` can cut off deliveries at
/// `t`), then receives, then acks — the latter matching the
/// synchronous scheduler's "deliver all current messages, *then* give
/// all nodes their acks" semantics within one lockstep round.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum EventClass {
    Crash = 0,
    Receive = 1,
    Ack = 2,
}

#[derive(Clone, Debug)]
pub(crate) enum EventKind {
    /// Deliver broadcast `bcast` (sent by `from`) to node `to`.
    Receive {
        to: Slot,
        from: Slot,
        bcast: BcastId,
        /// Delivery over an unreliable overlay edge: does not count
        /// toward the ack precondition.
        unreliable: bool,
    },
    /// Acknowledge completion of `bcast` to its sender.
    Ack { node: Slot, bcast: BcastId },
    /// Crash `node` (scheduled from a [`CrashPlan`](super::crash::CrashPlan)).
    Crash { node: Slot },
}

impl EventKind {
    fn class(&self) -> EventClass {
        match self {
            EventKind::Crash { .. } => EventClass::Crash,
            EventKind::Receive { .. } => EventClass::Receive,
            EventKind::Ack { .. } => EventClass::Ack,
        }
    }
}

/// A scheduled event. Orders by `(time, class, seq)` so the event heap
/// pops deterministically.
#[derive(Clone, Debug)]
pub(crate) struct Event {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind,
}

impl Event {
    fn key(&self) -> (Time, EventClass, u64) {
        (self.time, self.kind.class(), self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// Reversed: BinaryHeap is a max-heap, we want earliest-first.
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time: u64, seq: u64, kind: EventKind) -> Event {
        Event {
            time: Time(time),
            seq,
            kind,
        }
    }

    #[test]
    fn heap_pops_time_then_class_then_seq() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(
            2,
            0,
            EventKind::Ack {
                node: Slot(0),
                bcast: BcastId(0),
            },
        ));
        heap.push(ev(
            2,
            1,
            EventKind::Receive {
                to: Slot(1),
                from: Slot(0),
                bcast: BcastId(0),
                unreliable: false,
            },
        ));
        heap.push(ev(1, 5, EventKind::Crash { node: Slot(2) }));
        heap.push(ev(2, 9, EventKind::Crash { node: Slot(3) }));

        let order: Vec<_> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time.ticks(), e.kind.class()))
            .collect();
        assert_eq!(
            order,
            vec![
                (1, EventClass::Crash),
                (2, EventClass::Crash),
                (2, EventClass::Receive),
                (2, EventClass::Ack),
            ]
        );
    }

    #[test]
    fn same_class_orders_by_seq() {
        let mut heap = BinaryHeap::new();
        for seq in [3u64, 1, 2] {
            heap.push(ev(
                1,
                seq,
                EventKind::Ack {
                    node: Slot(seq as usize),
                    bcast: BcastId(seq),
                },
            ));
        }
        let seqs: Vec<_> = std::iter::from_fn(|| heap.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }
}
