//! The unified engine configuration: one struct holding every knob
//! that selects *how* a simulation executes (seed, queue core, shard
//! count, worker threads, crash plan), shared by every surface that
//! builds an engine.
//!
//! Before this module existed the same five knobs were re-implemented
//! three times — [`SimBuilder`](super::engine::SimBuilder) fields,
//! [`SimBackend`](crate::mac::SimBackend) fields, and per-subcommand
//! CLI flags — each with its own environment fallback wiring. Now all
//! of them hold an [`EngineConfig`] and delegate their fluent setters
//! to it, and [`EngineConfig::from_env`] is the **single documented
//! path** from the `AMACL_QUEUE_CORE` / `AMACL_SHARDS` /
//! `AMACL_THREADS` / `AMACL_WINDOW_BATCH` environment variables to a
//! configuration. (Each variable still has exactly one low-level parse
//! site — [`QueueCoreKind::from_env`], [`ShardCount::from_env`],
//! [`ThreadCount::from_env`], [`WindowBatch::from_env`] — and each of
//! those rejects malformed values with a panic naming the variable
//! rather than silently falling back.)
//!
//! The config deliberately covers only *execution-architecture* knobs
//! plus the crash plan: everything in it except the crash plan is
//! observably identity-preserving (traces, decisions, and semantic
//! metrics are byte-identical across queue cores, shard counts, and
//! thread counts), so swapping an `EngineConfig` for another with the
//! same seed and crash plan can change performance but never the
//! execution. Scheduler choice, topology, horizon, and tracing stay on
//! the individual builders — they *do* change the execution.

use super::crash::CrashPlan;
use super::queue::QueueCoreKind;
use super::shard::{ShardCount, ThreadCount, WindowBatch};

/// Every execution-architecture knob an engine accepts, in one place:
/// the RNG seed, the event-queue core, the shard count, the
/// worker-thread budget, and the crash plan.
///
/// Construct with [`EngineConfig::default`] (seed 0, heap core,
/// serial, single-threaded, no crashes) or [`EngineConfig::from_env`]
/// (same, but queue core / shards / threads taken from the `AMACL_*`
/// environment variables), then refine with the fluent setters. Both
/// [`SimBuilder`](super::engine::SimBuilder) and
/// [`SimBackend`](crate::mac::SimBackend) accept a whole config via
/// their `config(...)` method and delegate their individual fluent
/// knobs to one of these internally.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineConfig {
    /// Seed for per-node randomness, the engine RNG, and
    /// unreliable-overlay sampling.
    pub seed: u64,
    /// The event-queue core (heap or calendar); purely a performance
    /// knob, see [`QueueCoreKind`].
    pub queue_core: QueueCoreKind,
    /// Worker shards for the conservative time-window coordinator;
    /// purely an execution-architecture knob, see
    /// [`super::shard`].
    pub shards: ShardCount,
    /// Worker threads stepping each conservative window (effective
    /// parallelism is `min(threads, shards)`).
    pub threads: ThreadCount,
    /// How many consecutive conservative windows the persistent worker
    /// pool may batch per wakeup (a superstep); purely a wake-policy
    /// knob, see [`WindowBatch`].
    pub window_batch: WindowBatch,
    /// Scheduled crash failures.
    pub crash_plan: CrashPlan,
}

impl EngineConfig {
    /// The default configuration: seed 0, heap queue core, one shard,
    /// one thread, no crashes. Identical to `EngineConfig::default()`;
    /// provided for call sites that read better with a named
    /// constructor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default configuration with the queue core, shard count, and
    /// thread count taken from the environment.
    ///
    /// This is the **one** sanctioned route from the `AMACL_*`
    /// environment variables into an engine:
    ///
    /// | variable             | knob             | parse site                 |
    /// |----------------------|------------------|----------------------------|
    /// | `AMACL_QUEUE_CORE`   | [`queue_core`]   | [`QueueCoreKind::from_env`]|
    /// | `AMACL_SHARDS`       | [`shards`]       | [`ShardCount::from_env`]   |
    /// | `AMACL_THREADS`      | [`threads`]      | [`ThreadCount::from_env`]  |
    /// | `AMACL_WINDOW_BATCH` | [`window_batch`] | [`WindowBatch::from_env`]  |
    ///
    /// Unset variables fall back to the defaults (heap, 1, 1, auto);
    /// set but malformed values **panic** with a message naming the
    /// variable — typos are never silently ignored.
    ///
    /// [`queue_core`]: EngineConfig::queue_core
    /// [`shards`]: EngineConfig::shards
    /// [`threads`]: EngineConfig::threads
    /// [`window_batch`]: EngineConfig::window_batch
    pub fn from_env() -> Self {
        Self {
            queue_core: QueueCoreKind::from_env(),
            shards: ShardCount::from_env(),
            threads: ThreadCount::from_env(),
            window_batch: WindowBatch::from_env(),
            ..Self::default()
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the event-queue core.
    pub fn queue_core(mut self, kind: QueueCoreKind) -> Self {
        self.queue_core = kind;
        self
    }

    /// Sets the shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = ShardCount::new(shards).expect("shard count must be at least 1");
        self
    }

    /// Sets the worker-thread budget.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = ThreadCount::new(threads).expect("thread count must be at least 1");
        self
    }

    /// Sets the superstep window-batch policy.
    pub fn window_batch(mut self, batch: WindowBatch) -> Self {
        self.window_batch = batch;
        self
    }

    /// Sets the crash plan.
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_heap_no_crashes() {
        let cfg = EngineConfig::new();
        assert_eq!(cfg.seed, 0);
        assert_eq!(cfg.queue_core, QueueCoreKind::Heap);
        assert_eq!(cfg.shards.get(), 1);
        assert_eq!(cfg.threads.get(), 1);
        assert_eq!(cfg.window_batch, WindowBatch::Auto);
        assert!(cfg.crash_plan.specs().is_empty());
        assert_eq!(cfg, EngineConfig::default());
    }

    #[test]
    fn fluent_setters_compose() {
        let cfg = EngineConfig::new()
            .seed(7)
            .queue_core(QueueCoreKind::Calendar)
            .shards(4)
            .threads(2)
            .window_batch(WindowBatch::Fixed(8));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.queue_core, QueueCoreKind::Calendar);
        assert_eq!(cfg.shards.get(), 4);
        assert_eq!(cfg.threads.get(), 2);
        assert_eq!(cfg.window_batch, WindowBatch::Fixed(8));
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn zero_shards_rejected() {
        let _ = EngineConfig::new().shards(0);
    }

    #[test]
    #[should_panic(expected = "thread count must be at least 1")]
    fn zero_threads_rejected() {
        let _ = EngineConfig::new().threads(0);
    }
}
