//! The synchronous (lockstep) scheduler of Section 3.2.
//!
//! "We define the synchronous scheduler ... to be a message scheduler
//! that delivers messages in lock step rounds. That is, it delivers all
//! nodes' current message to all recipients, then provides all nodes
//! with an ack, and then moves on to the next batch of messages."
//!
//! Rounds end at multiples of `round_len` ticks. A broadcast issued at
//! any point inside round `r` is delivered to all neighbors exactly at
//! the round boundary, and the ack arrives at the same boundary —
//! ordered after all deliveries by the engine's event-class ordering,
//! matching the quoted semantics. With `round_len = 1`, "synchronous
//! step `t`" in the proofs corresponds to virtual time `t`.

use crate::ids::Slot;
use crate::sim::time::Time;

use super::{BroadcastPlan, Scheduler};

/// Lockstep round-based scheduler.
#[derive(Clone, Debug)]
pub struct SynchronousScheduler {
    round_len: u64,
}

impl SynchronousScheduler {
    /// Creates a synchronous scheduler with the given round length in
    /// ticks (`F_ack = round_len`).
    ///
    /// # Panics
    ///
    /// Panics if `round_len == 0`.
    pub fn new(round_len: u64) -> Self {
        assert!(round_len > 0, "round length must be positive");
        Self { round_len }
    }

    /// The round length in ticks.
    pub fn round_len(&self) -> u64 {
        self.round_len
    }

    /// The first round boundary strictly after `now`.
    pub fn next_boundary(&self, now: Time) -> Time {
        Time((now.ticks() / self.round_len + 1) * self.round_len)
    }
}

impl Scheduler for SynchronousScheduler {
    fn f_ack(&self) -> u64 {
        self.round_len
    }

    fn plan(&mut self, now: Time, _sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
        let delay = self.next_boundary(now) - now;
        BroadcastPlan {
            receive_delays: vec![delay; neighbors.len()],
            ack_delay: delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_at_next_boundary() {
        let mut s = SynchronousScheduler::new(10);
        let plan = s.plan(Time(0), Slot(0), &[Slot(1), Slot(2)]);
        assert_eq!(plan.receive_delays, vec![10, 10]);
        assert_eq!(plan.ack_delay, 10);
        assert!(plan.validate(2, s.f_ack()).is_ok());

        // Mid-round broadcasts still land on the boundary.
        let plan = s.plan(Time(13), Slot(0), &[Slot(1)]);
        assert_eq!(plan.receive_delays, vec![7]);
        assert_eq!(plan.ack_delay, 7);

        // A broadcast exactly at a boundary waits a full round.
        let plan = s.plan(Time(20), Slot(0), &[Slot(1)]);
        assert_eq!(plan.ack_delay, 10);
    }

    #[test]
    fn unit_rounds_count_steps() {
        let s = SynchronousScheduler::new(1);
        assert_eq!(s.next_boundary(Time(0)), Time(1));
        assert_eq!(s.next_boundary(Time(5)), Time(6));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_round_rejected() {
        SynchronousScheduler::new(0);
    }
}
