//! A scripted scheduler for constructing exact adversarial executions.
//!
//! Assigns each broadcast a single delay (applied to every delivery and
//! the ack) looked up by `(sender, per-sender broadcast index)`. Lower
//! bound demos and regression tests use it to pin down the precise
//! message orderings their arguments need.

use std::collections::BTreeMap;

use crate::ids::Slot;
use crate::sim::time::Time;

use super::{BroadcastPlan, Scheduler};

/// Table-driven scheduler: delay per (sender, nth broadcast).
///
/// Ordered maps (rather than hash maps) keep `Debug` output — which
/// lower-bound demos print into their reports — deterministic across
/// runs and platforms; lookups are by key only, so scheduling itself
/// never depended on iteration order.
#[derive(Clone, Debug)]
pub struct ScriptedScheduler {
    delays: BTreeMap<(usize, u64), u64>,
    default: u64,
    f_ack: u64,
    counters: BTreeMap<usize, u64>,
}

impl ScriptedScheduler {
    /// Creates a scripted scheduler with a default per-broadcast delay.
    ///
    /// # Panics
    ///
    /// Panics if `default == 0`.
    pub fn new(default: u64) -> Self {
        assert!(default >= 1, "delays must be at least 1");
        Self {
            delays: BTreeMap::new(),
            default,
            f_ack: default,
            counters: BTreeMap::new(),
        }
    }

    /// Assigns `delay` to the `nth` broadcast (0-indexed) of `sender`.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0`.
    pub fn delay(mut self, sender: Slot, nth: u64, delay: u64) -> Self {
        assert!(delay >= 1, "delays must be at least 1");
        self.delays.insert((sender.0, nth), delay);
        self.f_ack = self.f_ack.max(delay);
        self
    }
}

impl Scheduler for ScriptedScheduler {
    fn f_ack(&self) -> u64 {
        self.f_ack
    }

    fn plan(&mut self, _now: Time, sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
        let nth = self.counters.entry(sender.0).or_insert(0);
        let delay = self
            .delays
            .get(&(sender.0, *nth))
            .copied()
            .unwrap_or(self.default);
        *nth += 1;
        BroadcastPlan {
            receive_delays: vec![delay; neighbors.len()],
            ack_delay: delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn looks_up_per_broadcast_delays() {
        let mut s = ScriptedScheduler::new(1)
            .delay(Slot(0), 0, 5)
            .delay(Slot(0), 1, 2);
        assert_eq!(s.f_ack(), 5);
        let p0 = s.plan(Time(0), Slot(0), &[Slot(1)]);
        assert_eq!(p0.ack_delay, 5);
        let p1 = s.plan(Time(5), Slot(0), &[Slot(1)]);
        assert_eq!(p1.ack_delay, 2);
        let p2 = s.plan(Time(7), Slot(0), &[Slot(1)]);
        assert_eq!(p2.ack_delay, 1, "falls back to default");
        let q = s.plan(Time(0), Slot(1), &[Slot(0)]);
        assert_eq!(q.ack_delay, 1, "other senders use default");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_delay_rejected() {
        ScriptedScheduler::new(1).delay(Slot(0), 0, 0);
    }
}
