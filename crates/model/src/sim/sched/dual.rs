//! Dual-bound scheduler: the `F_prog` refinement (paper Section 2).
//!
//! Some abstract MAC layer definitions add a second timing parameter
//! `F_prog <= F_ack` bounding how quickly a node *receives some
//! message* while neighbors are broadcasting — modeling that a single
//! transmission lands quickly even when winning the channel for your
//! *own* broadcast (the ack) is slow. The paper omits `F_prog` and
//! flags "refining our upper bound results in a model that includes
//! this second parameter" as future work.
//!
//! [`DualBoundScheduler`] makes the refinement concrete: every delivery
//! lands within `F_prog` of the broadcast, while the ack may take the
//! full `F_ack`. Experiment E11 uses it to show the refinement's bite:
//! a relay *wave* (each hop triggered by a receive) crosses a line in
//! `O(D * F_prog)`, while ack-driven algorithms — both consensus
//! algorithms in this paper — remain `Θ(F_ack)`-per-step, which is
//! exactly why carrying the upper bounds over is a real open problem
//! and not bookkeeping.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::Slot;
use crate::sim::time::Time;

use super::{BroadcastPlan, Scheduler};

/// Scheduler with fast deliveries (`<= F_prog`) and slow acks
/// (`<= F_ack`).
#[derive(Clone, Debug)]
pub struct DualBoundScheduler {
    f_prog: u64,
    f_ack: u64,
    rng: SmallRng,
}

impl DualBoundScheduler {
    /// Creates a dual-bound scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= f_prog <= f_ack`.
    pub fn new(f_prog: u64, f_ack: u64, seed: u64) -> Self {
        assert!(f_prog >= 1, "F_prog must be at least 1");
        assert!(f_prog <= f_ack, "F_prog must not exceed F_ack");
        Self {
            f_prog,
            f_ack,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The progress bound.
    pub fn f_prog(&self) -> u64 {
        self.f_prog
    }
}

impl Scheduler for DualBoundScheduler {
    fn f_ack(&self) -> u64 {
        self.f_ack
    }

    fn plan(&mut self, _now: Time, _sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
        let receive_delays: Vec<u64> = neighbors
            .iter()
            .map(|_| self.rng.gen_range(1..=self.f_prog))
            .collect();
        let floor = receive_delays.iter().copied().max().unwrap_or(1).max(1);
        // The ack is adversarially late: uniformly in the upper half of
        // its legal window, so F_ack genuinely dominates ack-driven
        // algorithms.
        let lo = floor.max(self.f_ack.div_ceil(2)).min(self.f_ack);
        let ack_delay = self.rng.gen_range(lo..=self.f_ack);
        BroadcastPlan {
            receive_delays,
            ack_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_valid_and_split_the_bounds() {
        let mut s = DualBoundScheduler::new(2, 20, 3);
        let nbrs: Vec<Slot> = (1..5).map(Slot).collect();
        for i in 0..200 {
            let plan = s.plan(Time(i), Slot(0), &nbrs);
            plan.validate(nbrs.len(), s.f_ack()).unwrap();
            assert!(plan.receive_delays.iter().all(|&d| d <= 2));
            assert!(plan.ack_delay >= 10, "ack should sit near F_ack");
        }
    }

    #[test]
    fn degenerate_equal_bounds_work() {
        let mut s = DualBoundScheduler::new(3, 3, 0);
        let plan = s.plan(Time(0), Slot(0), &[Slot(1)]);
        plan.validate(1, 3).unwrap();
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_f_prog_above_f_ack() {
        DualBoundScheduler::new(5, 3, 0);
    }
}
