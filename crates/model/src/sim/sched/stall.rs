//! The maximum-delay adversary of Theorem 3.10.
//!
//! "Consider an execution ... with a variant of the synchronous
//! scheduler that delays the maximum `F_ack` time between each
//! synchronous step." Every broadcast takes the full `F_ack`: all
//! neighbors receive at `now + F_ack` and the ack lands at the same
//! instant (after the deliveries, by event-class ordering). Information
//! therefore propagates at exactly one hop per `F_ack`, which is what
//! forces the `floor(D/2) * F_ack` decision lower bound.

use crate::ids::Slot;
use crate::sim::time::Time;

use super::{BroadcastPlan, Scheduler};

/// Scheduler that stalls every broadcast for the full `F_ack`.
#[derive(Clone, Copy, Debug)]
pub struct MaxDelayScheduler {
    f_ack: u64,
}

impl MaxDelayScheduler {
    /// Creates the adversary for a given `F_ack >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `f_ack == 0`.
    pub fn new(f_ack: u64) -> Self {
        assert!(f_ack >= 1, "F_ack must be at least 1");
        Self { f_ack }
    }
}

impl Scheduler for MaxDelayScheduler {
    fn f_ack(&self) -> u64 {
        self.f_ack
    }

    /// Every delivery and ack takes exactly `F_ack`, so the sharded
    /// engine gets the widest possible conservative window.
    fn min_delay(&self) -> u64 {
        self.f_ack
    }

    fn plan(&mut self, _now: Time, _sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
        BroadcastPlan {
            receive_delays: vec![self.f_ack; neighbors.len()],
            ack_delay: self.f_ack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_takes_full_f_ack() {
        let mut s = MaxDelayScheduler::new(6);
        let plan = s.plan(Time(11), Slot(0), &[Slot(1), Slot(2)]);
        assert_eq!(plan.receive_delays, vec![6, 6]);
        assert_eq!(plan.ack_delay, 6);
        plan.validate(2, 6).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_f_ack_rejected() {
        MaxDelayScheduler::new(0);
    }
}
