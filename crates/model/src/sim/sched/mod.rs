//! Message schedulers: the model's adversary.
//!
//! The abstract MAC layer quantifies over all schedulers that (a)
//! deliver each broadcast to every non-faulty neighbor before the
//! sender's ack and (b) issue the ack within `F_ack` ticks of the
//! broadcast. Everything else — delivery order, skew between
//! neighbors, how close to the bound the ack sits — is adversarial.
//!
//! Each lower bound in the paper is proved by *exhibiting* a scheduler;
//! the implementations here make those adversaries runnable:
//!
//! * [`sync::SynchronousScheduler`] — the lockstep scheduler defined in
//!   Section 3.2 and reused in 3.3,
//! * [`partition::EdgeDelayScheduler`] — wraps any scheduler and
//!   withholds messages across directed cuts until a release time (the
//!   "semi-synchronous" scheduler of Section 3.3, the `q`-silencing
//!   scheduler of Section 3.2, and the partition argument of 3.4),
//! * [`stall::MaxDelayScheduler`] — takes the full `F_ack` on every
//!   broadcast (the Theorem 3.10 adversary),
//! * [`random::RandomScheduler`] — seeded random delays and skew, for
//!   property tests that sample the scheduler space.

pub mod dual;
pub mod partition;
pub mod random;
pub mod scripted;
pub mod stall;
pub mod sync;

use crate::ids::Slot;

use super::time::Time;

/// A delivery plan for one broadcast, produced by a [`Scheduler`].
///
/// `receive_delays[i]` is the delay (in ticks, relative to the
/// broadcast instant) before `neighbors[i]` receives the message;
/// `ack_delay` is the delay before the sender's ack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastPlan {
    /// Per-neighbor delivery delays, parallel to the `neighbors` slice
    /// passed to [`Scheduler::plan`].
    pub receive_delays: Vec<u64>,
    /// Delay before the sender's ack. Must be at least 1, at least
    /// every receive delay, and at most [`Scheduler::f_ack`].
    pub ack_delay: u64,
}

impl BroadcastPlan {
    /// Checks the model invariants; returns a description of the first
    /// violation. `n_neighbors` is the expected plan width.
    pub fn validate(&self, n_neighbors: usize, f_ack: u64) -> Result<(), String> {
        if self.receive_delays.len() != n_neighbors {
            return Err(format!(
                "plan covers {} neighbors, expected {n_neighbors}",
                self.receive_delays.len()
            ));
        }
        if self.ack_delay == 0 {
            return Err("ack_delay must be >= 1".into());
        }
        if self.ack_delay > f_ack {
            return Err(format!(
                "ack_delay {} exceeds F_ack {f_ack}",
                self.ack_delay
            ));
        }
        if let Some(&max_recv) = self.receive_delays.iter().max() {
            if max_recv > self.ack_delay {
                return Err(format!(
                    "receive delay {max_recv} after ack delay {}",
                    self.ack_delay
                ));
            }
        }
        Ok(())
    }
}

/// The adversary controlling message delivery.
///
/// Implementations must be deterministic (seeded randomness only) so
/// executions are reproducible.
pub trait Scheduler {
    /// The bound `F_ack` this scheduler honors: the maximum delay
    /// between any broadcast and its ack. Finite, but unknown to the
    /// *nodes* — only the simulator and the analysis see it.
    fn f_ack(&self) -> u64;

    /// The **minimum** delay this scheduler ever assigns to a delivery
    /// or an ack, in ticks — the *lookahead* of the conservative
    /// sharded engine (see [`crate::sim::shard`]).
    ///
    /// The abstract MAC layer gives every scheduler a strictly
    /// positive floor for free: a broadcast is never received (and
    /// certainly never acked) at the instant it is issued, so `1` — the
    /// default — is always sound. Schedulers that provably delay more
    /// (e.g. the max-delay adversary, which stalls everything the full
    /// `F_ack`) may override this to widen the engine's time windows;
    /// declaring more lookahead than a plan honors is an error the
    /// engine panics on, and declaring `0` is rejected at build time
    /// (a conservative engine cannot advance on zero lookahead).
    fn min_delay(&self) -> u64 {
        1
    }

    /// Plans delivery for a broadcast issued by `sender` at `now` to
    /// the given neighbors (in sorted slot order).
    ///
    /// The engine validates the plan against [`BroadcastPlan::validate`]
    /// and panics on violations, so a buggy adversary cannot silently
    /// break the model guarantees.
    fn plan(&mut self, now: Time, sender: Slot, neighbors: &[Slot]) -> BroadcastPlan;
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn f_ack(&self) -> u64 {
        (**self).f_ack()
    }
    fn min_delay(&self) -> u64 {
        (**self).min_delay()
    }
    fn plan(&mut self, now: Time, sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
        (**self).plan(now, sender, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_violations() {
        let ok = BroadcastPlan {
            receive_delays: vec![1, 2],
            ack_delay: 2,
        };
        assert!(ok.validate(2, 5).is_ok());

        assert!(ok.validate(3, 5).is_err(), "width mismatch");

        let zero_ack = BroadcastPlan {
            receive_delays: vec![],
            ack_delay: 0,
        };
        assert!(zero_ack.validate(0, 5).is_err());

        let late_recv = BroadcastPlan {
            receive_delays: vec![4],
            ack_delay: 3,
        };
        assert!(late_recv.validate(1, 5).is_err());

        let over_f_ack = BroadcastPlan {
            receive_delays: vec![1],
            ack_delay: 9,
        };
        assert!(over_f_ack.validate(1, 5).is_err());
    }
}
