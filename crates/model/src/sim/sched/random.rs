//! Seeded random adversary.
//!
//! Samples per-neighbor delivery delays and ack slack uniformly inside
//! the model's envelope. Property tests run algorithms against many
//! seeds to sample the scheduler space the paper quantifies over.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::Slot;
use crate::sim::time::Time;

use super::{BroadcastPlan, Scheduler};

/// Random-delay scheduler, deterministic in its seed.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    f_ack: u64,
    min_delay: u64,
    rng: SmallRng,
}

impl RandomScheduler {
    /// Creates a random scheduler with delays in `[1, f_ack]`.
    ///
    /// # Panics
    ///
    /// Panics if `f_ack == 0`.
    pub fn new(f_ack: u64, seed: u64) -> Self {
        Self::with_min_delay(f_ack, 1, seed)
    }

    /// As [`RandomScheduler::new`], with delays at least `min_delay`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min_delay <= f_ack`.
    pub fn with_min_delay(f_ack: u64, min_delay: u64, seed: u64) -> Self {
        assert!(f_ack >= 1, "F_ack must be at least 1");
        assert!(
            (1..=f_ack).contains(&min_delay),
            "min_delay must be in [1, F_ack]"
        );
        Self {
            f_ack,
            min_delay,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn f_ack(&self) -> u64 {
        self.f_ack
    }

    /// Delays are sampled from `[min_delay, F_ack]`, so the configured
    /// floor is exactly the sharded engine's lookahead.
    fn min_delay(&self) -> u64 {
        self.min_delay
    }

    fn plan(&mut self, _now: Time, _sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
        let receive_delays: Vec<u64> = neighbors
            .iter()
            .map(|_| self.rng.gen_range(self.min_delay..=self.f_ack))
            .collect();
        let floor = receive_delays.iter().copied().max().unwrap_or(1).max(1);
        let ack_delay = self.rng.gen_range(floor..=self.f_ack);
        BroadcastPlan {
            receive_delays,
            ack_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_always_valid() {
        let mut s = RandomScheduler::new(7, 42);
        let neighbors: Vec<Slot> = (1..6).map(Slot).collect();
        for i in 0..200 {
            let plan = s.plan(Time(i), Slot(0), &neighbors);
            plan.validate(neighbors.len(), s.f_ack()).unwrap();
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = RandomScheduler::new(9, 7);
        let mut b = RandomScheduler::new(9, 7);
        let nbrs = [Slot(1), Slot(2), Slot(3)];
        for i in 0..50 {
            assert_eq!(
                a.plan(Time(i), Slot(0), &nbrs),
                b.plan(Time(i), Slot(0), &nbrs)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomScheduler::new(100, 1);
        let mut b = RandomScheduler::new(100, 2);
        let nbrs: Vec<Slot> = (1..10).map(Slot).collect();
        let pa = a.plan(Time(0), Slot(0), &nbrs);
        let pb = b.plan(Time(0), Slot(0), &nbrs);
        assert_ne!(pa, pb);
    }

    #[test]
    fn respects_min_delay() {
        let mut s = RandomScheduler::with_min_delay(10, 5, 3);
        for _ in 0..100 {
            let plan = s.plan(Time(0), Slot(0), &[Slot(1), Slot(2)]);
            assert!(plan.receive_delays.iter().all(|&d| d >= 5));
        }
    }

    #[test]
    fn handles_leaf_nodes() {
        // A node with no neighbors still gets a valid ack.
        let mut s = RandomScheduler::new(4, 0);
        let plan = s.plan(Time(0), Slot(0), &[]);
        plan.validate(0, 4).unwrap();
        assert!(plan.ack_delay >= 1);
    }
}
