//! Cut-delaying scheduler wrapper: the workhorse of the paper's
//! partitioning arguments.
//!
//! [`EdgeDelayScheduler`] wraps any base scheduler and postpones
//! deliveries that cross configured *directed cuts* until a release
//! time. The sender's ack is postponed along with them (the model
//! requires the ack to follow every delivery), which is legal because
//! `F_ack` merely has to be finite — the nodes never know it.
//!
//! This single wrapper implements three of the paper's adversaries:
//!
//! * Section 3.2 (`alpha_A`): delay everything *from* the bridge `q`
//!   until after step `t`, so the two gadgets cannot tell Network A
//!   from Network B.
//! * Section 3.3 (semi-synchronous scheduler): delay everything from
//!   the `L_{D-1}` hub into the two `L_D` copies until after step `t`.
//! * Section 3.4: delay everything across the middle of a line, so the
//!   endpoints must decide on half the information.

use std::collections::BTreeSet;

use crate::ids::Slot;
use crate::sim::time::Time;

use super::{BroadcastPlan, Scheduler};

/// One directed cut with a release time: deliveries from a node in
/// `from` to a node in `to` are withheld until `release`.
#[derive(Clone, Debug)]
pub struct DirectedCut {
    from: BTreeSet<Slot>,
    to: BTreeSet<Slot>,
    release: Time,
}

impl DirectedCut {
    /// Creates a cut delaying `from -> to` deliveries until `release`.
    pub fn new(
        from: impl IntoIterator<Item = Slot>,
        to: impl IntoIterator<Item = Slot>,
        release: Time,
    ) -> Self {
        Self {
            from: from.into_iter().collect(),
            to: to.into_iter().collect(),
            release,
        }
    }

    /// The release time of this cut.
    pub fn release(&self) -> Time {
        self.release
    }

    fn applies(&self, sender: Slot, receiver: Slot) -> bool {
        self.from.contains(&sender) && self.to.contains(&receiver)
    }
}

/// Scheduler wrapper that enforces a set of [`DirectedCut`]s on top of
/// a base scheduler.
#[derive(Clone, Debug)]
pub struct EdgeDelayScheduler<S> {
    inner: S,
    cuts: Vec<DirectedCut>,
}

impl<S: Scheduler> EdgeDelayScheduler<S> {
    /// Wraps `inner` with the given cuts.
    pub fn new(inner: S, cuts: Vec<DirectedCut>) -> Self {
        Self { inner, cuts }
    }

    /// The latest release time among all cuts (zero when empty).
    pub fn max_release(&self) -> Time {
        self.cuts
            .iter()
            .map(DirectedCut::release)
            .max()
            .unwrap_or(Time::ZERO)
    }
}

impl<S: Scheduler> Scheduler for EdgeDelayScheduler<S> {
    /// `F_ack` must cover the worst stalled broadcast: one issued at
    /// time zero and held until the last release, then delivered under
    /// the base scheduler's bound.
    fn f_ack(&self) -> u64 {
        self.max_release().ticks() + self.inner.f_ack()
    }

    /// Cuts only ever *postpone* deliveries (and drag the ack along),
    /// so the base scheduler's floor still holds.
    fn min_delay(&self) -> u64 {
        self.inner.min_delay()
    }

    fn plan(&mut self, now: Time, sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
        let mut plan = self.inner.plan(now, sender, neighbors);
        for (i, &nbr) in neighbors.iter().enumerate() {
            for cut in &self.cuts {
                if cut.applies(sender, nbr) && now + plan.receive_delays[i] < cut.release {
                    plan.receive_delays[i] = cut.release - now;
                }
            }
        }
        let floor = plan.receive_delays.iter().copied().max().unwrap_or(0);
        plan.ack_delay = plan.ack_delay.max(floor).max(1);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::sched::sync::SynchronousScheduler;

    fn cut_scheduler(release: u64) -> EdgeDelayScheduler<SynchronousScheduler> {
        EdgeDelayScheduler::new(
            SynchronousScheduler::new(1),
            vec![DirectedCut::new([Slot(0)], [Slot(1)], Time(release))],
        )
    }

    #[test]
    fn delays_only_cut_edges() {
        let mut s = cut_scheduler(50);
        let plan = s.plan(Time(0), Slot(0), &[Slot(1), Slot(2)]);
        assert_eq!(plan.receive_delays, vec![50, 1]);
        assert_eq!(plan.ack_delay, 50, "ack stalls with the delivery");
        plan.validate(2, s.f_ack()).unwrap();
    }

    #[test]
    fn reverse_direction_unaffected() {
        let mut s = cut_scheduler(50);
        let plan = s.plan(Time(0), Slot(1), &[Slot(0), Slot(2)]);
        assert_eq!(plan.receive_delays, vec![1, 1]);
        assert_eq!(plan.ack_delay, 1);
    }

    #[test]
    fn after_release_behaves_like_base() {
        let mut s = cut_scheduler(5);
        let plan = s.plan(Time(9), Slot(0), &[Slot(1)]);
        assert_eq!(plan.receive_delays, vec![1]);
        assert_eq!(plan.ack_delay, 1);
    }

    #[test]
    fn straddling_release_shortens_delay() {
        let mut s = cut_scheduler(5);
        // Broadcast at time 3: held until 5, so delay 2.
        let plan = s.plan(Time(3), Slot(0), &[Slot(1)]);
        assert_eq!(plan.receive_delays, vec![5 - 3]);
    }

    #[test]
    fn multiple_cuts_take_max() {
        let mut s = EdgeDelayScheduler::new(
            SynchronousScheduler::new(1),
            vec![
                DirectedCut::new([Slot(0)], [Slot(1)], Time(10)),
                DirectedCut::new([Slot(0)], [Slot(1), Slot(2)], Time(20)),
            ],
        );
        let plan = s.plan(Time(0), Slot(0), &[Slot(1), Slot(2)]);
        assert_eq!(plan.receive_delays, vec![20, 20]);
        assert_eq!(s.max_release(), Time(20));
        assert_eq!(s.f_ack(), 21);
    }
}
