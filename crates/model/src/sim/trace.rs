//! Execution traces and aggregate metrics.

use crate::ids::Slot;
use crate::proc::Value;

use super::time::Time;

/// One observable event in an execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A node's broadcast was accepted by the MAC layer.
    Broadcast {
        /// Event time.
        time: Time,
        /// Sending node.
        slot: Slot,
        /// Number of ids in the message (see [`Payload`](crate::msg::Payload)).
        ids: usize,
    },
    /// A message was delivered.
    Deliver {
        /// Event time.
        time: Time,
        /// Sender.
        from: Slot,
        /// Receiver.
        to: Slot,
        /// Delivered over an unreliable overlay edge.
        unreliable: bool,
    },
    /// A node received the ack for its outstanding broadcast.
    Ack {
        /// Event time.
        time: Time,
        /// Acked node.
        slot: Slot,
    },
    /// A node crashed.
    Crash {
        /// Event time.
        time: Time,
        /// Crashed node.
        slot: Slot,
    },
    /// A node performed its irrevocable decide action.
    Decide {
        /// Event time.
        time: Time,
        /// Deciding node.
        slot: Slot,
        /// Decided value.
        value: Value,
    },
}

impl TraceEvent {
    /// The event's time.
    pub fn time(&self) -> Time {
        match *self {
            TraceEvent::Broadcast { time, .. }
            | TraceEvent::Deliver { time, .. }
            | TraceEvent::Ack { time, .. }
            | TraceEvent::Crash { time, .. }
            | TraceEvent::Decide { time, .. } => time,
        }
    }
}

/// Record tags for the binary trace ring (3 bits of word 1).
const TAG_BROADCAST: u64 = 0;
const TAG_DELIVER: u64 = 1;
const TAG_ACK: u64 = 2;
const TAG_CRASH: u64 = 3;
const TAG_DECIDE: u64 = 4;
/// Slot fields are packed into 30 bits each (bits 3..33 and 33..63 of
/// word 1); simulations are bounded far below 2^30 nodes.
const SLOT_BITS: u64 = 30;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
/// The `unreliable` flag of a Deliver record (bit 63 of word 1).
const UNRELIABLE_BIT: u64 = 1 << 63;
/// Words per ring record.
const RECORD_WORDS: usize = 3;

/// Packs one [`TraceEvent`] into a fixed-width three-word record:
/// word 0 is the time in ticks, word 1 packs `tag | slot/from << 3 |
/// to << 33 | unreliable << 63`, word 2 carries the tag-specific
/// payload (id count for Broadcast, decided value for Decide, 0
/// otherwise). The encoding is injective, so comparing ring words is
/// exactly comparing event sequences.
fn encode(ev: &TraceEvent) -> [u64; RECORD_WORDS] {
    let pack = |tag: u64, a: Slot, b: u64| {
        debug_assert!((a.0 as u64) <= SLOT_MASK && b <= SLOT_MASK);
        tag | ((a.0 as u64) << 3) | (b << (3 + SLOT_BITS))
    };
    match *ev {
        TraceEvent::Broadcast { time, slot, ids } => {
            [time.ticks(), pack(TAG_BROADCAST, slot, 0), ids as u64]
        }
        TraceEvent::Deliver {
            time,
            from,
            to,
            unreliable,
        } => [
            time.ticks(),
            pack(TAG_DELIVER, from, to.0 as u64) | if unreliable { UNRELIABLE_BIT } else { 0 },
            0,
        ],
        TraceEvent::Ack { time, slot } => [time.ticks(), pack(TAG_ACK, slot, 0), 0],
        TraceEvent::Crash { time, slot } => [time.ticks(), pack(TAG_CRASH, slot, 0), 0],
        TraceEvent::Decide { time, slot, value } => {
            [time.ticks(), pack(TAG_DECIDE, slot, 0), value]
        }
    }
}

/// Inverse of [`encode`] for one record.
fn decode(rec: &[u64]) -> TraceEvent {
    let time = Time(rec[0]);
    let slot = Slot(((rec[1] >> 3) & SLOT_MASK) as usize);
    match rec[1] & 0b111 {
        TAG_BROADCAST => TraceEvent::Broadcast {
            time,
            slot,
            ids: rec[2] as usize,
        },
        TAG_DELIVER => TraceEvent::Deliver {
            time,
            from: slot,
            to: Slot(((rec[1] >> (3 + SLOT_BITS)) & SLOT_MASK) as usize),
            unreliable: rec[1] & UNRELIABLE_BIT != 0,
        },
        TAG_ACK => TraceEvent::Ack { time, slot },
        TAG_CRASH => TraceEvent::Crash { time, slot },
        TAG_DECIDE => TraceEvent::Decide {
            time,
            slot,
            value: rec[2],
        },
        tag => unreachable!("corrupt trace ring record tag {tag}"),
    }
}

/// An optionally-recorded event log.
///
/// # Storage: an append-only binary ring
///
/// The hot path never stores [`TraceEvent`]s: [`Trace::push`] packs
/// each event into a fixed-width three-word record (the private
/// `encode` function) appended to a flat `Vec<u64>` — one branch-free
/// stamp, no
/// per-variant layout, a third the footprint of the enum. The typed
/// view the rest of the codebase consumes ([`Trace::events`],
/// [`Trace::decisions`]) is **rendered lazily** on first access and
/// cached; a later push invalidates the cache. Rendering invariant:
/// `decode(encode(ev)) == ev` for every event, so the rendered view
/// is bit-identical to what an eager `Vec<TraceEvent>` would have
/// recorded — conformance checking, cross-config identity, and DPOR
/// replay see exactly the traces they saw before the ring existed.
///
/// Equality compares the enabled flag and the raw ring words; since
/// the encoding is injective this is precisely event-sequence
/// equality — the assertion the sharded engine's determinism contract
/// is stated in.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    ring: Vec<u64>,
    /// Lazily rendered typed view of `ring`; invalidated on push.
    rendered: std::sync::OnceLock<Vec<TraceEvent>>,
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.enabled == other.enabled && self.ring == other.ring
    }
}

impl Eq for Trace {}

impl Trace {
    /// Creates a trace; events are recorded only when `enabled`.
    ///
    /// Traces are normally produced by the simulation engine, but
    /// constructing one by hand is useful for feeding synthetic event
    /// logs to the [conformance checker](super::conformance).
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            ring: Vec::new(),
            rendered: std::sync::OnceLock::new(),
        }
    }

    /// Appends an event (no-op when recording is disabled).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.ring.extend_from_slice(&encode(&ev));
            if self.rendered.get().is_some() {
                self.rendered = std::sync::OnceLock::new();
            }
        }
    }

    /// `true` when recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of recorded events (no rendering).
    pub fn len(&self) -> usize {
        self.ring.len() / RECORD_WORDS
    }

    /// `true` when nothing has been recorded (no rendering).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// All recorded events, in processing order (rendered from the
    /// ring on first call after a push, then cached).
    pub fn events(&self) -> &[TraceEvent] {
        self.rendered
            .get_or_init(|| self.ring.chunks_exact(RECORD_WORDS).map(decode).collect())
    }

    /// Recorded decide events, in order.
    pub fn decisions(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Decide { .. }))
    }
}

/// Aggregate counters for one execution.
///
/// Equality deliberately ignores the wall-clock thread-timing fields
/// ([`Metrics::shard_busy_ns`], [`Metrics::shard_barrier_wait_ns`]),
/// the payload-custody layout counters
/// ([`Metrics::payload_clones`], [`Metrics::payload_moves`],
/// [`Metrics::arena_bytes_peak`]), and the pool-scheduling counters
/// ([`Metrics::worker_wakeups`], [`Metrics::superstep_count`],
/// [`Metrics::serial_window_shortcuts`], [`Metrics::worker_spawns`]):
/// every other counter is a deterministic function of the execution
/// and participates in the byte-identity contract across queue cores,
/// shard counts, and thread counts. The timing fields measure the
/// host machine, the custody counters measure the memory layout — a
/// cross-shard delivery legitimately clones at `S = 4` where `S = 1`
/// moves — and the pool counters measure wake policy (batch cap,
/// serial gate, worker availability), so all three families
/// legitimately differ between semantically identical runs.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Broadcasts accepted by the MAC layer.
    pub broadcasts: u64,
    /// Broadcast attempts discarded because one was outstanding.
    pub busy_discards: u64,
    /// Reliable-edge message deliveries.
    pub deliveries: u64,
    /// Unreliable-overlay deliveries.
    pub unreliable_deliveries: u64,
    /// Acks delivered to senders.
    pub acks: u64,
    /// Crashes that fired.
    pub crashes: u64,
    /// Total events processed by the engine.
    pub events: u64,
    /// Entries pushed onto the event-queue core.
    pub queue_pushes: u64,
    /// Entries tombstone-cancelled on the event-queue core.
    pub queue_cancellations: u64,
    /// Queue entries that missed the core's fast path (calendar
    /// overflow-tier inserts; always 0 on the heap core).
    pub queue_bucket_overflows: u64,
    /// Deliveries routed through a cross-shard mailbox (always 0 on a
    /// serial, single-shard run). High values relative to `deliveries`
    /// mean the shard partition cuts across the traffic pattern.
    pub cross_shard_deliveries: u64,
    /// Conservative time windows the sharded coordinator opened
    /// (always 0 serial). `events / shard_window_advances` is the mean
    /// batch the lookahead buys per window.
    pub shard_window_advances: u64,
    /// Non-empty per-edge mailboxes drained at window boundaries
    /// (always 0 serial).
    pub shard_mailbox_flushes: u64,
    /// Events processed per shard (length = shard count). Populated
    /// by the sharded coordinator only — a serial run reports `[0]`
    /// (its fast path skips the per-shard accounting, and `events`
    /// already carries the total). The spread is the load-imbalance
    /// signal the sweep reports surface.
    pub per_shard_events: Vec<u64>,
    /// Wall-clock nanoseconds each shard's worker spent doing real
    /// work — flushing its inbox, draining its queue, and stepping its
    /// events — summed over all parallel windows (length = shard
    /// count; empty unless the thread-per-shard stepper ran). Wall
    /// clock, so **excluded from equality**: see the type docs.
    pub shard_busy_ns: Vec<u64>,
    /// Wall-clock nanoseconds each shard's worker spent waiting at
    /// window-boundary barriers for the slowest sibling (length =
    /// shard count; empty unless the parallel stepper ran). Together
    /// with [`Metrics::shard_busy_ns`] this makes coordination
    /// overhead observable instead of inferred from end-to-end wall
    /// clock: see [`Metrics::barrier_pct`]. Excluded from equality.
    pub shard_barrier_wait_ns: Vec<u64>,
    /// Times a parked pool worker was woken for a superstep, summed
    /// over all workers (always 0 serial/inline). Scheduling policy,
    /// not execution semantics — the serial gate and batch cap change
    /// it freely — so **excluded from equality** like the wall-clock
    /// fields.
    pub worker_wakeups: u64,
    /// Supersteps the persistent pool ran: each wakes every worker
    /// once and covers up to `window_batch` consecutive windows
    /// (always 0 serial/inline). Excluded from equality (see
    /// [`Metrics::worker_wakeups`]).
    pub superstep_count: u64,
    /// Windows the adaptive serial gate stepped inline on the
    /// coordinator without waking workers, because the previous
    /// window's event count fell below the shortcut threshold (always
    /// 0 serial). Excluded from equality (see
    /// [`Metrics::worker_wakeups`]).
    pub serial_window_shortcuts: u64,
    /// OS threads the engine spawned for this run: the persistent pool
    /// spawns its workers once per `run`/`run_until` call, so this is
    /// O(1) in the window count (always 0 serial/inline). Excluded
    /// from equality (see [`Metrics::worker_wakeups`]).
    pub worker_spawns: u64,
    /// Payload clones the engine's arena performed: one per
    /// shared-reference delivery (an earlier consumer of a payload
    /// some later event still needs) plus one per destination shard a
    /// cross-shard broadcast imports into. Configuration-dependent —
    /// sharding trades moves for per-shard import clones — so
    /// **excluded from equality** like the wall-clock fields.
    pub payload_clones: u64,
    /// Payloads handed to their final consumer by move (no copy) —
    /// the arena hot path's common case. Excluded from equality (see
    /// [`Metrics::payload_clones`]).
    pub payload_moves: u64,
    /// High-water in-flight payload footprint in bytes, summed over
    /// the per-shard arenas: peak live payload count × payload size.
    /// Excluded from equality (see [`Metrics::payload_clones`]).
    pub arena_bytes_peak: u64,
    /// Largest per-message id count observed.
    pub max_message_ids: usize,
    /// Sum of id counts over all broadcasts.
    pub total_message_ids: u64,
    /// Broadcast count per node (bottleneck analysis, experiment E3).
    pub per_slot_broadcasts: Vec<u64>,
}

impl PartialEq for Metrics {
    /// Field-by-field equality over every *deterministic* counter; the
    /// wall-clock `shard_busy_ns`/`shard_barrier_wait_ns` vectors, the
    /// layout-dependent `payload_clones`/`payload_moves`/
    /// `arena_bytes_peak` counters, and the wake-policy
    /// `worker_wakeups`/`superstep_count`/`serial_window_shortcuts`/
    /// `worker_spawns` counters are intentionally skipped (see the
    /// type docs).
    fn eq(&self, other: &Self) -> bool {
        self.broadcasts == other.broadcasts
            && self.busy_discards == other.busy_discards
            && self.deliveries == other.deliveries
            && self.unreliable_deliveries == other.unreliable_deliveries
            && self.acks == other.acks
            && self.crashes == other.crashes
            && self.events == other.events
            && self.queue_pushes == other.queue_pushes
            && self.queue_cancellations == other.queue_cancellations
            && self.queue_bucket_overflows == other.queue_bucket_overflows
            && self.cross_shard_deliveries == other.cross_shard_deliveries
            && self.shard_window_advances == other.shard_window_advances
            && self.shard_mailbox_flushes == other.shard_mailbox_flushes
            && self.per_shard_events == other.per_shard_events
            && self.max_message_ids == other.max_message_ids
            && self.total_message_ids == other.total_message_ids
            && self.per_slot_broadcasts == other.per_slot_broadcasts
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// Creates zeroed metrics for an `n`-node execution.
    pub fn new(n: usize) -> Self {
        Self {
            per_slot_broadcasts: vec![0; n],
            ..Self::default()
        }
    }

    /// The largest number of broadcasts performed by any single node —
    /// the bottleneck measure behind the `Theta(n * F_ack)` flooding
    /// lower bound discussed in Section 4.2.
    pub fn max_broadcasts_per_slot(&self) -> u64 {
        self.per_slot_broadcasts.iter().copied().max().unwrap_or(0)
    }

    /// Shard load imbalance: the busiest shard's event share over the
    /// mean (`1.0` = perfectly balanced; `1.0` when nothing ran or the
    /// run was serial).
    pub fn shard_skew(&self) -> f64 {
        let total: u64 = self.per_shard_events.iter().sum();
        let max = self.per_shard_events.iter().copied().max().unwrap_or(0);
        if total == 0 || self.per_shard_events.is_empty() {
            1.0
        } else {
            max as f64 * self.per_shard_events.len() as f64 / total as f64
        }
    }

    /// Share of the parallel stepper's worker time lost to
    /// window-boundary barriers, in percent: `wait / (busy + wait)`
    /// summed over all shards. `0.0` when the parallel stepper never
    /// ran (or never did measurable work). Wall-clock derived, so this
    /// is a diagnostic — never part of any identity comparison.
    pub fn barrier_pct(&self) -> f64 {
        let busy: u64 = self.shard_busy_ns.iter().sum();
        let wait: u64 = self.shard_barrier_wait_ns.iter().sum();
        if busy + wait == 0 {
            0.0
        } else {
            wait as f64 * 100.0 / (busy + wait) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false);
        t.push(TraceEvent::Ack {
            time: Time(1),
            slot: Slot(0),
        });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::Broadcast {
            time: Time(1),
            slot: Slot(0),
            ids: 2,
        });
        t.push(TraceEvent::Decide {
            time: Time(3),
            slot: Slot(0),
            value: 1,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.decisions().count(), 1);
        assert_eq!(t.events()[1].time(), Time(3));
    }

    #[test]
    fn ring_roundtrips_every_event_shape() {
        let events = [
            TraceEvent::Broadcast {
                time: Time(0),
                slot: Slot(0),
                ids: 7,
            },
            TraceEvent::Deliver {
                time: Time(12),
                from: Slot(3),
                to: Slot((1 << 30) - 1),
                unreliable: false,
            },
            TraceEvent::Deliver {
                time: Time(u64::MAX),
                from: Slot((1 << 30) - 1),
                to: Slot(0),
                unreliable: true,
            },
            TraceEvent::Ack {
                time: Time(5),
                slot: Slot(9),
            },
            TraceEvent::Crash {
                time: Time(6),
                slot: Slot(1),
            },
            TraceEvent::Decide {
                time: Time(7),
                slot: Slot(2),
                value: u64::MAX,
            },
        ];
        let mut t = Trace::new(true);
        for ev in events {
            assert_eq!(decode(&encode(&ev)), ev, "{ev:?}");
            t.push(ev);
        }
        assert_eq!(t.events(), &events[..]);
        assert_eq!(t.len(), events.len());
        // A push after rendering invalidates the cached view.
        t.push(events[0]);
        assert_eq!(t.events().len(), events.len() + 1);
        assert_eq!(t.events().last(), Some(&events[0]));
    }

    #[test]
    fn ring_equality_is_event_equality() {
        let ev = TraceEvent::Ack {
            time: Time(3),
            slot: Slot(1),
        };
        let mut a = Trace::new(true);
        let mut b = Trace::new(true);
        a.push(ev);
        // Rendering one side must not affect equality.
        let _ = a.events();
        assert_ne!(a, b);
        b.push(ev);
        assert_eq!(a, b);
        b.push(ev);
        assert_ne!(a, b);
    }

    #[test]
    fn shard_skew_measures_imbalance() {
        let mut m = Metrics::new(4);
        assert_eq!(m.shard_skew(), 1.0, "no shards recorded");
        m.per_shard_events = vec![10, 10];
        assert_eq!(m.shard_skew(), 1.0, "balanced");
        m.per_shard_events = vec![30, 10];
        assert_eq!(m.shard_skew(), 1.5);
        m.per_shard_events = vec![0, 0, 0];
        assert_eq!(m.shard_skew(), 1.0, "empty run");
    }

    #[test]
    fn metrics_bottleneck_helper() {
        let mut m = Metrics::new(3);
        m.per_slot_broadcasts[1] = 7;
        m.per_slot_broadcasts[2] = 3;
        assert_eq!(m.max_broadcasts_per_slot(), 7);
        assert_eq!(Metrics::new(0).max_broadcasts_per_slot(), 0);
    }
}
