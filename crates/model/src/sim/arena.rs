//! Generation-indexed, refcounted payload arena for the engine's
//! in-flight broadcast payloads.
//!
//! One [`PayloadArena`] exists per shard; every payload a broadcast
//! puts in flight lives in exactly one arena — the shard that will
//! consume it. Queue entries and imported-payload tables hold
//! [`PayloadHandle`]s (a slot index plus a generation stamp) instead
//! of deep payload clones, so the per-event hot structures stay
//! word-sized and payload copies happen only when two live consumers
//! genuinely need the same message at once.
//!
//! # Refcount contract
//!
//! * [`PayloadArena::insert`] / [`PayloadArena::insert_cloned`] store
//!   a payload with an initial reference count (one per event that
//!   will consume it). [`PayloadArena::retain`] adds a reference.
//! * [`PayloadArena::release`] consumes one reference and returns the
//!   payload: by **move** when it was the last reference (the common
//!   case — counted in [`PayloadArena::moves`]), by clone otherwise
//!   (counted in [`PayloadArena::clones`]).
//! * [`PayloadArena::discard`] consumes one reference without
//!   materializing the payload (deliveries to crashed receivers,
//!   acks); [`PayloadArena::discard_all`] drops every remaining
//!   reference at once (a crashed sender's cancelled broadcast).
//! * Freeing a slot bumps its **generation**, so any stale handle —
//!   a double release, a use after `discard_all` — is detected and
//!   panics instead of silently reading a recycled slot.
//!
//! Slots are recycled through a free list, so steady-state
//! broadcasting allocates nothing; [`PayloadArena::bytes_peak`]
//! reports the high-water payload footprint for
//! [`Metrics::arena_bytes_peak`](super::trace::Metrics::arena_bytes_peak).

/// Handle to one payload stored in a [`PayloadArena`]: a slot index
/// plus the generation stamp the slot had when the payload was
/// inserted. Copyable and word-sized — this is what event records and
/// imported tables carry instead of payload clones.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PayloadHandle {
    slot: u32,
    generation: u32,
}

struct ArenaSlot<M> {
    generation: u32,
    refs: u32,
    payload: Option<M>,
}

/// A generation-indexed, refcounted payload store. See the [module
/// docs](self) for the contract.
pub struct PayloadArena<M> {
    slots: Vec<ArenaSlot<M>>,
    free: Vec<u32>,
    live: usize,
    live_peak: usize,
    clones: u64,
    moves: u64,
}

impl<M> Default for PayloadArena<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> PayloadArena<M> {
    /// An empty arena with no slots allocated.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            live_peak: 0,
            clones: 0,
            moves: 0,
        }
    }

    /// Stores `payload` with `refs` initial references.
    pub fn insert(&mut self, payload: M, refs: u32) -> PayloadHandle {
        debug_assert!(refs > 0, "inserting a payload nobody will consume");
        self.live += 1;
        self.live_peak = self.live_peak.max(self.live);
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none() && s.refs == 0);
                s.refs = refs;
                s.payload = Some(payload);
                PayloadHandle {
                    slot,
                    generation: s.generation,
                }
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena slots fit u32");
                self.slots.push(ArenaSlot {
                    generation: 0,
                    refs,
                    payload: Some(payload),
                });
                PayloadHandle {
                    slot,
                    generation: 0,
                }
            }
        }
    }

    /// Stores a clone of `payload` (counted in [`Self::clones`]) with
    /// `refs` initial references — the cross-shard import path: one
    /// clone per destination shard, however many events consume it.
    pub fn insert_cloned(&mut self, payload: &M, refs: u32) -> PayloadHandle
    where
        M: Clone,
    {
        self.clones += 1;
        self.insert(payload.clone(), refs)
    }

    fn slot_mut(&mut self, h: PayloadHandle) -> &mut ArenaSlot<M> {
        let s = &mut self.slots[h.slot as usize];
        assert_eq!(
            s.generation, h.generation,
            "stale payload handle (double release or use after free)"
        );
        debug_assert!(s.refs > 0 && s.payload.is_some());
        s
    }

    /// Adds one reference to the payload behind `h`.
    pub fn retain(&mut self, h: PayloadHandle) {
        self.slot_mut(h).refs += 1;
    }

    /// Consumes one reference and returns the payload — moved out on
    /// the last reference (`true` in the second slot: the handle is
    /// now dead and the slot freed), cloned otherwise.
    pub fn release(&mut self, h: PayloadHandle) -> (M, bool)
    where
        M: Clone,
    {
        let s = self.slot_mut(h);
        if s.refs == 1 {
            self.moves += 1;
            (self.free_slot(h.slot), true)
        } else {
            s.refs -= 1;
            let payload = s
                .payload
                .as_ref()
                .expect("live slot holds a payload")
                .clone();
            self.clones += 1;
            (payload, false)
        }
    }

    /// Consumes one reference without materializing the payload.
    /// Returns `true` when it was the last reference (the slot is
    /// freed).
    pub fn discard(&mut self, h: PayloadHandle) -> bool {
        let s = self.slot_mut(h);
        if s.refs == 1 {
            drop(self.free_slot(h.slot));
            true
        } else {
            s.refs -= 1;
            false
        }
    }

    /// Drops every remaining reference behind `h` at once — the
    /// crashed-sender cancellation path, where all of a broadcast's
    /// still-pending events die together.
    pub fn discard_all(&mut self, h: PayloadHandle) {
        self.slot_mut(h).refs = 1;
        drop(self.free_slot(h.slot));
    }

    /// Frees a slot whose refcount has reached its final reference:
    /// takes the payload, bumps the generation (staling every
    /// outstanding handle), and recycles the slot index.
    fn free_slot(&mut self, slot: u32) -> M {
        let s = &mut self.slots[slot as usize];
        s.refs = 0;
        s.generation = s.generation.wrapping_add(1);
        let payload = s.payload.take().expect("live slot holds a payload");
        self.free.push(slot);
        self.live -= 1;
        payload
    }

    /// Payloads extracted by last-reference move so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Payload clones so far (shared-reference releases plus
    /// cross-shard imports).
    pub fn clones(&self) -> u64 {
        self.clones
    }

    /// High-water payload footprint: the peak number of live payloads
    /// times the payload size.
    pub fn bytes_peak(&self) -> u64 {
        self.live_peak as u64 * std::mem::size_of::<M>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_reference_moves_earlier_ones_clone() {
        let mut a: PayloadArena<String> = PayloadArena::new();
        let h = a.insert("payload".to_string(), 3);
        assert_eq!(a.release(h), ("payload".to_string(), false));
        assert_eq!(a.release(h), ("payload".to_string(), false));
        assert_eq!((a.clones(), a.moves()), (2, 0));
        // Last reference: moved out, handle reported dead.
        assert_eq!(a.release(h), ("payload".to_string(), true));
        assert_eq!((a.clones(), a.moves()), (2, 1));
    }

    #[test]
    fn generations_detect_reuse_of_freed_slots() {
        let mut a: PayloadArena<u64> = PayloadArena::new();
        let h1 = a.insert(1, 1);
        assert_eq!(a.release(h1), (1, true));
        // The freed slot is recycled for the next insert, under a new
        // generation; the old handle no longer resolves to it.
        let h2 = a.insert(2, 1);
        assert_ne!(h1, h2);
        assert_eq!(a.release(h2), (2, true));
    }

    #[test]
    #[should_panic(expected = "stale payload handle")]
    fn double_release_panics() {
        let mut a: PayloadArena<u64> = PayloadArena::new();
        let h = a.insert(7, 1);
        assert_eq!(a.release(h), (7, true));
        let _ = a.release(h);
    }

    #[test]
    #[should_panic(expected = "stale payload handle")]
    fn use_after_cancellation_panics() {
        // The crash-mid-broadcast shape: a cancelled broadcast drops
        // all remaining references at once; any event that would still
        // consume the payload afterwards is a bug, not a clone.
        let mut a: PayloadArena<u64> = PayloadArena::new();
        let h = a.insert(9, 4);
        assert_eq!(a.release(h), (9, false)); // one delivery happened
        a.discard_all(h); // sender crashed: rest of the broadcast dies
        let _ = a.release(h);
    }

    #[test]
    fn discard_tracks_last_reference_and_retain_extends() {
        let mut a: PayloadArena<u64> = PayloadArena::new();
        let h = a.insert(5, 2);
        a.retain(h);
        assert!(!a.discard(h));
        assert!(!a.discard(h));
        assert!(a.discard(h));
        assert_eq!((a.clones(), a.moves()), (0, 0), "discards never copy");
    }

    #[test]
    fn bytes_peak_tracks_high_water_live_payloads() {
        let mut a: PayloadArena<u64> = PayloadArena::new();
        let hs: Vec<_> = (0..4).map(|i| a.insert(i, 1)).collect();
        for h in hs {
            let _ = a.release(h);
        }
        let h = a.insert(99, 1);
        let _ = a.release(h);
        assert_eq!(a.bytes_peak(), 4 * std::mem::size_of::<u64>() as u64);
    }
}
