//! Post-hoc conformance checking: did an execution actually honor the
//! abstract MAC layer guarantees?
//!
//! The engine enforces the model by construction, but "by construction"
//! is an argument, not a check. [`check_trace`] independently validates
//! a recorded [`Trace`] against the model's observable contract:
//!
//! 1. a node never has two broadcasts in flight (broadcasts and acks
//!    alternate per sender);
//! 2. every reliable delivery of a broadcast happens inside its
//!    `[broadcast, ack]` window;
//! 3. no neighbor receives the same broadcast twice;
//! 4. an acked broadcast was delivered to **every** neighbor that was
//!    non-crashed at ack time;
//! 5. deliveries only travel along topology edges (or declared
//!    unreliable overlay edges);
//! 6. acks arrive within `F_ack` of the broadcast, when a bound is
//!    supplied;
//! 7. crashed nodes take no further steps; nodes decide at most once.
//!
//! Property tests run the checker over engine traces for every
//! scheduler and crash plan — a meta-test that the simulator itself is
//! a sound implementation of the model it claims to implement.
//!
//! Beyond single-execution checking, [`compare_traces`] and
//! [`compare_reports`] diff two executions — two engine runs that
//! should be bit-identical, or the engine vs. the threaded runtime via
//! [`MacLayer`](crate::mac::MacLayer) — and report the **first
//! diverging event with both sides' views** (a [`Divergence`]) rather
//! than a bare boolean mismatch. `amacl-checker`'s cross-check is
//! built on these.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::Slot;
use crate::mac::MacReport;
use crate::topo::unreliable::UnreliableOverlay;
use crate::topo::Topology;

use super::time::Time;
use super::trace::{Trace, TraceEvent};

/// Result of a conformance check.
#[derive(Clone, Debug, Default)]
pub struct ConformanceReport {
    /// Broadcasts examined.
    pub broadcasts: u64,
    /// Reliable deliveries examined.
    pub deliveries: u64,
    /// Acks examined.
    pub acks: u64,
    /// Human-readable violations, in trace order.
    pub violations: Vec<String>,
}

impl ConformanceReport {
    /// `true` when no violations were found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics listing the first violations, for use in tests.
    pub fn assert_ok(&self) {
        assert!(
            self.ok(),
            "model conformance violated ({} issues), first: {}",
            self.violations.len(),
            self.violations.first().map(String::as_str).unwrap_or("")
        );
    }
}

/// Per-sender in-flight broadcast bookkeeping.
struct InFlight {
    since: Time,
    delivered: BTreeSet<usize>,
}

/// Checks a trace against the model contract.
///
/// `f_ack`: when `Some`, ack latency is checked against it.
/// `overlay`: unreliable edges on which spurious (non-window-bound)
/// deliveries are permitted.
pub fn check_trace(
    topo: &Topology,
    trace: &Trace,
    f_ack: Option<u64>,
    overlay: Option<&UnreliableOverlay>,
) -> ConformanceReport {
    let n = topo.len();
    let mut report = ConformanceReport::default();
    let mut in_flight: Vec<Option<InFlight>> = (0..n).map(|_| None).collect();
    let mut crashed = vec![false; n];
    let mut crash_time: Vec<Option<Time>> = vec![None; n];
    let mut decided = vec![false; n];

    let violate = |violations: &mut Vec<String>, msg: String| {
        if violations.len() < 64 {
            violations.push(msg);
        }
    };

    for ev in trace.events() {
        match *ev {
            TraceEvent::Broadcast { time, slot, .. } => {
                report.broadcasts += 1;
                if crashed[slot.0] {
                    violate(
                        &mut report.violations,
                        format!("{time}: crashed node {slot} broadcast"),
                    );
                }
                if in_flight[slot.0].is_some() {
                    violate(
                        &mut report.violations,
                        format!("{time}: {slot} broadcast with one already in flight"),
                    );
                }
                in_flight[slot.0] = Some(InFlight {
                    since: time,
                    delivered: BTreeSet::new(),
                });
            }
            TraceEvent::Deliver {
                time,
                from,
                to,
                unreliable,
            } => {
                let on_topo_edge = topo.has_edge(from, to);
                let on_overlay_edge = overlay.is_some_and(|o| o.neighbors(from).contains(&to));
                if unreliable {
                    if !on_overlay_edge {
                        violate(
                            &mut report.violations,
                            format!("{time}: unreliable delivery {from}->{to} off overlay"),
                        );
                    }
                    // Unreliable deliveries have no window obligations.
                    continue;
                }
                report.deliveries += 1;
                if !on_topo_edge {
                    violate(
                        &mut report.violations,
                        format!("{time}: delivery {from}->{to} without an edge"),
                    );
                }
                match in_flight[from.0].as_mut() {
                    None => violate(
                        &mut report.violations,
                        format!("{time}: delivery {from}->{to} outside any broadcast window"),
                    ),
                    Some(fl) => {
                        if !fl.delivered.insert(to.0) {
                            violate(
                                &mut report.violations,
                                format!("{time}: duplicate delivery {from}->{to}"),
                            );
                        }
                    }
                }
                if crashed[to.0] {
                    violate(
                        &mut report.violations,
                        format!("{time}: delivery to crashed node {to}"),
                    );
                }
            }
            TraceEvent::Ack { time, slot } => {
                report.acks += 1;
                if crashed[slot.0] {
                    violate(
                        &mut report.violations,
                        format!("{time}: ack to crashed node {slot}"),
                    );
                }
                match in_flight[slot.0].take() {
                    None => violate(
                        &mut report.violations,
                        format!("{time}: ack for {slot} without a broadcast"),
                    ),
                    Some(fl) => {
                        if let Some(bound) = f_ack {
                            let latency = time - fl.since;
                            if latency > bound {
                                violate(
                                    &mut report.violations,
                                    format!(
                                        "{time}: ack latency {latency} exceeds F_ack {bound} at {slot}"
                                    ),
                                );
                            }
                        }
                        for &nbr in topo.neighbors(slot) {
                            if fl.delivered.contains(&nbr.0) {
                                continue;
                            }
                            // A missing delivery is excused only if the
                            // neighbor crashed before the ack.
                            let excused =
                                crashed[nbr.0] && crash_time[nbr.0].is_some_and(|ct| ct <= time);
                            if !excused {
                                violate(
                                    &mut report.violations,
                                    format!(
                                        "{time}: {slot} acked but neighbor {nbr} never received"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            TraceEvent::Crash { time, slot } => {
                crashed[slot.0] = true;
                crash_time[slot.0] = Some(time);
                in_flight[slot.0] = None; // in-flight broadcast voided
            }
            TraceEvent::Decide { time, slot, .. } => {
                if decided[slot.0] {
                    violate(
                        &mut report.violations,
                        format!("{time}: {slot} decided twice"),
                    );
                }
                decided[slot.0] = true;
                if crashed[slot.0] {
                    violate(
                        &mut report.violations,
                        format!("{time}: crashed node {slot} decided"),
                    );
                }
            }
        }
    }
    report
}

/// Convenience wrapper for [`Slot`]-keyed neighbor lookups in tests.
pub fn neighbors_of(topo: &Topology, s: Slot) -> Vec<Slot> {
    topo.neighbors(s).to_vec()
}

/// The first point where two executions disagree, with both sides'
/// views — so a failing cross-check names the divergence instead of
/// reporting a bare boolean mismatch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Name of the first execution's backend/run.
    pub left_name: String,
    /// Name of the second execution's backend/run.
    pub right_name: String,
    /// Index of the diverging item: an event index for trace
    /// comparisons, a slot index for report comparisons.
    pub index: usize,
    /// What the first execution saw there.
    pub left_view: String,
    /// What the second execution saw there.
    pub right_view: String,
    /// Which aspect diverged.
    pub kind: DivergenceKind,
}

/// Which aspect of two executions diverged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DivergenceKind {
    /// The traces differ at an event index (including one trace being
    /// a strict prefix of the other).
    TraceEvent,
    /// A slot's decision differs between the two reports.
    Decision,
    /// An aggregate property (completion, node count) differs.
    Aggregate,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            DivergenceKind::TraceEvent => "event",
            DivergenceKind::Decision => "slot",
            DivergenceKind::Aggregate => "aggregate",
        };
        write!(
            f,
            "first divergence at {what} {}: {} saw {}, {} saw {}",
            self.index, self.left_name, self.left_view, self.right_name, self.right_view
        )
    }
}

/// Compares two event traces, reporting the first diverging event with
/// both sides' views (`None` when identical). A strict-prefix
/// relationship diverges at the shorter trace's end, shown as
/// `<no event>`.
///
/// Meaningful for executions expected to be bit-identical — e.g. two
/// engine runs with the same seeds, the reproducibility contract the
/// queue core guarantees.
pub fn compare_traces(
    left_name: &str,
    left: &Trace,
    right_name: &str,
    right: &Trace,
) -> Option<Divergence> {
    let (l, r) = (left.events(), right.events());
    let index = l
        .iter()
        .zip(r.iter())
        .position(|(a, b)| a != b)
        .or_else(|| (l.len() != r.len()).then(|| l.len().min(r.len())))?;
    let view = |events: &[TraceEvent]| {
        events
            .get(index)
            .map_or("<no event>".to_string(), |e| format!("{e:?}"))
    };
    Some(Divergence {
        left_name: left_name.to_string(),
        right_name: right_name.to_string(),
        index,
        left_view: view(l),
        right_view: view(r),
        kind: DivergenceKind::TraceEvent,
    })
}

/// Compares two backend reports of the same algorithm on the same
/// instance, reporting the first diverging slot decision with both
/// backends' views (`None` when they agree).
///
/// Used by the simulator↔runtime conformance cross-check for
/// executions whose decisions are expected to coincide (deterministic
/// algorithms, uniform inputs). For merely *consistent* executions
/// (agreement within each backend, possibly different values), check
/// [`MacReport::agreement_value`] per side instead.
pub fn compare_reports(left: &MacReport, right: &MacReport) -> Option<Divergence> {
    let mk = |index, lv: String, rv: String, kind| {
        Some(Divergence {
            left_name: left.backend.to_string(),
            right_name: right.backend.to_string(),
            index,
            left_view: lv,
            right_view: rv,
            kind,
        })
    };
    if left.decisions.len() != right.decisions.len() {
        return mk(
            0,
            format!("{} slots", left.decisions.len()),
            format!("{} slots", right.decisions.len()),
            DivergenceKind::Aggregate,
        );
    }
    for (i, (l, r)) in left.decisions.iter().zip(&right.decisions).enumerate() {
        if l != r {
            let view = |d: &Option<u64>| match d {
                Some(v) => format!("decided {v}"),
                None => "undecided".to_string(),
            };
            return mk(i, view(l), view(r), DivergenceKind::Decision);
        }
    }
    if left.all_decided != right.all_decided {
        return mk(
            0,
            format!("all_decided={}", left.all_decided),
            format!("all_decided={}", right.all_decided),
            DivergenceKind::Aggregate,
        );
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::trace::Trace;

    fn mk_trace(events: Vec<TraceEvent>) -> Trace {
        let mut t = Trace::new(true);
        for e in events {
            t.push(e);
        }
        t
    }

    fn bcast(t: u64, s: usize) -> TraceEvent {
        TraceEvent::Broadcast {
            time: Time(t),
            slot: Slot(s),
            ids: 0,
        }
    }
    fn deliver(t: u64, from: usize, to: usize) -> TraceEvent {
        TraceEvent::Deliver {
            time: Time(t),
            from: Slot(from),
            to: Slot(to),
            unreliable: false,
        }
    }
    fn ack(t: u64, s: usize) -> TraceEvent {
        TraceEvent::Ack {
            time: Time(t),
            slot: Slot(s),
        }
    }

    #[test]
    fn clean_single_broadcast_passes() {
        let topo = Topology::line(3);
        let trace = mk_trace(vec![
            bcast(0, 1),
            deliver(1, 1, 0),
            deliver(2, 1, 2),
            ack(2, 1),
        ]);
        let report = check_trace(&topo, &trace, Some(2), None);
        report.assert_ok();
        assert_eq!(report.broadcasts, 1);
        assert_eq!(report.deliveries, 2);
        assert_eq!(report.acks, 1);
    }

    #[test]
    fn detects_missing_delivery_before_ack() {
        let topo = Topology::line(3);
        let trace = mk_trace(vec![bcast(0, 1), deliver(1, 1, 0), ack(2, 1)]);
        let report = check_trace(&topo, &trace, None, None);
        assert!(!report.ok());
        assert!(report.violations[0].contains("never received"));
    }

    #[test]
    fn detects_duplicate_delivery() {
        let topo = Topology::line(2);
        let trace = mk_trace(vec![
            bcast(0, 0),
            deliver(1, 0, 1),
            deliver(2, 0, 1),
            ack(2, 0),
        ]);
        let report = check_trace(&topo, &trace, None, None);
        assert!(!report.ok());
        assert!(report.violations[0].contains("duplicate"));
    }

    #[test]
    fn detects_delivery_without_edge() {
        let topo = Topology::line(3); // no edge 0-2
        let trace = mk_trace(vec![
            bcast(0, 0),
            deliver(1, 0, 2),
            deliver(1, 0, 1),
            ack(1, 0),
        ]);
        let report = check_trace(&topo, &trace, None, None);
        assert!(!report.ok());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("without an edge")));
    }

    #[test]
    fn detects_double_broadcast_in_flight() {
        let topo = Topology::line(2);
        let trace = mk_trace(vec![bcast(0, 0), bcast(1, 0)]);
        let report = check_trace(&topo, &trace, None, None);
        assert!(!report.ok());
        assert!(report.violations[0].contains("already in flight"));
    }

    #[test]
    fn detects_f_ack_violation() {
        let topo = Topology::line(2);
        let trace = mk_trace(vec![bcast(0, 0), deliver(5, 0, 1), ack(5, 0)]);
        let report = check_trace(&topo, &trace, Some(3), None);
        assert!(!report.ok());
        assert!(report.violations[0].contains("exceeds F_ack"));
    }

    #[test]
    fn crash_excuses_missing_delivery() {
        let topo = Topology::line(3);
        let trace = mk_trace(vec![
            bcast(0, 1),
            deliver(1, 1, 0),
            TraceEvent::Crash {
                time: Time(1),
                slot: Slot(2),
            },
            ack(2, 1),
        ]);
        let report = check_trace(&topo, &trace, None, None);
        report.assert_ok();
    }

    #[test]
    fn crashed_node_acting_is_flagged() {
        let topo = Topology::line(2);
        let trace = mk_trace(vec![
            TraceEvent::Crash {
                time: Time(0),
                slot: Slot(0),
            },
            bcast(1, 0),
        ]);
        let report = check_trace(&topo, &trace, None, None);
        assert!(!report.ok());
        assert!(report.violations[0].contains("crashed node"));
    }

    #[test]
    fn double_decision_is_flagged() {
        let topo = Topology::line(2);
        let trace = mk_trace(vec![
            TraceEvent::Decide {
                time: Time(1),
                slot: Slot(0),
                value: 1,
            },
            TraceEvent::Decide {
                time: Time(2),
                slot: Slot(0),
                value: 1,
            },
        ]);
        let report = check_trace(&topo, &trace, None, None);
        assert!(!report.ok());
        assert!(report.violations[0].contains("decided twice"));
    }

    #[test]
    fn unreliable_delivery_requires_overlay_edge() {
        let topo = Topology::line(3);
        let overlay = UnreliableOverlay::new(&topo, &[(0, 2)]);
        let ok_trace = mk_trace(vec![
            bcast(0, 0),
            TraceEvent::Deliver {
                time: Time(1),
                from: Slot(0),
                to: Slot(2),
                unreliable: true,
            },
            deliver(1, 0, 1),
            ack(1, 0),
        ]);
        check_trace(&topo, &ok_trace, None, Some(&overlay)).assert_ok();

        let bad_trace = mk_trace(vec![
            bcast(0, 1),
            TraceEvent::Deliver {
                time: Time(1),
                from: Slot(1),
                to: Slot(0),
                unreliable: true,
            },
            deliver(1, 1, 0),
            deliver(1, 1, 2),
            ack(1, 1),
        ]);
        let report = check_trace(&topo, &bad_trace, None, Some(&overlay));
        assert!(!report.ok());
        assert!(report.violations[0].contains("off overlay"));
    }

    #[test]
    fn compare_traces_finds_first_differing_event() {
        let a = mk_trace(vec![bcast(0, 0), deliver(1, 0, 1), ack(1, 0)]);
        let b = mk_trace(vec![bcast(0, 0), deliver(2, 0, 1), ack(2, 0)]);
        let d = compare_traces("left", &a, "right", &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.kind, DivergenceKind::TraceEvent);
        assert!(d.left_view.contains("Deliver"), "{d}");
        let msg = d.to_string();
        assert!(msg.contains("left") && msg.contains("right"), "{msg}");
        assert_eq!(compare_traces("l", &a, "r", &a), None);
    }

    #[test]
    fn compare_traces_reports_prefix_truncation() {
        let a = mk_trace(vec![bcast(0, 0), deliver(1, 0, 1)]);
        let b = mk_trace(vec![bcast(0, 0)]);
        let d = compare_traces("full", &a, "short", &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.right_view, "<no event>");
    }

    #[test]
    fn compare_reports_finds_first_differing_decision() {
        use crate::mac::MacReport;
        let left = MacReport {
            backend: "sim",
            decisions: vec![Some(1), Some(1), None],
            all_decided: false,
            broadcasts: 3,
            deliveries: 6,
        };
        let mut right = left.clone();
        right.backend = "threads";
        assert_eq!(compare_reports(&left, &right), None);
        right.decisions[1] = Some(0);
        let d = compare_reports(&left, &right).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.kind, DivergenceKind::Decision);
        assert_eq!(d.left_view, "decided 1");
        assert_eq!(d.right_view, "decided 0");
        assert!(d.to_string().contains("sim saw decided 1"), "{d}");
    }

    #[test]
    fn compare_reports_flags_aggregate_mismatch() {
        use crate::mac::MacReport;
        let left = MacReport {
            backend: "sim",
            decisions: vec![Some(1)],
            all_decided: true,
            broadcasts: 1,
            deliveries: 0,
        };
        let mut right = left.clone();
        right.all_decided = false;
        let d = compare_reports(&left, &right).expect("diverges");
        assert_eq!(d.kind, DivergenceKind::Aggregate);
    }
}
