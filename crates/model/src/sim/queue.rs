//! The cancellable event-queue core of the discrete-event engine.
//!
//! [`EventQueue`] is a priority queue of timestamped payloads with
//! three properties the engine (and any future discrete-event driver)
//! needs:
//!
//! * **Deterministic tie-breaking.** Entries pop in `(time, class,
//!   insertion order)` order. `class` is a small caller-chosen priority
//!   band (the engine uses crash < receive < ack, see the sim-internal
//!   `EventClass`); within a band, earlier pushes pop first. Two runs
//!   that push the same sequence pop the same sequence, on every
//!   platform — nothing about the queue depends on hash iteration
//!   order or pointer values.
//! * **O(log n) cancellation.** [`EventQueue::push`] returns an
//!   [`EventId`]; [`EventQueue::cancel`] marks that entry dead in O(1)
//!   by adding the id to a tombstone set (the dslab-style scheme).
//!   Dead entries are skipped — and their tombstones reclaimed — when
//!   they surface at the heap top, so a cancel costs O(1) now plus the
//!   O(log n) pop it would have cost anyway. Cancelling an id that
//!   already fired (or was already cancelled) is a detectable no-op,
//!   so callers may bulk-cancel bookkeeping lists without tracking
//!   which entries already ran.
//! * **Exact liveness accounting.** [`EventQueue::len`] and
//!   [`EventQueue::is_empty`] count only live (un-cancelled, un-popped)
//!   entries, so "no events remain" means what a quiescence check
//!   wants it to mean even while tombstoned entries still sit in the
//!   heap.
//!
//! The queue is deliberately ignorant of what the payloads mean: the
//! engine stores its internal `EventKind`s, tests store integers. All
//! model semantics (what a delivery does, when acks are due) live in
//! the driver and in [`crate::mac::BcastLedger`].

use std::collections::{BinaryHeap, HashSet};

use super::time::Time;

/// Handle to one scheduled entry, returned by [`EventQueue::push`] and
/// accepted by [`EventQueue::cancel`].
///
/// Ids are unique per queue and allocated in push order; the id
/// doubles as the deterministic tie-breaker within a `(time, class)`
/// band.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One entry popped from the queue.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// The entry's due time.
    pub time: Time,
    /// The id [`EventQueue::push`] returned for it.
    pub id: EventId,
    /// The caller's payload.
    pub payload: E,
}

/// Internal heap entry. Ordering is reversed (`BinaryHeap` is a
/// max-heap) over the key `(time, class, id)`.
struct Entry<E> {
    time: Time,
    class: u8,
    id: u64,
    payload: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (Time, u8, u64) {
        (self.time, self.class, self.id)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// A deterministic, cancellable discrete-event priority queue.
///
/// See the [module docs](self) for the contract. `E` is the event
/// payload type.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids of entries still in the heap and not cancelled. Membership
    /// checks only — never iterated, so a hash set cannot leak
    /// nondeterminism into pop order.
    pending: HashSet<u64>,
    /// Ids cancelled but not yet physically removed from the heap.
    tombstones: HashSet<u64>,
    next_id: u64,
    cancellations: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            tombstones: HashSet::new(),
            next_id: 0,
            cancellations: 0,
        }
    }

    /// Schedules `payload` at `time` in priority band `class` (lower
    /// classes pop first at equal times). Returns the entry's id.
    pub fn push(&mut self, time: Time, class: u8, payload: E) -> EventId {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(id);
        self.heap.push(Entry {
            time,
            class,
            id,
            payload,
        });
        EventId(id)
    }

    /// Cancels the entry with the given id, if it is still pending.
    ///
    /// Returns `true` if the entry was live (it will now never pop) and
    /// `false` if it had already popped or been cancelled — making
    /// bulk cancellation of stale id lists safe.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.tombstones.insert(id.0);
            self.cancellations += 1;
            true
        } else {
            false
        }
    }

    /// The due time of the earliest live entry, purging any cancelled
    /// entries that have reached the heap top.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.purge_cancelled_head();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest live entry.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.purge_cancelled_head();
        let entry = self.heap.pop()?;
        self.pending.remove(&entry.id);
        Some(ScheduledEvent {
            time: entry.time,
            id: EventId(entry.id),
            payload: entry.payload,
        })
    }

    /// Drops cancelled entries sitting at the top of the heap,
    /// reclaiming their tombstones.
    fn purge_cancelled_head(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.tombstones.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Number of live (pending, un-cancelled) entries.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total entries ever scheduled (also the next id to be assigned).
    pub fn scheduled_total(&self) -> u64 {
        self.next_id
    }

    /// Total successful cancellations so far.
    pub fn cancelled_total(&self) -> u64 {
        self.cancellations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_time_then_class_then_insertion() {
        let mut q = EventQueue::new();
        q.push(Time(2), 2, "t2-ack");
        q.push(Time(2), 1, "t2-recv-a");
        q.push(Time(1), 2, "t1-ack");
        q.push(Time(2), 1, "t2-recv-b");
        q.push(Time(2), 0, "t2-crash");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(
            order,
            vec!["t1-ack", "t2-crash", "t2-recv-a", "t2-recv-b", "t2-ack"]
        );
    }

    #[test]
    fn cancelled_entries_never_pop_and_len_tracks_live() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), 0, 'a');
        let b = q.push(Time(2), 0, 'b');
        let c = q.push(Time(3), 0, 'c');
        assert_eq!(q.len(), 3);
        assert!(q.cancel(b));
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.pop().unwrap().payload, 'a');
        assert_eq!(q.peek_time(), Some(Time(3)));
        assert_eq!(q.pop().unwrap().payload, 'c');
        assert!(q.is_empty());
        // Already-fired and already-cancelled ids are safe no-ops.
        assert!(!q.cancel(a));
        assert!(!q.cancel(b));
        assert!(!q.cancel(c));
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn cancel_head_purges_lazily() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), 0, 1u32);
        q.push(Time(5), 0, 2u32);
        assert!(q.cancel(a));
        // peek_time must skip the dead head.
        assert_eq!(q.peek_time(), Some(Time(5)));
        assert_eq!(q.pop().unwrap().payload, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_total(), 0);
    }
}
