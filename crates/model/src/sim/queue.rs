//! The cancellable event-queue core of the discrete-event engine.
//!
//! The queue is the innermost loop of every simulation, so its
//! implementation is pluggable: [`QueueCore`] is the contract, and two
//! interchangeable cores ship with the crate —
//!
//! * [`HeapCore`] — an indexed binary heap (`O(log n)` push/pop). The
//!   safe default at any size, and the reference implementation the
//!   conformance suite diffs the other core against.
//! * [`CalendarCore`] — a hierarchical calendar (bucket) queue: a
//!   ring of per-tick buckets for the near future backed by an ordered
//!   overflow tier for far-future entries, with **lazy resize** (the
//!   ring doubles only when the overflow tier outgrows it). Push and
//!   pop are `O(1)` amortized when event times are densely clustered —
//!   exactly the profile of large-`n` MAC-layer workloads, where every
//!   broadcast schedules its deliveries at most `F_ack` ticks ahead.
//!
//! [`EventQueue`] wraps whichever core a [`QueueCoreKind`] selects
//! (statically dispatched — no vtable in the hot loop) behind one API.
//!
//! # The `QueueCore` contract
//!
//! Every implementation must provide, observably identically:
//!
//! * **Deterministic tie-breaking.** Entries pop in `(time, class,
//!   insertion order)` order. `class` is a small caller-chosen priority
//!   band (the engine uses crash < receive < ack, see the sim-internal
//!   `EventClass`); within a band, earlier pushes pop first. Two runs
//!   that push the same sequence pop the same sequence, on every
//!   platform and under **every core** — nothing may depend on hash
//!   iteration order or pointer values, and swapping cores must never
//!   change a simulation's trace (a property test in
//!   `model/tests/queue_props.rs` drives both cores through random
//!   interleaved workloads and demands identical behavior).
//! * **O(1) cancellation.** [`QueueCore::push`] returns an
//!   [`EventId`]; [`QueueCore::cancel`] marks that entry dead in O(1)
//!   by adding the id to a tombstone set (the dslab-style scheme).
//!   Dead entries are skipped — and their tombstones reclaimed — when
//!   they surface at the queue head, so a cancel costs O(1) now plus
//!   the pop it would have cost anyway. Cancelling an id that already
//!   fired (or was already cancelled) is a detectable no-op (`cancel`
//!   returns `false`), so callers may bulk-cancel bookkeeping lists
//!   without tracking which entries already ran.
//! * **Exact liveness accounting.** [`QueueCore::len`] and
//!   [`QueueCore::is_empty`] count only live (un-cancelled, un-popped)
//!   entries, so "no events remain" means what a quiescence check
//!   wants it to mean even while tombstoned entries still sit inside.
//!
//! The queue is deliberately ignorant of what the payloads mean: the
//! engine stores its internal `EventKind`s, tests store integers. All
//! model semantics (what a delivery does, when acks are due) live in
//! the driver and in [`crate::mac::BcastLedger`].

use std::collections::{BTreeMap, BinaryHeap, HashSet};

use super::time::Time;

/// Handle to one scheduled entry, returned by [`QueueCore::push`] and
/// accepted by [`QueueCore::cancel`].
///
/// Ids are unique per queue and allocated in push order; the id
/// doubles as the deterministic tie-breaker within a `(time, class)`
/// band.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One entry popped from the queue.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// The entry's due time.
    pub time: Time,
    /// The id [`QueueCore::push`] returned for it.
    pub id: EventId,
    /// The caller's payload.
    pub payload: E,
}

/// The pluggable event-queue core contract.
///
/// See the [module docs](self) for the three guarantees every
/// implementation owes its callers: `(time, class, insertion)`
/// deterministic ordering, tombstone cancellation, and exact liveness
/// accounting. The engine holds cores behind [`EventQueue`] (an enum,
/// statically dispatched); the trait exists so tests, benches, and
/// future cores can be written against one interface.
pub trait QueueCore<E> {
    /// Schedules `payload` at `time` in priority band `class` (lower
    /// classes pop first at equal times). Returns the entry's id.
    fn push(&mut self, time: Time, class: u8, payload: E) -> EventId;

    /// Schedules `payload` under a **caller-allocated** id.
    ///
    /// This is the sharded engine's seam (see [`super::shard`]): event
    /// ids are allocated from one engine-global counter at scheduling
    /// time, carried through cross-shard mailboxes, and inserted here
    /// with their original id — so the `(time, class, id)` pop order of
    /// a set of events is independent of which queue each one landed
    /// in, and of the order mailboxes were drained.
    ///
    /// The caller owes the queue unique ids (never reused across
    /// `push`/`push_at` on the same queue); the id participates in
    /// cancellation and liveness accounting exactly like a
    /// [`QueueCore::push`]-allocated one.
    fn push_at(&mut self, time: Time, class: u8, id: EventId, payload: E);

    /// The `(time, class, id)` key of the earliest live entry, purging
    /// any cancelled entries that have reached the queue head. This is
    /// what the sharded coordinator merges shard heads on.
    fn peek_key(&mut self) -> Option<(Time, u8, u64)>;

    /// Cancels the entry with the given id, if it is still pending.
    ///
    /// Returns `true` if the entry was live (it will now never pop) and
    /// `false` if it had already popped or been cancelled — making
    /// bulk cancellation of stale id lists safe.
    fn cancel(&mut self, id: EventId) -> bool;

    /// The due time of the earliest live entry, purging any cancelled
    /// entries that have reached the queue head.
    fn peek_time(&mut self) -> Option<Time>;

    /// Pops the earliest live entry.
    fn pop(&mut self) -> Option<ScheduledEvent<E>>;

    /// Number of live (pending, un-cancelled) entries.
    fn len(&self) -> usize;

    /// `true` when no live entries remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries ever scheduled (also the next id to be assigned).
    fn scheduled_total(&self) -> u64;

    /// Total successful cancellations so far.
    fn cancelled_total(&self) -> u64;

    /// Entries that missed the core's fast path and took a slow-tier
    /// detour (calendar overflow inserts; always 0 for the heap).
    fn bucket_overflows(&self) -> u64 {
        0
    }
}

/// Which [`QueueCore`] implementation an [`EventQueue`] runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueCoreKind {
    /// The indexed binary heap ([`HeapCore`]): `O(log n)` everywhere,
    /// the safe default.
    #[default]
    Heap,
    /// The hierarchical calendar queue ([`CalendarCore`]): amortized
    /// `O(1)` push/pop for densely clustered event times.
    Calendar,
}

impl QueueCoreKind {
    /// Short stable name (`"heap"` / `"calendar"`), for reports and
    /// CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            QueueCoreKind::Heap => "heap",
            QueueCoreKind::Calendar => "calendar",
        }
    }

    /// The default core honoring the `AMACL_QUEUE_CORE` environment
    /// variable (`heap` | `calendar`), falling back to
    /// [`QueueCoreKind::Heap`] when unset. CI uses this to run the
    /// whole test suite over either core without touching any call
    /// site.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to an unrecognized value: a
    /// typo must not silently re-run the heap core while claiming
    /// calendar coverage.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("AMACL_QUEUE_CORE").ok().as_deref())
            .unwrap_or_else(|e| panic!("AMACL_QUEUE_CORE: {e}"))
    }

    /// [`QueueCoreKind::from_env`]'s pure core: `None` (unset) means
    /// the heap default; a set value must parse.
    fn from_env_value(value: Option<&str>) -> Result<Self, String> {
        match value {
            None => Ok(QueueCoreKind::Heap),
            Some(v) => v.parse(),
        }
    }

    /// Both cores, in a stable order — for sweeps that compare them.
    pub fn all() -> [QueueCoreKind; 2] {
        [QueueCoreKind::Heap, QueueCoreKind::Calendar]
    }
}

impl std::str::FromStr for QueueCoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(QueueCoreKind::Heap),
            "calendar" => Ok(QueueCoreKind::Calendar),
            other => Err(format!("unknown queue core `{other}` (heap|calendar)")),
        }
    }
}

impl std::fmt::Display for QueueCoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The **hot** half of one queue entry, shared by both cores: the
/// full `(time, class, id)` ordering key plus the slab slot of its
/// payload. `Copy` and a few words wide, so every comparison-heavy
/// structure — heap sift, bucket staging sort, tombstone scan — moves
/// and touches only these words; payload bytes stay parked in the
/// core's `PayloadSlab` until the entry actually pops.
#[derive(Clone, Copy)]
struct HotEntry {
    time: Time,
    class: u8,
    id: u64,
    slab: u32,
}

impl HotEntry {
    fn key(&self) -> (Time, u8, u64) {
        (self.time, self.class, self.id)
    }
}

impl PartialEq for HotEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HotEntry {}
impl PartialOrd for HotEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HotEntry {
    // Reversed (`BinaryHeap` is a max-heap) over the key.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// The **cold** half: payload storage indexed by [`HotEntry::slab`],
/// recycled through a free list so steady-state scheduling allocates
/// nothing. Slots are freed both when an entry pops and when a
/// tombstoned entry is reaped, so cancelled payloads never outlive
/// their tombstone.
struct PayloadSlab<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> PayloadSlab<E> {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, payload: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab slots fit u32");
                self.slots.push(Some(payload));
                slot
            }
        }
    }

    /// Removes and returns the payload at `slot`, recycling the slot.
    fn take(&mut self, slot: u32) -> E {
        let payload = self.slots[slot as usize].take().expect("live slab slot");
        self.free.push(slot);
        payload
    }
}

/// Shared id allocation and tombstone bookkeeping for both cores.
///
/// `pending` and `tombstones` are membership-checked only — never
/// iterated — so a hash set cannot leak nondeterminism into pop order.
struct Tombstones {
    pending: HashSet<u64>,
    tombstones: HashSet<u64>,
    next_id: u64,
    cancellations: u64,
}

impl Tombstones {
    fn new() -> Self {
        Self {
            pending: HashSet::new(),
            tombstones: HashSet::new(),
            next_id: 0,
            cancellations: 0,
        }
    }

    fn alloc(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(id);
        id
    }

    /// Registers an externally allocated id as pending (the
    /// [`QueueCore::push_at`] path). Keeps `next_id` ahead of every
    /// registered id so `scheduled_total` stays monotone even when
    /// internal allocation and external ids are mixed.
    fn register(&mut self, id: u64) {
        debug_assert!(!self.pending.contains(&id), "id {id} already pending");
        debug_assert!(!self.tombstones.contains(&id), "id {id} already dead");
        self.pending.insert(id);
        self.next_id = self.next_id.max(id + 1);
    }

    fn cancel(&mut self, id: u64) -> bool {
        if self.pending.remove(&id) {
            self.tombstones.insert(id);
            self.cancellations += 1;
            true
        } else {
            false
        }
    }

    /// `true` when `id` is tombstoned; the tombstone is reclaimed.
    fn reap(&mut self, id: u64) -> bool {
        self.tombstones.remove(&id)
    }
}

/// The indexed-binary-heap [`QueueCore`]: `O(log n)` push and pop,
/// tombstoned cancellation. See the [module docs](self).
///
/// Storage is structure-of-arrays: the heap orders word-sized
/// `HotEntry`s while payloads sit in a `PayloadSlab`, so sifting
/// never moves payload bytes.
pub struct HeapCore<E> {
    heap: BinaryHeap<HotEntry>,
    slab: PayloadSlab<E>,
    ts: Tombstones,
}

impl<E> Default for HeapCore<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapCore<E> {
    /// An empty heap core.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slab: PayloadSlab::new(),
            ts: Tombstones::new(),
        }
    }

    /// Drops cancelled entries sitting at the top of the heap,
    /// reclaiming their tombstones and slab slots.
    fn purge_cancelled_head(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.ts.reap(top.id) {
                let top = self.heap.pop().expect("peeked");
                drop(self.slab.take(top.slab));
            } else {
                break;
            }
        }
    }
}

impl<E> QueueCore<E> for HeapCore<E> {
    fn push(&mut self, time: Time, class: u8, payload: E) -> EventId {
        let id = self.ts.alloc();
        let slab = self.slab.insert(payload);
        self.heap.push(HotEntry {
            time,
            class,
            id,
            slab,
        });
        EventId(id)
    }

    fn push_at(&mut self, time: Time, class: u8, id: EventId, payload: E) {
        self.ts.register(id.0);
        let slab = self.slab.insert(payload);
        self.heap.push(HotEntry {
            time,
            class,
            id: id.0,
            slab,
        });
    }

    fn peek_key(&mut self) -> Option<(Time, u8, u64)> {
        self.purge_cancelled_head();
        self.heap.peek().map(|e| (e.time, e.class, e.id))
    }

    fn cancel(&mut self, id: EventId) -> bool {
        self.ts.cancel(id.0)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.purge_cancelled_head();
        self.heap.peek().map(|e| e.time)
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.purge_cancelled_head();
        let entry = self.heap.pop()?;
        self.ts.pending.remove(&entry.id);
        Some(ScheduledEvent {
            time: entry.time,
            id: EventId(entry.id),
            payload: self.slab.take(entry.slab),
        })
    }

    fn len(&self) -> usize {
        self.ts.pending.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.ts.next_id
    }

    fn cancelled_total(&self) -> u64 {
        self.ts.cancellations
    }
}

/// Initial ring size of the calendar core (buckets = ticks of
/// lookahead). Doubles lazily under overflow pressure.
const CALENDAR_INITIAL_BUCKETS: usize = 64;
/// Ring growth stops here; beyond it the overflow tier absorbs the
/// (necessarily sparse) far future at `O(log n)`.
const CALENDAR_MAX_BUCKETS: usize = 1 << 16;

/// The hierarchical-calendar [`QueueCore`]: a near-future ring of
/// one-tick buckets, an ordered far-future overflow tier, and a sorted
/// "current day" staging vector drained from the back.
///
/// * **push** — `O(1)` into the ring when the entry lands within the
///   ring's lookahead window (the common case: the engine schedules at
///   most `F_ack` ticks ahead); `O(log n)` into the overflow
///   [`BTreeMap`] otherwise (counted by
///   [`bucket_overflows`](QueueCore::bucket_overflows)).
/// * **pop** — `O(1)` from the staging vector; advancing to the next
///   non-empty tick sorts that tick's bucket once (`O(k log k)` for
///   `k` entries sharing the tick — the per-entry amortized cost
///   mirrors the heap's, without the cross-tick comparisons).
/// * **lazy resize** — when the overflow tier outgrows the ring, the
///   ring doubles (rebuilt in one deterministic pass) so subsequent
///   pushes at that horizon take the fast path.
///
/// Ordering, cancellation, and liveness behave bit-identically to
/// [`HeapCore`]; the property suite enforces it.
///
/// Like the heap core, storage is structure-of-arrays: every tier —
/// the staged day, the ring buckets, the overflow map — holds
/// word-sized `HotEntry`s (the overflow tier maps keys to slab
/// slots), so staging sorts, ring rebuilds, and tier migrations never
/// move payload bytes; payloads sit in one `PayloadSlab` until
/// their entry pops.
pub struct CalendarCore<E> {
    /// Number of ring buckets (always a power of two).
    nbuckets: usize,
    /// The day (tick) whose entries are staged in `current`; every
    /// earlier day has fully drained.
    cur_day: u64,
    /// Entries of days `<= cur_day`, sorted descending by key so pops
    /// take from the back.
    current: Vec<HotEntry>,
    /// Ring buckets for days `cur_day + 1 ..= cur_day + nbuckets`
    /// (day `d` lives at `d % nbuckets`), unsorted until staged.
    buckets: Vec<Vec<HotEntry>>,
    /// Total entries (live or tombstoned) in the ring.
    in_wheel: usize,
    /// Far-future tier: days beyond the ring, in key order; values are
    /// slab slots.
    overflow: BTreeMap<(Time, u8, u64), u32>,
    overflows: u64,
    /// Payload storage for every tier.
    slab: PayloadSlab<E>,
    ts: Tombstones,
}

impl<E> Default for CalendarCore<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarCore<E> {
    /// An empty calendar core.
    pub fn new() -> Self {
        Self {
            nbuckets: CALENDAR_INITIAL_BUCKETS,
            cur_day: 0,
            current: Vec::new(),
            buckets: (0..CALENDAR_INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            in_wheel: 0,
            overflow: BTreeMap::new(),
            overflows: 0,
            slab: PayloadSlab::new(),
            ts: Tombstones::new(),
        }
    }

    fn day_of(time: Time) -> u64 {
        time.ticks()
    }

    /// Binary-inserts into `current` (kept sorted descending by key).
    fn insert_current(&mut self, entry: HotEntry) {
        let key = entry.key();
        let pos = self.current.partition_point(|e| e.key() > key);
        self.current.insert(pos, entry);
    }

    /// Makes the back of `current` the earliest live entry, staging
    /// ring buckets and migrating the overflow tier as needed. After
    /// this, `current` is empty only if the whole queue is empty.
    fn settle(&mut self) {
        loop {
            while let Some(e) = self.current.last() {
                if self.ts.reap(e.id) {
                    let e = self.current.pop().expect("peeked");
                    drop(self.slab.take(e.slab));
                } else {
                    return;
                }
            }
            // The next day is the earlier of the ring's nearest
            // non-empty bucket and the overflow tier's first key —
            // overflow entries may have drifted *inside* the ring
            // window as the cursor advanced, so the tier must be
            // consulted even while the ring is non-empty.
            let ring_day = (self.in_wheel > 0).then(|| {
                (1..=self.nbuckets as u64)
                    .map(|step| self.cur_day + step)
                    .find(|&day| !self.buckets[(day % self.nbuckets as u64) as usize].is_empty())
                    .expect("in_wheel entries live within the ring window")
            });
            let overflow_day = self.overflow.keys().next().map(|&(t, ..)| Self::day_of(t));
            self.cur_day = match (ring_day, overflow_day) {
                (Some(r), Some(o)) => r.min(o),
                (Some(r), None) => r,
                (None, Some(o)) => o,
                (None, None) => return,
            };
            let mut staged = if ring_day == Some(self.cur_day) {
                let idx = (self.cur_day % self.nbuckets as u64) as usize;
                let staged = std::mem::take(&mut self.buckets[idx]);
                self.in_wheel -= staged.len();
                staged
            } else {
                Vec::new()
            };
            // Pull every overflow entry now inside the window back in:
            // today's into the staging vector, later days into the
            // ring, so they take the fast path from here on.
            let horizon = self.cur_day + self.nbuckets as u64;
            while let Some(entry) = self.overflow.first_entry() {
                let &(time, class, id) = entry.key();
                let day = Self::day_of(time);
                if day > horizon {
                    break;
                }
                let slab = entry.remove();
                let e = HotEntry {
                    time,
                    class,
                    id,
                    slab,
                };
                if day <= self.cur_day {
                    staged.push(e);
                } else {
                    self.buckets[(day % self.nbuckets as u64) as usize].push(e);
                    self.in_wheel += 1;
                }
            }
            staged.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            self.current = staged;
            // Loop to purge tombstones off the freshly staged day.
        }
    }

    /// Lazy resize: double the ring while the overflow tier outgrows
    /// it, rebuilding ring + reachable overflow in one pass.
    fn maybe_grow(&mut self) {
        if self.overflow.len() <= self.nbuckets || self.nbuckets >= CALENDAR_MAX_BUCKETS {
            return;
        }
        while self.overflow.len() > self.nbuckets && self.nbuckets < CALENDAR_MAX_BUCKETS {
            self.nbuckets *= 2;
        }
        let old: Vec<HotEntry> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        self.buckets = (0..self.nbuckets).map(|_| Vec::new()).collect();
        self.in_wheel = 0;
        let horizon = self.cur_day + self.nbuckets as u64;
        for e in old {
            // Every old ring entry is within the (larger) new window.
            self.buckets[(Self::day_of(e.time) % self.nbuckets as u64) as usize].push(e);
            self.in_wheel += 1;
        }
        while let Some(entry) = self.overflow.first_entry() {
            let &(time, class, id) = entry.key();
            let day = Self::day_of(time);
            if day > horizon {
                break;
            }
            let slab = entry.remove();
            self.buckets[(day % self.nbuckets as u64) as usize].push(HotEntry {
                time,
                class,
                id,
                slab,
            });
            self.in_wheel += 1;
        }
    }
}

impl<E> CalendarCore<E> {
    /// Places an entry into the right tier (staged day, ring bucket,
    /// or overflow) — the shared body of `push` and `push_at`.
    fn place(&mut self, entry: HotEntry) {
        let day = Self::day_of(entry.time);
        if day <= self.cur_day {
            // The entry's day has already been staged (or lies in the
            // past); it must pop before anything still in the ring.
            self.insert_current(entry);
        } else if day <= self.cur_day + self.nbuckets as u64 {
            self.buckets[(day % self.nbuckets as u64) as usize].push(entry);
            self.in_wheel += 1;
        } else {
            self.overflow
                .insert((entry.time, entry.class, entry.id), entry.slab);
            self.overflows += 1;
            self.maybe_grow();
        }
    }
}

impl<E> QueueCore<E> for CalendarCore<E> {
    fn push(&mut self, time: Time, class: u8, payload: E) -> EventId {
        let id = self.ts.alloc();
        let slab = self.slab.insert(payload);
        self.place(HotEntry {
            time,
            class,
            id,
            slab,
        });
        EventId(id)
    }

    fn push_at(&mut self, time: Time, class: u8, id: EventId, payload: E) {
        self.ts.register(id.0);
        let slab = self.slab.insert(payload);
        self.place(HotEntry {
            time,
            class,
            id: id.0,
            slab,
        });
    }

    fn peek_key(&mut self) -> Option<(Time, u8, u64)> {
        self.settle();
        self.current.last().map(|e| (e.time, e.class, e.id))
    }

    fn cancel(&mut self, id: EventId) -> bool {
        self.ts.cancel(id.0)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.settle();
        self.current.last().map(|e| e.time)
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.settle();
        let entry = self.current.pop()?;
        self.ts.pending.remove(&entry.id);
        Some(ScheduledEvent {
            time: entry.time,
            id: EventId(entry.id),
            payload: self.slab.take(entry.slab),
        })
    }

    fn len(&self) -> usize {
        self.ts.pending.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.ts.next_id
    }

    fn cancelled_total(&self) -> u64 {
        self.ts.cancellations
    }

    fn bucket_overflows(&self) -> u64 {
        self.overflows
    }
}

/// A deterministic, cancellable discrete-event priority queue over a
/// selectable [`QueueCore`].
///
/// See the [module docs](self) for the contract. `E` is the event
/// payload type. Construction defaults to the [`HeapCore`]; pass a
/// [`QueueCoreKind`] to [`EventQueue::with_core`] to select the
/// calendar core. Dispatch is a static `match`, not a vtable.
pub enum EventQueue<E> {
    /// Backed by the indexed binary heap.
    Heap(HeapCore<E>),
    /// Backed by the hierarchical calendar queue.
    Calendar(CalendarCore<E>),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! on_core {
    ($self:ident, $core:ident => $body:expr) => {
        match $self {
            EventQueue::Heap($core) => $body,
            EventQueue::Calendar($core) => $body,
        }
    };
}

impl<E> EventQueue<E> {
    /// An empty queue on the default heap core.
    pub fn new() -> Self {
        EventQueue::Heap(HeapCore::new())
    }

    /// An empty queue on the selected core.
    pub fn with_core(kind: QueueCoreKind) -> Self {
        match kind {
            QueueCoreKind::Heap => EventQueue::Heap(HeapCore::new()),
            QueueCoreKind::Calendar => EventQueue::Calendar(CalendarCore::new()),
        }
    }

    /// Which core this queue runs on.
    pub fn kind(&self) -> QueueCoreKind {
        match self {
            EventQueue::Heap(_) => QueueCoreKind::Heap,
            EventQueue::Calendar(_) => QueueCoreKind::Calendar,
        }
    }

    /// Schedules `payload` at `time` in priority band `class` (lower
    /// classes pop first at equal times). Returns the entry's id.
    pub fn push(&mut self, time: Time, class: u8, payload: E) -> EventId {
        on_core!(self, core => core.push(time, class, payload))
    }

    /// Schedules `payload` under a caller-allocated id; see
    /// [`QueueCore::push_at`].
    pub fn push_at(&mut self, time: Time, class: u8, id: EventId, payload: E) {
        on_core!(self, core => core.push_at(time, class, id, payload))
    }

    /// The `(time, class, id)` key of the earliest live entry; see
    /// [`QueueCore::peek_key`].
    pub fn peek_key(&mut self) -> Option<(Time, u8, u64)> {
        on_core!(self, core => core.peek_key())
    }

    /// Cancels the entry with the given id, if it is still pending.
    /// See [`QueueCore::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        on_core!(self, core => core.cancel(id))
    }

    /// The due time of the earliest live entry.
    pub fn peek_time(&mut self) -> Option<Time> {
        on_core!(self, core => core.peek_time())
    }

    /// Pops the earliest live entry.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        on_core!(self, core => core.pop())
    }

    /// Number of live (pending, un-cancelled) entries.
    pub fn len(&self) -> usize {
        on_core!(self, core => core.len())
    }

    /// `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries ever scheduled (also the next id to be assigned).
    pub fn scheduled_total(&self) -> u64 {
        on_core!(self, core => core.scheduled_total())
    }

    /// Total successful cancellations so far.
    pub fn cancelled_total(&self) -> u64 {
        on_core!(self, core => core.cancelled_total())
    }

    /// Slow-tier (overflow) inserts so far; 0 on the heap core.
    pub fn bucket_overflows(&self) -> u64 {
        on_core!(self, core => core.bucket_overflows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_cores() -> Vec<EventQueue<&'static str>> {
        vec![
            EventQueue::with_core(QueueCoreKind::Heap),
            EventQueue::with_core(QueueCoreKind::Calendar),
        ]
    }

    #[test]
    fn pops_by_time_then_class_then_insertion() {
        for mut q in both_cores() {
            q.push(Time(2), 2, "t2-ack");
            q.push(Time(2), 1, "t2-recv-a");
            q.push(Time(1), 2, "t1-ack");
            q.push(Time(2), 1, "t2-recv-b");
            q.push(Time(2), 0, "t2-crash");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
            assert_eq!(
                order,
                vec!["t1-ack", "t2-crash", "t2-recv-a", "t2-recv-b", "t2-ack"],
                "{} core",
                q.kind()
            );
        }
    }

    #[test]
    fn cancelled_entries_never_pop_and_len_tracks_live() {
        for kind in QueueCoreKind::all() {
            let mut q = EventQueue::with_core(kind);
            let a = q.push(Time(1), 0, 'a');
            let b = q.push(Time(2), 0, 'b');
            let c = q.push(Time(3), 0, 'c');
            assert_eq!(q.len(), 3);
            assert!(q.cancel(b));
            assert_eq!(q.len(), 2);
            assert_eq!(q.cancelled_total(), 1);
            assert_eq!(q.pop().unwrap().payload, 'a');
            assert_eq!(q.peek_time(), Some(Time(3)));
            assert_eq!(q.pop().unwrap().payload, 'c');
            assert!(q.is_empty());
            // Already-fired and already-cancelled ids are safe no-ops.
            assert!(!q.cancel(a));
            assert!(!q.cancel(b));
            assert!(!q.cancel(c));
            assert_eq!(q.cancelled_total(), 1);
        }
    }

    #[test]
    fn cancel_head_purges_lazily() {
        for kind in QueueCoreKind::all() {
            let mut q = EventQueue::with_core(kind);
            let a = q.push(Time(1), 0, 1u32);
            q.push(Time(5), 0, 2u32);
            assert!(q.cancel(a));
            // peek_time must skip the dead head.
            assert_eq!(q.peek_time(), Some(Time(5)));
            assert_eq!(q.pop().unwrap().payload, 2);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn empty_queue_behaves() {
        for kind in QueueCoreKind::all() {
            let mut q: EventQueue<u8> = EventQueue::with_core(kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            assert!(q.pop().is_none());
            assert_eq!(q.scheduled_total(), 0);
        }
    }

    #[test]
    fn calendar_handles_far_future_and_grows_lazily() {
        let mut q: EventQueue<u64> = EventQueue::with_core(QueueCoreKind::Calendar);
        // Far beyond the initial 64-tick window: overflow tier.
        for i in 0..4u64 {
            q.push(Time(1_000_000 + i), 0, i);
        }
        assert!(q.bucket_overflows() >= 4);
        q.push(Time(1), 0, 99);
        assert_eq!(q.pop().unwrap().payload, 99);
        // The jump across the empty ring lands on the overflow entries
        // in key order.
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(rest, vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_growth_keeps_order_under_overflow_pressure() {
        let mut q: EventQueue<u64> = EventQueue::with_core(QueueCoreKind::Calendar);
        // More far-future entries than ring buckets forces a resize.
        let times: Vec<u64> = (0..200u64).map(|i| 500 + 37 * (i % 40) + i).collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time(t), (i % 3) as u8, i as u64);
        }
        let mut expected: Vec<(u64, u8, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, (i % 3) as u8, i as u64))
            .collect();
        expected.sort_unstable();
        let popped: Vec<(u64, u8, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.ticks(), (e.payload % 3) as u8, e.payload))
            .collect();
        assert_eq!(popped.len(), expected.len());
        for (p, x) in popped.iter().zip(&expected) {
            assert_eq!((p.0, p.2), (x.0, x.2));
        }
    }

    /// `push_at` entries interleave with `push`-allocated ones purely
    /// by `(time, class, id)`, regardless of insertion order — the
    /// property the sharded engine's mailbox drains rely on.
    #[test]
    fn push_at_orders_by_id_independent_of_insertion_order() {
        for kind in QueueCoreKind::all() {
            let mut q: EventQueue<u64> = EventQueue::with_core(kind);
            // Insert out of id order, including a far-future entry.
            q.push_at(Time(5), 1, EventId(3), 30);
            q.push_at(Time(5), 1, EventId(1), 10);
            q.push_at(Time(1_000_000), 0, EventId(4), 40);
            q.push_at(Time(5), 0, EventId(2), 20);
            q.push_at(Time(5), 1, EventId(0), 0);
            assert_eq!(q.peek_key(), Some((Time(5), 0, 2)), "{kind}");
            let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
            assert_eq!(order, vec![20, 0, 10, 30, 40], "{kind} core");
            // The external ids count toward scheduling/liveness totals.
            assert_eq!(q.scheduled_total(), 5, "{kind}");
            assert!(q.is_empty());
        }
    }

    /// Cancellation and liveness accounting treat `push_at` ids like
    /// internally allocated ones.
    #[test]
    fn push_at_entries_cancel_like_any_other() {
        for kind in QueueCoreKind::all() {
            let mut q: EventQueue<u8> = EventQueue::with_core(kind);
            q.push_at(Time(1), 0, EventId(0), 1);
            q.push_at(Time(2), 0, EventId(1), 2);
            assert_eq!(q.len(), 2);
            assert!(q.cancel(EventId(0)));
            assert!(!q.cancel(EventId(0)));
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(Time(2)), "{kind}");
            assert_eq!(q.pop().unwrap().payload, 2);
            assert!(q.pop().is_none());
            assert_eq!(q.cancelled_total(), 1);
        }
    }

    #[test]
    fn queue_core_kind_parses_and_names() {
        assert_eq!("heap".parse::<QueueCoreKind>(), Ok(QueueCoreKind::Heap));
        assert_eq!(
            "calendar".parse::<QueueCoreKind>(),
            Ok(QueueCoreKind::Calendar)
        );
        assert!("fifo".parse::<QueueCoreKind>().is_err());
        assert_eq!(QueueCoreKind::Calendar.name(), "calendar");
        assert_eq!(QueueCoreKind::Heap.to_string(), "heap");
    }

    #[test]
    fn env_selection_rejects_typos_instead_of_falling_back() {
        // (Pure helper — no env mutation, safe under parallel tests.)
        assert_eq!(QueueCoreKind::from_env_value(None), Ok(QueueCoreKind::Heap));
        assert_eq!(
            QueueCoreKind::from_env_value(Some("calendar")),
            Ok(QueueCoreKind::Calendar)
        );
        // A typo must surface, not silently void calendar coverage.
        assert!(QueueCoreKind::from_env_value(Some("Calendar")).is_err());
        assert!(QueueCoreKind::from_env_value(Some("calender")).is_err());
    }
}
