//! Sharding primitives for the conservative time-windowed engine.
//!
//! The discrete-event engine can partition the process set across `S`
//! worker **shards**. Each shard owns its own
//! [`EventQueue`](super::queue::EventQueue) (heap or calendar core —
//! the [`QueueCore`](super::queue::QueueCore) seam) and processes only
//! the events targeting its slots; events a shard schedules for
//! another shard's slot travel through a deterministic per-edge
//! mailbox (the crate-internal `Mailbox` type) instead of being
//! pushed directly.
//!
//! # The determinism contract
//!
//! Sharding is an **execution-architecture knob, not a semantic one**:
//! for every process set, scheduler, crash plan, seed, and queue core,
//! a run at any shard count produces a trace, decision vector, and
//! semantic counter set **byte-identical** to the serial (`S = 1`)
//! engine. The engine guarantees this with a conservative time-window
//! protocol:
//!
//! * **Lookahead.** The scheduler declares a strictly positive minimum
//!   delay ([`Scheduler::min_delay`](super::sched::Scheduler::min_delay),
//!   the `F_prog`/`F_ack` floor of the abstract MAC layer: every
//!   delivery and every ack lands at least that many ticks after its
//!   broadcast). A window starting at virtual time `W` therefore spans
//!   `[W, W + lookahead)`, and **no event processed inside the window
//!   can schedule another event inside it** — everything new lands at
//!   or beyond the window horizon. Zero-lookahead schedulers are
//!   rejected at build time: a conservative engine cannot advance on
//!   them (it would deadlock waiting for a safe horizon that never
//!   opens).
//! * **Deterministic merge.** Within a window, the coordinator drains
//!   the shards' queue heads in global `(time, class, seq)` order —
//!   the exact order the serial engine's single queue would pop — with
//!   event sequence numbers allocated from one engine-global counter
//!   at scheduling time. Cross-shard entries keep their allocated seq
//!   through the mailbox, so draining a mailbox into the destination
//!   queue cannot perturb the order.
//! * **Mailbox flushes at window boundaries.** Because nothing
//!   scheduled inside a window is due inside it, mailboxes only need
//!   draining when a window opens. Each drained non-empty mailbox
//!   counts one `mailbox_flush` in
//!   [`Metrics`](super::trace::Metrics).
//!
//! # Cancellation across shards
//!
//! When a sender crashes, its in-flight broadcast's remaining events
//! are cancelled wherever they live:
//!
//! * already in a destination shard's queue — O(1) tombstone on that
//!   queue, exactly like the serial engine;
//! * still in a mailbox (scheduled this window, not yet flushed) — the
//!   entry is removed from the mailbox by id and counted as a
//!   cancellation, so the aggregate `queue_cancellations` metric stays
//!   byte-identical to the serial run's.
//!
//! Cancelling an id that already fired remains a detectable no-op in
//! both locations, so bulk cancellation lists need no liveness
//! tracking — the same contract the [`QueueCore`] owes its callers.
//!
//! [`QueueCore`]: super::queue::QueueCore

use super::queue::EventId;
use super::time::Time;

/// Default shard count, honoring the `AMACL_SHARDS` environment
/// variable.
///
/// Mirrors `AMACL_QUEUE_CORE`: unset means serial (`1`), and a set
/// value must parse as a positive integer — a typo must not silently
/// run serial while claiming sharded coverage. CI uses the variable to
/// run the whole test suite sharded without touching any call site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardCount(usize);

impl ShardCount {
    /// A validated shard count.
    ///
    /// # Errors
    ///
    /// Rejects `0`: a simulation needs at least one shard.
    pub fn new(shards: usize) -> Result<Self, String> {
        if shards == 0 {
            Err("shard count must be at least 1".into())
        } else {
            Ok(Self(shards))
        }
    }

    /// The raw count.
    pub fn get(self) -> usize {
        self.0
    }

    /// The default shard count from the `AMACL_SHARDS` environment
    /// variable (`1` when unset).
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to anything but a positive
    /// integer: a typo must surface, not silently void sharded
    /// coverage.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("AMACL_SHARDS").ok().as_deref())
            .unwrap_or_else(|e| panic!("AMACL_SHARDS: {e}"))
    }

    /// [`ShardCount::from_env`]'s pure core: `None` (unset) means
    /// serial; a set value must parse.
    fn from_env_value(value: Option<&str>) -> Result<Self, String> {
        match value {
            None => Ok(Self(1)),
            Some(v) => v.parse(),
        }
    }
}

impl Default for ShardCount {
    fn default() -> Self {
        Self(1)
    }
}

/// Default worker-thread count for the parallel stepper, honoring the
/// `AMACL_THREADS` environment variable.
///
/// Mirrors [`ShardCount`]/`AMACL_SHARDS`: unset means single-threaded
/// stepping (`1`), and a set value must parse as a positive integer —
/// a typo must not silently run serial while claiming threaded
/// coverage. The engine runs at most `min(threads, shards)` workers:
/// shards are the unit of parallelism, so extra threads never help and
/// are not spawned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ThreadCount(usize);

impl ThreadCount {
    /// A validated thread count.
    ///
    /// # Errors
    ///
    /// Rejects `0`: the coordinator always needs at least one stepper.
    pub fn new(threads: usize) -> Result<Self, String> {
        if threads == 0 {
            Err("thread count must be at least 1".into())
        } else {
            Ok(Self(threads))
        }
    }

    /// The raw count.
    pub fn get(self) -> usize {
        self.0
    }

    /// The default thread count from the `AMACL_THREADS` environment
    /// variable (`1` when unset).
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to anything but a positive
    /// integer: a typo must surface, not silently void threaded
    /// coverage.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("AMACL_THREADS").ok().as_deref())
            .unwrap_or_else(|e| panic!("AMACL_THREADS: {e}"))
    }

    /// [`ThreadCount::from_env`]'s pure core: `None` (unset) means
    /// single-threaded; a set value must parse.
    fn from_env_value(value: Option<&str>) -> Result<Self, String> {
        match value {
            None => Ok(Self(1)),
            Some(v) => v.parse(),
        }
    }
}

impl Default for ThreadCount {
    fn default() -> Self {
        Self(1)
    }
}

impl std::str::FromStr for ThreadCount {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.parse::<usize>() {
            Ok(n) => Self::new(n),
            Err(_) => Err(format!(
                "unknown thread count `{s}` (expected a positive integer)"
            )),
        }
    }
}

impl std::fmt::Display for ThreadCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// How many consecutive conservative windows the threaded engine's
/// persistent worker pool may run per wake-up (one *superstep*),
/// honoring the `AMACL_WINDOW_BATCH` environment variable.
///
/// The pool parks its workers between supersteps; within one, windows
/// rendezvous on cheap barriers instead of a park/unpark round trip,
/// so larger batches amortize the wake cost over more windows. This is
/// purely a wake-policy knob: the window *sequence* — and with it the
/// trace, decisions, and every deterministic counter — is byte-
/// identical at every batch size, enforced the same way sharding and
/// threading are.
///
/// # The superstep commit-gate invariant
///
/// A superstep never outruns the commit gate: every window inside it
/// still runs the full two-phase protocol (drain + gate statistics,
/// barrier, commit or abort), and the coordinator still performs the
/// ordered single-threaded commit between consecutive windows — window
/// `w`'s deferred broadcasts must allocate ids and consume engine RNG
/// before window `w + 1` opens, exactly as serially. When the gate
/// fails mid-batch (a crash event, an event-limit crossing, a possible
/// all-decided stop), the workers push their drained events back — keys
/// and ids intact — and the coordinator replays that window through the
/// merged single-threaded drain verbatim before the batch continues or
/// the pool parks. Batching therefore changes *when workers sleep*,
/// never *what executes*.
///
/// Mirrors [`ShardCount`]/[`ThreadCount`] parsing: unset means
/// [`WindowBatch::Auto`], and a set value must be `auto` or a positive
/// integer — a typo (or `0`, which would forbid progress) must surface
/// rather than silently fall back.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WindowBatch {
    /// Let the engine pick the batch cap (currently 16 windows per
    /// wake).
    #[default]
    Auto,
    /// At most this many windows per worker wake-up (always >= 1).
    Fixed(usize),
}

impl WindowBatch {
    /// The batch cap [`WindowBatch::Auto`] resolves to.
    pub const AUTO_CAP: usize = 16;

    /// A validated fixed batch size.
    ///
    /// # Errors
    ///
    /// Rejects `0`: every superstep must be allowed at least one
    /// window or the pool could never advance.
    pub fn fixed(windows: usize) -> Result<Self, String> {
        if windows == 0 {
            Err("window batch must be at least 1".into())
        } else {
            Ok(Self::Fixed(windows))
        }
    }

    /// The effective cap: consecutive windows one worker wake-up may
    /// cover.
    pub fn cap(self) -> usize {
        match self {
            Self::Auto => Self::AUTO_CAP,
            Self::Fixed(k) => k,
        }
    }

    /// The default batch policy from the `AMACL_WINDOW_BATCH`
    /// environment variable ([`WindowBatch::Auto`] when unset).
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to anything but `auto` or a
    /// positive integer: a typo must surface, not silently change the
    /// wake policy under test.
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var("AMACL_WINDOW_BATCH").ok().as_deref())
            .unwrap_or_else(|e| panic!("AMACL_WINDOW_BATCH: {e}"))
    }

    /// [`WindowBatch::from_env`]'s pure core: `None` (unset) means
    /// auto; a set value must parse.
    fn from_env_value(value: Option<&str>) -> Result<Self, String> {
        match value {
            None => Ok(Self::Auto),
            Some(v) => v.parse(),
        }
    }
}

impl std::str::FromStr for WindowBatch {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "auto" {
            return Ok(Self::Auto);
        }
        match s.parse::<usize>() {
            Ok(n) => Self::fixed(n),
            Err(_) => Err(format!(
                "unknown window batch `{s}` (expected `auto` or a positive integer)"
            )),
        }
    }
}

impl std::fmt::Display for WindowBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Auto => write!(f, "auto"),
            Self::Fixed(k) => write!(f, "{k}"),
        }
    }
}

impl std::str::FromStr for ShardCount {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.parse::<usize>() {
            Ok(n) => Self::new(n),
            Err(_) => Err(format!(
                "unknown shard count `{s}` (expected a positive integer)"
            )),
        }
    }
}

impl std::fmt::Display for ShardCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Balanced block partition of `n` slots across `S` shards.
///
/// Shard `i` owns the contiguous slot range `[i*n/S, (i+1)*n/S)`
/// (sizes differ by at most one). Contiguous blocks keep neighbor
/// locality on the structured topologies (lines, grids, tori), which
/// is what minimizes cross-shard mailbox traffic. The requested shard
/// count is clamped to `n`, so empty shards never exist.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// Owning shard per slot.
    owner: Vec<u32>,
    /// `[lo, hi)` slot range per shard.
    ranges: Vec<(usize, usize)>,
}

impl ShardMap {
    /// Partitions `n` slots across (at most) `shards` shards.
    pub fn new(n: usize, shards: usize) -> Self {
        let s = shards.max(1).min(n.max(1));
        let mut owner = vec![0u32; n];
        let mut ranges = Vec::with_capacity(s);
        for i in 0..s {
            let lo = i * n / s;
            let hi = (i + 1) * n / s;
            ranges.push((lo, hi));
            for o in &mut owner[lo..hi] {
                *o = i as u32;
            }
        }
        Self { owner, ranges }
    }

    /// Number of (non-empty) shards.
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// The shard owning `slot`.
    #[inline]
    pub fn shard_of(&self, slot: usize) -> usize {
        self.owner[slot] as usize
    }

    /// The contiguous slot range `[lo, hi)` shard `shard` owns.
    pub fn slots_of(&self, shard: usize) -> std::ops::Range<usize> {
        let (lo, hi) = self.ranges[shard];
        lo..hi
    }
}

/// One cross-shard event in transit: the payload plus the queue key it
/// was allocated at scheduling time, so draining preserves the global
/// `(time, class, seq)` order.
#[derive(Clone, Debug)]
pub(crate) struct MailEntry<E> {
    pub(crate) time: Time,
    pub(crate) class: u8,
    pub(crate) id: EventId,
    pub(crate) payload: E,
}

/// A deterministic per-edge mailbox: events shard `src` scheduled for
/// shard `dst`, awaiting the next window-boundary flush.
///
/// Entries carry pre-allocated event ids, so the order they sit in the
/// mailbox (and the order they are drained) cannot influence pop
/// order — the destination queue orders by `(time, class, id)`.
#[derive(Debug, Default)]
pub(crate) struct Mailbox<E> {
    entries: Vec<MailEntry<E>>,
}

impl<E> Mailbox<E> {
    pub(crate) fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Deposits one in-transit event.
    pub(crate) fn push(&mut self, entry: MailEntry<E>) {
        self.entries.push(entry);
    }

    /// `true` when nothing is in transit.
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The earliest due time among in-transit entries (`None` when
    /// empty). The threaded stepper defers mailbox flushing to the
    /// destination shard's worker, so the coordinator computes window
    /// starts over queue heads *and* unflushed mailboxes; a linear
    /// scan is fine — a mailbox only ever holds the entries of one
    /// window's broadcasts.
    pub(crate) fn min_time(&self) -> Option<Time> {
        self.entries.iter().map(|e| e.time).min()
    }

    /// Removes the in-transit entry with the given id, if present.
    /// Returns `true` on removal — the cancellation-in-flight path of
    /// the [module contract](self).
    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(idx) => {
                // swap_remove is safe: mailbox order is never
                // observable (ids order the destination queue).
                self.entries.swap_remove(idx);
                true
            }
            None => false,
        }
    }

    /// Drains every in-transit entry, handing each to `sink` (the
    /// destination queue's id-preserving insert).
    pub(crate) fn drain_into(&mut self, mut sink: impl FnMut(MailEntry<E>)) {
        for entry in self.entries.drain(..) {
            sink(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_parses_and_rejects() {
        assert_eq!("4".parse::<ShardCount>().unwrap().get(), 4);
        assert_eq!(ShardCount::default().get(), 1);
        assert!("0".parse::<ShardCount>().is_err());
        assert!("four".parse::<ShardCount>().is_err());
        assert!("".parse::<ShardCount>().is_err());
        assert_eq!(ShardCount::new(3).unwrap().to_string(), "3");
        assert!(ShardCount::new(0).is_err());
    }

    #[test]
    fn env_selection_rejects_typos_instead_of_falling_back() {
        // (Pure helper — no env mutation, safe under parallel tests.)
        assert_eq!(ShardCount::from_env_value(None).unwrap().get(), 1);
        assert_eq!(ShardCount::from_env_value(Some("7")).unwrap().get(), 7);
        assert!(ShardCount::from_env_value(Some("0")).is_err());
        assert!(ShardCount::from_env_value(Some("two")).is_err());
    }

    #[test]
    fn thread_count_parses_and_rejects() {
        assert_eq!("4".parse::<ThreadCount>().unwrap().get(), 4);
        assert_eq!(ThreadCount::default().get(), 1);
        assert!("0".parse::<ThreadCount>().is_err());
        assert!("four".parse::<ThreadCount>().is_err());
        assert!("".parse::<ThreadCount>().is_err());
        assert_eq!(ThreadCount::new(3).unwrap().to_string(), "3");
        assert!(ThreadCount::new(0).is_err());
    }

    #[test]
    fn thread_env_selection_rejects_typos_instead_of_falling_back() {
        // (Pure helper — no env mutation, safe under parallel tests.)
        assert_eq!(ThreadCount::from_env_value(None).unwrap().get(), 1);
        assert_eq!(ThreadCount::from_env_value(Some("7")).unwrap().get(), 7);
        assert!(ThreadCount::from_env_value(Some("0")).is_err());
        assert!(ThreadCount::from_env_value(Some("two")).is_err());
    }

    #[test]
    fn window_batch_parses_and_rejects() {
        assert_eq!("auto".parse::<WindowBatch>().unwrap(), WindowBatch::Auto);
        assert_eq!("4".parse::<WindowBatch>().unwrap(), WindowBatch::Fixed(4));
        assert_eq!(WindowBatch::default(), WindowBatch::Auto);
        assert_eq!(WindowBatch::Auto.cap(), WindowBatch::AUTO_CAP);
        assert_eq!(WindowBatch::Fixed(3).cap(), 3);
        assert!("0".parse::<WindowBatch>().is_err());
        assert!("eight".parse::<WindowBatch>().is_err());
        assert!("".parse::<WindowBatch>().is_err());
        assert_eq!(WindowBatch::fixed(8).unwrap().to_string(), "8");
        assert_eq!(WindowBatch::Auto.to_string(), "auto");
        assert!(WindowBatch::fixed(0).is_err());
    }

    #[test]
    fn window_batch_env_selection_rejects_typos_instead_of_falling_back() {
        // (Pure helper — no env mutation, safe under parallel tests.)
        assert_eq!(
            WindowBatch::from_env_value(None).unwrap(),
            WindowBatch::Auto
        );
        assert_eq!(
            WindowBatch::from_env_value(Some("auto")).unwrap(),
            WindowBatch::Auto
        );
        assert_eq!(
            WindowBatch::from_env_value(Some("7")).unwrap(),
            WindowBatch::Fixed(7)
        );
        assert!(WindowBatch::from_env_value(Some("0")).is_err());
        assert!(WindowBatch::from_env_value(Some("always")).is_err());
    }

    #[test]
    fn mailbox_min_time_tracks_earliest_entry() {
        let mut mb: Mailbox<u8> = Mailbox::new();
        assert_eq!(mb.min_time(), None);
        for (i, t) in [5u64, 2, 9].iter().enumerate() {
            mb.push(MailEntry {
                time: Time(*t),
                class: 1,
                id: EventId(i as u64),
                payload: 0,
            });
        }
        assert_eq!(mb.min_time(), Some(Time(2)));
        assert!(mb.cancel(EventId(1)));
        assert_eq!(mb.min_time(), Some(Time(5)));
    }

    #[test]
    fn shard_map_partitions_contiguously_and_covers() {
        for n in [1usize, 2, 5, 7, 16, 33] {
            for s in [1usize, 2, 3, 4, 7, 40] {
                let map = ShardMap::new(n, s);
                assert!(map.shards() >= 1 && map.shards() <= s.max(1));
                assert!(map.shards() <= n.max(1));
                let mut covered = 0;
                for shard in 0..map.shards() {
                    let range = map.slots_of(shard);
                    for slot in range.clone() {
                        assert_eq!(map.shard_of(slot), shard, "n={n} s={s} slot={slot}");
                    }
                    covered += range.len();
                }
                assert_eq!(covered, n, "n={n} s={s}: partition must cover");
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = (0..map.shards()).map(|i| map.slots_of(i).len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "n={n} s={s}: unbalanced {sizes:?}");
            }
        }
    }

    #[test]
    fn mailbox_cancel_removes_only_the_named_entry() {
        let mut mb: Mailbox<&'static str> = Mailbox::new();
        for (i, p) in ["a", "b", "c"].iter().enumerate() {
            mb.push(MailEntry {
                time: Time(1),
                class: 1,
                id: EventId(i as u64),
                payload: p,
            });
        }
        assert!(mb.cancel(EventId(1)));
        assert!(!mb.cancel(EventId(1)), "double cancel is a no-op");
        assert!(!mb.cancel(EventId(9)), "unknown id is a no-op");
        let mut drained = Vec::new();
        mb.drain_into(|e| drained.push(e.id.raw()));
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 2]);
        assert!(mb.is_empty());
    }
}
