//! Crash-failure injection.
//!
//! The model lets the scheduler crash a node at any point, *including
//! mid-broadcast*: "the timing of the crash is determined by the
//! scheduler and can happen in the middle of a broadcast (i.e., after
//! some neighbors have received the message but not all)" (Section 2).
//! That partial-delivery behavior is exactly what breaks deterministic
//! consensus (Theorem 3.2), so the simulator supports it precisely.

use crate::ids::Slot;

use super::time::Time;

/// When a node should crash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashSpec {
    /// Crash at the given virtual time, before any deliveries or acks
    /// scheduled at that time fire. Deliveries of the node's in-flight
    /// broadcast that have not yet happened are cancelled.
    AtTime {
        /// Node to crash.
        slot: Slot,
        /// Crash instant.
        time: Time,
    },
    /// Crash in the middle of the node's `nth` accepted broadcast
    /// (0-indexed), immediately after exactly `delivered` neighbors
    /// have received it. With `delivered = 0` the broadcast reaches
    /// nobody; remaining neighbors never receive the message.
    MidBroadcast {
        /// Node to crash.
        slot: Slot,
        /// Which of the node's broadcasts (0-indexed, counting accepted
        /// broadcasts only) to interrupt.
        nth_broadcast: u64,
        /// How many neighbor deliveries to allow before the crash.
        delivered: usize,
    },
}

impl CrashSpec {
    /// The crashing node.
    pub fn slot(&self) -> Slot {
        match *self {
            CrashSpec::AtTime { slot, .. } | CrashSpec::MidBroadcast { slot, .. } => slot,
        }
    }
}

/// A set of scheduled crashes (at most one per node).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    specs: Vec<CrashSpec>,
}

impl CrashPlan {
    /// No crashes — the assumption under which the paper's upper
    /// bounds operate.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from specs.
    ///
    /// # Panics
    ///
    /// Panics if two specs name the same node.
    pub fn new(specs: Vec<CrashSpec>) -> Self {
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.slot(), b.slot(), "duplicate crash for {:?}", a.slot());
            }
        }
        Self { specs }
    }

    /// Number of scheduled crashes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when no crashes are scheduled.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The scheduled specs.
    pub fn specs(&self) -> &[CrashSpec] {
        &self.specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_accessors() {
        let plan = CrashPlan::new(vec![
            CrashSpec::AtTime {
                slot: Slot(1),
                time: Time(5),
            },
            CrashSpec::MidBroadcast {
                slot: Slot(2),
                nth_broadcast: 0,
                delivered: 1,
            },
        ]);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.specs()[0].slot(), Slot(1));
        assert!(CrashPlan::none().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate crash")]
    fn duplicate_node_rejected() {
        CrashPlan::new(vec![
            CrashSpec::AtTime {
                slot: Slot(1),
                time: Time(5),
            },
            CrashSpec::AtTime {
                slot: Slot(1),
                time: Time(9),
            },
        ]);
    }
}
