//! The discrete-event execution engine: a sharded driver over the
//! cancellable [`EventQueue`] cores and the shared [`BcastLedger`]
//! delivery/ack/crash bookkeeping.
//!
//! The engine's job is reduced to wiring: it asks the [`Scheduler`]
//! for a delivery plan per broadcast, schedules the resulting
//! receive/ack events on the queue,
//! and lets the ledger answer the semantic questions (is this node
//! crashed, does a planned mid-broadcast crash interrupt this
//! broadcast). When a sender crashes, its in-flight broadcast's
//! remaining events are *cancelled* on the queue (O(1) tombstones)
//! rather than popped-and-skipped, which keeps the hot loop free of
//! per-event liveness checks.
//!
//! # Sharded execution
//!
//! The process set can be partitioned across `S` shards
//! ([`SimBuilder::shards`], `AMACL_SHARDS`): each shard owns a
//! `ShardCell` — its own [`EventQueue`], payload arena, and the
//! shard's slice of every slot-indexed hot table — and processes the
//! events targeting its slots, while a **conservative time-window
//! coordinator** ([`Sim::run`] → the windowed loop) advances all
//! shards through `lookahead`-sized windows derived from the
//! scheduler's minimum delay bound ([`Scheduler::min_delay`]). Events
//! one shard schedules for another travel through deterministic
//! per-edge mailboxes that are flushed at window boundaries; within a
//! window the coordinator drains shard heads in global
//! `(time, class, seq)` order, so the execution — trace, decisions,
//! semantic counters — is **byte-identical** to the serial engine at
//! every shard count. The full protocol and its
//! cancellation-across-shards semantics are documented in
//! [`super::shard`]. Serial (`S = 1`) takes a dedicated fast path
//! with no window or routing overhead.
//!
//! # Persistent pool, parallel stepping, and supersteps
//!
//! With [`SimBuilder::threads`] (or `AMACL_THREADS`) above 1, windows
//! are *executed* in parallel by a **persistent worker pool**: one
//! worker per shard group, spawned **once per `run`/`run_until` call**
//! (thread spawns are O(1) in the window count, surfaced as
//! [`Metrics::worker_spawns`]), coordinated through epoch-stamped
//! supersteps. Each `ShardCell` sits behind a mutex; a worker locks
//! exactly its own cells during a window's two phases, and the
//! coordinator locks all of them between windows — the lock is never
//! contended, it only *transfers* ownership at the barriers. Within a
//! window each worker flushes its shard's inbound mailboxes, drains
//! its queue up to the window end, and runs its events — process
//! callbacks included — against its cells; cross-shard effects only
//! ever travel as typed messages (mailbox entries and per-destination
//! imported payload clones), never as writes into another shard's
//! cell.
//!
//! Workers park on a condvar between supersteps: the coordinator
//! wakes the pool once per batch of up to
//! [`super::shard::WindowBatch`] consecutive windows
//! ([`Metrics::superstep_count`] / [`Metrics::worker_wakeups`]), and
//! an **adaptive serial gate** steps windows whose predecessor drained
//! fewer than `SERIAL_WINDOW_MIN_EVENTS` events inline on the
//! coordinator without waking workers at all
//! ([`Metrics::serial_window_shortcuts`]) — tiny windows dominate at
//! small `n`, and a merged drain is cheaper than a barrier round.
//! Both policies are pure wake-policy: the window sequence and every
//! deterministic counter are unchanged.
//!
//! Byte-identity with the serial engine is preserved by splitting
//! each step into a shard-local half and a deferred half. Workers
//! perform the shard-local half and record, per step, what the
//! global half needs (trace span, requested broadcast); after the
//! window's last barrier, the single-threaded commit replays those
//! records in global `(time, class, seq)` order, allocating
//! broadcast/event ids and consuming engine RNG exactly as the serial
//! loop would have. A window only runs in parallel when a commit gate
//! proves no step inside it can stop the run or mutate cross-shard
//! state (no crash events, no armed mid-broadcast crash machinery, no
//! horizon or event-limit crossing, at least one undecided node
//! untouched); otherwise the drained events are pushed back — ids
//! intact — and the window falls back to the merged single-threaded
//! drain.
//!
//! Hot-path state is laid out densely: in-flight broadcasts live in a
//! per-slot table (no hash maps anywhere in the loop), the event-id
//! vectors they carry are pooled across broadcasts, and payloads live
//! in per-shard generation-indexed arenas ([`super::arena`]) that
//! events reference by word-sized handle. The arena's refcounting
//! makes copies minimal and observable ([`Metrics::payload_clones`] /
//! [`Metrics::payload_moves`]): the final consumer of a payload moves
//! it out, earlier shared consumers clone, and deliveries to crashed
//! receivers never touch it. Cross-shard broadcasts import **one**
//! clone per destination shard into that shard's arena at schedule
//! time — shared by refcount among the shard's deliveries — so a
//! worker never reads another shard's in-flight entries. The queue
//! core itself is selectable per [`SimBuilder::queue_core`]; see
//! [`super::queue`] for the two implementations.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Barrier, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::{NodeId, Slot};
use crate::mac::{Admission, BcastLedger, LedgerShardView};
use crate::msg::Payload;
use crate::proc::{Context, Decision, Process, Value};
use crate::topo::unreliable::UnreliableOverlay;
use crate::topo::Topology;

use super::arena::{PayloadArena, PayloadHandle};
use super::config::EngineConfig;
use super::crash::{CrashPlan, CrashSpec};
use super::event::{BcastId, EventClass, EventKind};
use super::queue::{EventId, EventQueue, QueueCoreKind};
use super::sched::random::RandomScheduler;
use super::sched::Scheduler;
use super::shard::{MailEntry, Mailbox, ShardMap, WindowBatch};
use super::time::Time;
use super::trace::{Metrics, Trace, TraceEvent};

/// Why an execution stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Every non-crashed node has decided.
    AllDecided,
    /// No events remain (the algorithm went quiescent without all
    /// nodes deciding).
    Quiescent,
    /// The virtual-time horizon was reached.
    MaxTime,
    /// The event-count safety limit was reached.
    EventLimit,
}

/// Summary of a completed [`Sim::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Virtual time when it stopped.
    pub end_time: Time,
    /// Per-slot decisions (`None` for undecided or crashed-undecided).
    pub decisions: Vec<Option<Decision>>,
    /// Aggregate counters.
    pub metrics: Metrics,
}

impl RunReport {
    /// `true` when the run ended with every non-crashed node decided.
    pub fn all_decided(&self) -> bool {
        self.outcome == RunOutcome::AllDecided
    }

    /// The distinct decided values, sorted.
    pub fn decided_values(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self.decisions.iter().flatten().map(|d| d.value).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// The common decided value, if all deciders agree and at least one
    /// node decided.
    pub fn agreement_value(&self) -> Option<Value> {
        match self.decided_values().as_slice() {
            [v] => Some(*v),
            _ => None,
        }
    }

    /// Latest decision time among deciders.
    pub fn max_decision_time(&self) -> Option<Time> {
        self.decisions.iter().flatten().map(|d| d.time).max()
    }

    /// Earliest decision time among deciders.
    pub fn min_decision_time(&self) -> Option<Time> {
        self.decisions.iter().flatten().map(|d| d.time).min()
    }
}

/// Builder for a [`Sim`].
pub struct SimBuilder<P: Process> {
    topo: Topology,
    procs: Vec<P>,
    ids: Vec<NodeId>,
    scheduler: Box<dyn Scheduler>,
    cfg: EngineConfig,
    max_time: Time,
    max_events: u64,
    stop_when_all_decided: bool,
    message_id_budget: Option<usize>,
    trace_enabled: bool,
    unreliable: Option<(UnreliableOverlay, f64)>,
    pool_workers: Option<usize>,
}

impl<P: Process> SimBuilder<P> {
    /// Starts a builder, constructing one process per topology slot via
    /// `init`.
    ///
    /// Defaults: ids equal to slot indices, a seeded
    /// [`RandomScheduler`] with `F_ack = 8`, a large time horizon,
    /// stop-on-all-decided, no id-budget enforcement, tracing off, and
    /// the engine configuration from [`EngineConfig::from_env`] — seed
    /// 0, no crashes, and the queue core / shard count / worker-thread
    /// budget / window batch named by `AMACL_QUEUE_CORE` /
    /// `AMACL_SHARDS` / `AMACL_THREADS` / `AMACL_WINDOW_BATCH` (heap /
    /// serial / single-threaded / auto when unset).
    pub fn new(topo: Topology, mut init: impl FnMut(Slot) -> P) -> Self {
        let n = topo.len();
        let procs: Vec<P> = (0..n).map(|i| init(Slot(i))).collect();
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u64)).collect();
        Self {
            topo,
            procs,
            ids,
            scheduler: Box::new(RandomScheduler::new(8, 0)),
            cfg: EngineConfig::from_env(),
            max_time: Time(10_000_000),
            max_events: 200_000_000,
            stop_when_all_decided: true,
            message_id_budget: None,
            trace_enabled: false,
            unreliable: None,
            pool_workers: None,
        }
    }

    /// Replaces the whole engine configuration — seed, queue core,
    /// shards, threads, window batch, and crash plan — in one call.
    /// The individual fluent setters ([`seed`](Self::seed),
    /// [`queue_core`](Self::queue_core), [`shards`](Self::shards),
    /// [`threads`](Self::threads),
    /// [`window_batch`](Self::window_batch),
    /// [`crashes`](Self::crashes)) are thin delegates onto the same
    /// stored [`EngineConfig`], so the two styles compose: later calls
    /// win knob by knob.
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the message scheduler (the model's adversary).
    pub fn scheduler(mut self, s: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(s);
        self
    }

    /// Selects the event-queue core (heap or calendar). The two cores
    /// are observably identical — same traces, same reports — so this
    /// is purely a performance knob; see [`QueueCoreKind`].
    pub fn queue_core(mut self, kind: QueueCoreKind) -> Self {
        self.cfg = self.cfg.queue_core(kind);
        self
    }

    /// Partitions the execution across `shards` worker shards driven
    /// by the conservative time-window coordinator (clamped to the
    /// node count; see [`super::shard`] for the protocol). Sharding is
    /// observably identity-preserving — traces and reports are
    /// byte-identical at every shard count — so, like the queue core,
    /// this is purely an execution-architecture knob.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg = self.cfg.shards(shards);
        self
    }

    /// Runs the sharded coordinator's windows with up to `threads`
    /// worker threads — one worker per shard, so the effective
    /// parallelism is `min(threads, shards)`. `threads == 1` (the
    /// default unless `AMACL_THREADS` says otherwise) keeps the
    /// merged single-threaded window drain; with one shard the knob
    /// has no effect. Like sharding itself, threading is observably
    /// identity-preserving: traces and reports stay byte-identical to
    /// the serial engine at every `(shards, threads)` combination.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg = self.cfg.threads(threads);
        self
    }

    /// Sets how many consecutive conservative windows the persistent
    /// worker pool may batch per wakeup (a superstep); see
    /// [`WindowBatch`]. Pure wake-policy: the window sequence and all
    /// deterministic counters are byte-identical at every batch size.
    pub fn window_batch(mut self, batch: WindowBatch) -> Self {
        self.cfg = self.cfg.window_batch(batch);
        self
    }

    /// Test hook: forces the persistent pool to spawn exactly `n`
    /// workers (clamped to the shard count), bypassing the
    /// `available_parallelism` cap. Lets pool-protocol tests exercise
    /// real parked workers on single-core machines.
    #[doc(hidden)]
    pub fn debug_force_pool_workers(mut self, n: usize) -> Self {
        self.pool_workers = Some(n);
        self
    }

    /// Assigns custom unique node ids (length must equal `n`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or duplicate ids.
    pub fn ids(mut self, ids: Vec<NodeId>) -> Self {
        assert_eq!(ids.len(), self.topo.len(), "one id per slot");
        let mut sorted: Vec<_> = ids.iter().map(|i| i.raw()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be unique");
        self.ids = ids;
        self
    }

    /// Schedules crash failures.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.cfg = self.cfg.crash_plan(plan);
        self
    }

    /// Sets the virtual-time horizon.
    pub fn max_time(mut self, t: Time) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the event-count safety limit.
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Whether [`Sim::run`] stops as soon as all non-crashed nodes have
    /// decided (default `true`).
    pub fn stop_when_all_decided(mut self, stop: bool) -> Self {
        self.stop_when_all_decided = stop;
        self
    }

    /// Enforces the model's `O(1)`-ids-per-message restriction: any
    /// broadcast whose [`Payload::id_count`] exceeds `budget` panics.
    pub fn message_id_budget(mut self, budget: usize) -> Self {
        self.message_id_budget = Some(budget);
        self
    }

    /// Enables event tracing.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace_enabled = enabled;
        self
    }

    /// Seeds per-node randomness and unreliable-overlay sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg = self.cfg.seed(seed);
        self
    }

    /// Adds an unreliable-link overlay: each broadcast is additionally
    /// delivered over each overlay edge with probability `p`, at an
    /// arbitrary time within the `F_ack` window, without the ack ever
    /// waiting for it (the dual-graph model variant).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn unreliable(mut self, overlay: UnreliableOverlay, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.unreliable = Some((overlay, p));
        self
    }

    /// Builds the simulator (processes have not started yet; the first
    /// call to [`Sim::run`] or [`Sim::run_until`] starts them).
    ///
    /// # Panics
    ///
    /// Panics when more than one shard is requested and the scheduler
    /// declares zero lookahead ([`Scheduler::min_delay`] returning 0):
    /// a conservative sharded engine cannot advance on zero lookahead
    /// — rejecting the configuration up front beats deadlocking in the
    /// window loop.
    pub fn build(self) -> Sim<P> {
        let n = self.topo.len();
        let shard_map = ShardMap::new(n, self.cfg.shards.get());
        let nshards = shard_map.shards();
        // The conservative window length. An unreliable overlay
        // schedules extra deliveries as little as one tick out,
        // regardless of what the scheduler promises, so it clamps the
        // lookahead to the model floor.
        let lookahead = if self.unreliable.is_some() {
            self.scheduler.min_delay().min(1)
        } else {
            self.scheduler.min_delay()
        };
        if nshards > 1 {
            assert!(
                lookahead >= 1,
                "scheduler declares zero lookahead (min_delay() == 0): the conservative \
                 sharded engine cannot advance a time window on it; run with shards(1) \
                 or fix the scheduler's min_delay()"
            );
        }
        let mut ledger = BcastLedger::new(n);
        let mut queues: Vec<EventQueue<EventKind>> = (0..nshards)
            .map(|_| EventQueue::with_core(self.cfg.queue_core))
            .collect();
        let mut next_event_id = 0u64;
        let mut undecided = n;
        for spec in self.cfg.crash_plan.specs() {
            match *spec {
                CrashSpec::AtTime { slot, time } => {
                    if time == Time::ZERO {
                        ledger.mark_crashed(slot.0);
                        undecided -= 1;
                    } else {
                        // Ids come from the engine-global counter in
                        // spec order, exactly matching the serial
                        // single-queue push order.
                        let id = EventId(next_event_id);
                        next_event_id += 1;
                        queues[shard_map.shard_of(slot.0)].push_at(
                            time,
                            EventClass::Crash as u8,
                            id,
                            EventKind::Crash { node: slot },
                        );
                    }
                }
                CrashSpec::MidBroadcast {
                    slot,
                    nth_broadcast,
                    delivered,
                } => {
                    ledger.arm_watch(slot.0, nth_broadcast, delivered);
                }
            }
        }
        let seed = self.cfg.seed;
        let mut rngs = (0..n).map(|i| {
            SmallRng::seed_from_u64(
                seed ^ (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(1),
            )
        });
        let mut procs = self.procs.into_iter();
        let mut queues = queues.drain(..);
        let cells: Vec<ShardCell<P>> = (0..nshards)
            .map(|shard| {
                let r = shard_map.slots_of(shard);
                let len = r.end - r.start;
                ShardCell {
                    shard,
                    base: r.start,
                    queue: queues.next().expect("one queue per shard"),
                    inbox: (0..nshards).map(|_| Mailbox::new()).collect(),
                    imported: HashMap::new(),
                    arena: PayloadArena::new(),
                    pending: Vec::new(),
                    crashed: (r.start..r.end).map(|i| ledger.is_crashed(i)).collect(),
                    procs: procs.by_ref().take(len).collect(),
                    decisions: vec![None; len],
                    ts_seqs: vec![0; len],
                    rngs: rngs.by_ref().take(len).collect(),
                    outstanding: vec![None; len],
                    inflight: (0..len).map(|_| Vec::new()).collect(),
                    scratch: ShardScratch::default(),
                    out: ShardWindowOut::default(),
                }
            })
            .collect();
        let mut metrics = Metrics::new(n);
        metrics.per_shard_events = vec![0; nshards];
        Sim {
            sh: Shared {
                topo: self.topo,
                ids: self.ids,
                shard_map,
                lookahead,
                threads: self.cfg.threads.get(),
                window_batch: self.cfg.window_batch,
                pool_workers: self.pool_workers,
                max_time: self.max_time,
                max_events: self.max_events,
                message_id_budget: self.message_id_budget,
            },
            core: Core {
                scheduler: self.scheduler,
                next_event_id,
                mailbox_cancels: 0,
                current_shard: 0,
                ledger,
                now: Time::ZERO,
                started: false,
                bcast_seq: 0,
                events_pool: Vec::new(),
                neighbor_scratch: Vec::new(),
                import_scratch: vec![None; nshards],
                defer_local_pushes: false,
                engine_rng: SmallRng::seed_from_u64(seed.wrapping_add(0xA5A5_5A5A)),
                undecided,
                stop_when_all_decided: self.stop_when_all_decided,
                trace: Trace::new(self.trace_enabled),
                metrics,
                unreliable: self.unreliable,
            },
            cells,
        }
    }
}

/// One in-flight broadcast: its id, the arena handle of the shared
/// payload (the refcount lives with the payload in the sender shard's
/// [`PayloadArena`]), and its events' `(id, destination shard)` pairs
/// (for bulk cancellation when the sender crashes — the shard routes
/// the cancel to the right queue or mailbox). The entry exists exactly
/// as long as the arena slot is live: the step that consumes the last
/// own-shard reference removes both.
struct InFlight {
    bcast: u64,
    payload: PayloadHandle,
    events: Vec<(EventId, u32)>,
}

/// Placeholder a parallel-window worker installs in `outstanding`
/// when a callback broadcasts: it keeps the node reading busy for
/// later same-window callbacks, and the ordered commit replaces it
/// with the real (serially allocated) [`BcastId`].
const DEFERRED_BCAST: BcastId = BcastId(u64::MAX);

/// What one parallel-window step defers to the ordered commit: its
/// global ordering key, the broadcast the callback requested (if
/// any), and the step's span in the shard's trace buffer. Steps with
/// neither are never recorded — the commit has nothing to do for
/// them.
struct StepRec<M> {
    key: (Time, u8, u64),
    broadcast: Option<(Slot, M)>,
    trace_start: usize,
    trace_end: usize,
}

/// Per-shard scratch buffers for parallel windows, reused across
/// windows so steady-state stepping allocates nothing.
struct ShardScratch<M> {
    /// Events drained for the current window, in shard-local key
    /// order, with their full ordering keys (needed both for the
    /// commit merge and to push them back verbatim on gate failure).
    drained: Vec<((Time, u8, u64), EventKind)>,
    /// Step records for the ordered commit (key-sorted by
    /// construction).
    records: Vec<StepRec<M>>,
    /// Flat per-shard trace events; records index spans into it.
    trace_buf: Vec<TraceEvent>,
    /// Shard-local dedup flags for the distinct-undecided-targets
    /// gate statistic (indexed by slot − base).
    touched: Vec<bool>,
    /// Which `touched` flags are set (for O(touched) clearing).
    touched_list: Vec<usize>,
}

impl<M> Default for ShardScratch<M> {
    fn default() -> Self {
        Self {
            drained: Vec::new(),
            records: Vec::new(),
            trace_buf: Vec::new(),
            touched: Vec::new(),
            touched_list: Vec::new(),
        }
    }
}

/// Order-independent counters one shard's worker accumulates over a
/// window; folded into [`Metrics`] after the window's last barrier
/// (sums and maxes commute, so no ordering is needed).
#[derive(Default)]
struct ShardWindowOut {
    events: u64,
    deliveries: u64,
    unreliable_deliveries: u64,
    acks: u64,
    busy_discards: u64,
    decided: u64,
    /// Time of the last (= latest) event this shard processed.
    last_time: Option<Time>,
    /// Wall-clock ns spent flushing, draining, and stepping.
    busy_ns: u64,
}

/// Immutable context shared by every parallel-window worker.
#[derive(Clone, Copy)]
struct WorkerEnv<'a> {
    ids: &'a [NodeId],
    shard_map: &'a ShardMap,
    budget: Option<usize>,
    trace_enabled: bool,
}

/// Everything one shard owns: its event queue, inbound mailbox row,
/// payload arena, imported-payload table, deferred local pushes, and
/// the shard's slice of every slot-indexed hot table (`slot − base`
/// indexes the vectors). The engine is a `Vec<ShardCell>` plus the
/// global [`Core`]; during a parallel window each cell sits behind a
/// mutex and a worker locks exactly its own cells — the type system
/// and the lock discipline together enforce that a worker cannot
/// reach another shard's state even by bug.
struct ShardCell<P: Process> {
    shard: usize,
    /// First slot of the shard's contiguous range.
    base: usize,
    queue: EventQueue<EventKind>,
    /// Inbound mailbox row, indexed by *source* shard (entry `shard`
    /// itself stays empty — own-shard traffic goes straight to the
    /// queue or through `pending`).
    inbox: Vec<Mailbox<EventKind>>,
    /// Imported cross-shard payloads: event id → handle into this
    /// shard's arena. A cross-shard `Receive` takes its payload from
    /// here instead of the sender's in-flight entry, so a worker
    /// never reads another shard's tables; a broadcast clones its
    /// payload **once per destination shard** (not per event) and the
    /// shard's deliveries share the slot by refcount. Serial runs
    /// never populate it.
    imported: HashMap<EventId, PayloadHandle>,
    /// This shard's payload arena — its own senders' in-flight
    /// payloads plus its imported cross-shard clones. All inserts
    /// happen on the single-threaded coordinator paths; a parallel
    /// window's worker only releases references on its own arena.
    arena: PayloadArena<P::Msg>,
    /// Own-shard queue pushes deferred by a parallel window's ordered
    /// commit; absorbed at the next window boundary (worker phase-1
    /// or the coordinator's pre-merged flush).
    pending: Vec<MailEntry<EventKind>>,
    /// Engine-owned mirror of the ledger crash flags for this shard's
    /// slots (windows only run in parallel when the flags are frozen,
    /// so workers read the mirror instead of the shared ledger).
    crashed: Vec<bool>,
    procs: Vec<P>,
    decisions: Vec<Option<Decision>>,
    ts_seqs: Vec<u64>,
    rngs: Vec<SmallRng>,
    outstanding: Vec<Option<BcastId>>,
    /// In-flight broadcasts, densely indexed by the *sender's* local
    /// slot. Each node has at most one outstanding broadcast, so the
    /// inner vector holds one entry in the common case; a second
    /// appears only while an already-acked broadcast still has
    /// unreliable-overlay deliveries pending. Lookups are positional
    /// scans of these tiny vectors — no hashing on the hot path.
    inflight: Vec<Vec<InFlight>>,
    /// Worker scratch (drained events, step records, trace spans),
    /// reused across parallel windows.
    scratch: ShardScratch<P::Msg>,
    /// The current window's order-independent counters.
    out: ShardWindowOut,
}

impl<P: Process> ShardCell<P> {
    /// Phase 1: flush inbound mail and deferred local pushes into the
    /// shard queue, drain everything due in the window, and publish
    /// the statistics the commit gate needs.
    fn phase1(
        &mut self,
        window_end: Time,
        flush_edges: &AtomicU64,
        total_drained: &AtomicU64,
        any_crash: &AtomicBool,
        undecided_touched: &AtomicU64,
    ) {
        let t0 = Instant::now();
        let queue = &mut self.queue;
        for mb in &mut self.inbox {
            if mb.is_empty() {
                continue;
            }
            flush_edges.fetch_add(1, Ordering::Relaxed);
            mb.drain_into(|e: MailEntry<EventKind>| {
                queue.push_at(e.time, e.class, e.id, e.payload);
            });
        }
        for e in self.pending.drain(..) {
            queue.push_at(e.time, e.class, e.id, e.payload);
        }
        while let Some(key) = queue.peek_key() {
            if key.0 > window_end {
                break;
            }
            let ev = queue.pop().expect("peeked");
            self.scratch.drained.push((key, ev.payload));
        }
        // Gate statistics. Event targets are always shard-local, so
        // the per-shard distinct-undecided-target counts sum to the
        // exact global figure.
        if self.scratch.touched.len() < self.decisions.len() {
            self.scratch.touched.resize(self.decisions.len(), false);
        }
        let mut crash = false;
        let mut fresh = 0u64;
        for (_, ev) in &self.scratch.drained {
            if matches!(ev, EventKind::Crash { .. }) {
                crash = true;
                continue;
            }
            let li = ev.target().0 - self.base;
            if self.decisions[li].is_none() && !self.crashed[li] && !self.scratch.touched[li] {
                self.scratch.touched[li] = true;
                self.scratch.touched_list.push(li);
                fresh += 1;
            }
        }
        for &li in &self.scratch.touched_list {
            self.scratch.touched[li] = false;
        }
        self.scratch.touched_list.clear();
        if crash {
            any_crash.store(true, Ordering::Relaxed);
        }
        total_drained.fetch_add(self.scratch.drained.len() as u64, Ordering::Relaxed);
        undecided_touched.fetch_add(fresh, Ordering::Relaxed);
        self.out.busy_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Phase 2, gate passed: run every drained event in shard-local
    /// key order, accumulating step records for the ordered commit.
    fn phase2_commit(&mut self, env: &WorkerEnv<'_>) {
        let t0 = Instant::now();
        let mut drained = std::mem::take(&mut self.scratch.drained);
        for (key, ev) in drained.drain(..) {
            self.run_step(key, ev, env);
        }
        self.scratch.drained = drained;
        self.out.busy_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Phase 2, gate failed: push every drained event back, keys and
    /// ids intact, so the merged fallback replays the window in the
    /// exact serial order.
    fn phase2_abort(&mut self) {
        let t0 = Instant::now();
        for ((time, class, id), ev) in self.scratch.drained.drain(..) {
            self.queue.push_at(time, class, EventId(id), ev);
        }
        self.out.busy_ns += t0.elapsed().as_nanos() as u64;
    }

    /// The shard-local half of one engine step — mirrors
    /// `handle_receive`/`handle_ack`/`dispatch` against the shard's
    /// tables, deferring broadcast scheduling and trace assembly to
    /// the ordered commit via a [`StepRec`].
    fn run_step(&mut self, key: (Time, u8, u64), ev: EventKind, env: &WorkerEnv<'_>) {
        let time = key.0;
        self.out.events += 1;
        self.out.last_time = Some(time);
        let trace_start = self.scratch.trace_buf.len();
        let broadcast = match ev {
            EventKind::Crash { .. } => unreachable!("crash events force the merged fallback"),
            EventKind::Receive {
                to,
                from,
                bcast,
                unreliable,
            } => {
                let to_crashed = self.crashed[to.0 - self.base];
                let msg = if env.shard_map.shard_of(from.0) == self.shard {
                    let li = from.0 - self.base;
                    let idx = self.inflight[li]
                        .iter()
                        .position(|e| e.bcast == bcast.0)
                        .expect("message for pending delivery");
                    let h = self.inflight[li][idx].payload;
                    let (msg, last) = if to_crashed {
                        (None, self.arena.discard(h))
                    } else {
                        let (m, last) = self.arena.release(h);
                        (Some(m), last)
                    };
                    if last {
                        // Final shard-local reference: the arena slot
                        // is free and the entry retires with it. (The
                        // events vec is dropped, not pooled — the pool
                        // lives with the coordinator.)
                        self.inflight[li].swap_remove(idx);
                    }
                    msg
                } else {
                    let h = self
                        .imported
                        .remove(&EventId(key.2))
                        .expect("imported payload for cross-shard delivery");
                    if to_crashed {
                        self.arena.discard(h);
                        None
                    } else {
                        Some(self.arena.release(h).0)
                    }
                };
                if to_crashed {
                    // `note_delivery` is skipped: windows only run in
                    // parallel when no mid-broadcast crash machinery
                    // is armed, which makes it a guaranteed no-op.
                    return;
                }
                let msg = msg.expect("payload for a live receiver");
                if unreliable {
                    self.out.unreliable_deliveries += 1;
                } else {
                    self.out.deliveries += 1;
                }
                if env.trace_enabled {
                    self.scratch.trace_buf.push(TraceEvent::Deliver {
                        time,
                        from,
                        to,
                        unreliable,
                    });
                }
                self.dispatch_step(to, time, env, |p, ctx| p.on_receive(msg, ctx))
            }
            EventKind::Ack { node, bcast } => {
                let li = node.0 - self.base;
                if let Some(idx) = self.inflight[li].iter().position(|e| e.bcast == bcast.0) {
                    let h = self.inflight[li][idx].payload;
                    if self.arena.discard(h) {
                        self.inflight[li].swap_remove(idx);
                    }
                }
                debug_assert!(!self.crashed[li], "ack for a crashed node");
                debug_assert_eq!(self.outstanding[li], Some(bcast));
                self.outstanding[li] = None;
                self.out.acks += 1;
                if env.trace_enabled {
                    self.scratch
                        .trace_buf
                        .push(TraceEvent::Ack { time, slot: node });
                }
                self.dispatch_step(node, time, env, |p, ctx| p.on_ack(ctx))
            }
        };
        let trace_end = self.scratch.trace_buf.len();
        if broadcast.is_some() || trace_end > trace_start {
            self.scratch.records.push(StepRec {
                key,
                broadcast,
                trace_start,
                trace_end,
            });
        }
    }

    /// Runs one process callback against the shard's tables; returns
    /// the broadcast it requested (if any) for the ordered commit.
    fn dispatch_step<F>(
        &mut self,
        slot: Slot,
        time: Time,
        env: &WorkerEnv<'_>,
        f: F,
    ) -> Option<(Slot, <P as Process>::Msg)>
    where
        F: FnOnce(&mut P, &mut Context<'_, <P as Process>::Msg>),
    {
        let li = slot.0 - self.base;
        let had_decision = self.decisions[li].is_some();
        let mut outbox: Option<<P as Process>::Msg> = None;
        {
            let mut ctx = Context {
                id: env.ids[slot.0],
                now: time,
                busy: self.outstanding[li].is_some(),
                outbox: &mut outbox,
                decision: &mut self.decisions[li],
                ts_seq: &mut self.ts_seqs[li],
                busy_discards: &mut self.out.busy_discards,
                rng: &mut self.rngs[li],
            };
            f(&mut self.procs[li], &mut ctx);
        }
        let broadcast = outbox.map(|m| {
            let ids = m.id_count();
            if let Some(budget) = env.budget {
                assert!(
                    ids <= budget,
                    "message from {} carries {ids} ids, exceeding the O(1) budget of {budget}: {m:?}",
                    env.ids[slot.0],
                );
            }
            // Mirror the serial trace order (Broadcast precedes
            // Decide) and leave the busy placeholder so later
            // same-window callbacks on this node still read busy.
            if env.trace_enabled {
                self.scratch
                    .trace_buf
                    .push(TraceEvent::Broadcast { time, slot, ids });
            }
            self.outstanding[li] = Some(DEFERRED_BCAST);
            (slot, m)
        });
        if !had_decision {
            if let Some(d) = self.decisions[li] {
                if env.trace_enabled {
                    self.scratch.trace_buf.push(TraceEvent::Decide {
                        time: d.time,
                        slot,
                        value: d.value,
                    });
                }
                self.out.decided += 1;
            }
        }
        broadcast
    }
}

/// Windows whose predecessor drained fewer events than this are
/// stepped inline by the coordinator (the merged drain) without
/// waking the worker pool: tiny windows dominate at small `n`, and a
/// merged drain is cheaper than a barrier round. Pure wake-policy —
/// the merged and parallel paths produce identical executions
/// ([`Metrics::serial_window_shortcuts`] counts the skips).
const SERIAL_WINDOW_MIN_EVENTS: u64 = 128;

/// Pool command published before the first barrier of a round: run a
/// window ([`CMD_WINDOW`]), park until the next superstep
/// ([`CMD_PARK`]), or exit ([`CMD_SHUTDOWN`]).
const CMD_WINDOW: u8 = 0;
const CMD_PARK: u8 = 1;
const CMD_SHUTDOWN: u8 = 2;

/// Locks a mutex, absorbing poisoning: a worker that panicked is
/// already being reported through [`PoolCtl::panic`] and the whole
/// run is about to unwind, so the guard's data is never trusted past
/// that — refusing the lock would just turn one panic into a
/// deadlock at the next barrier.
fn plock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared coordination state for one `run`/`run_until` call's
/// persistent worker pool.
///
/// Protocol: workers park on `epoch_cv` until the coordinator bumps
/// `epoch` (opening a superstep). Within a superstep, each window is
/// three barrier rounds — descriptor published / gate statistics
/// complete / phases done — all `cmd == CMD_WINDOW`; the coordinator
/// ends the superstep with a two-round `CMD_PARK` handshake (publish,
/// then a worker acknowledgement that keeps `cmd` stable until every
/// worker has read it — only then may the next superstep's
/// `CMD_WINDOW` store overwrite it) and ends the run with a
/// `CMD_SHUTDOWN` round (or, for parked workers, the `shutdown` flag
/// plus a wakeup; after `CMD_SHUTDOWN` the command is never
/// overwritten, so no acknowledgement is needed). A worker that panics stashes the
/// payload in `panic` and keeps hitting barriers so nobody deadlocks;
/// the coordinator re-raises it after the window.
struct PoolCtl {
    barrier: Barrier,
    cmd: AtomicU8,
    /// The open window's end (ticks), published before the first
    /// barrier.
    window_end: AtomicU64,
    /// Gate inputs published by the coordinator with the descriptor.
    events_before: AtomicU64,
    undecided_before: AtomicU64,
    /// Gate statistics accumulated by workers during phase 1.
    total_drained: AtomicU64,
    undecided_touched: AtomicU64,
    flush_edges: AtomicU64,
    any_crash: AtomicBool,
    /// Read by parked workers (under `epoch`) to exit.
    shutdown: AtomicBool,
    /// Superstep stamp; bumping it (under the mutex, with a
    /// `notify_all`) wakes the pool. Checking the stamp under the
    /// same mutex makes lost wakeups impossible.
    epoch: Mutex<u64>,
    epoch_cv: Condvar,
    /// First panic payload caught worker-side this window.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// The persistent pool worker: parks between supersteps, and inside
/// one runs barrier-paced windows over its group of shard cells. All
/// atomics use relaxed ordering — the barriers provide every
/// happens-before edge the protocol needs. Panics from shard phases
/// (e.g. the message-id-budget assertion) are caught, stashed in
/// [`PoolCtl::panic`], and re-raised by the coordinator: a worker
/// that unwound past a barrier would deadlock the pool.
fn pool_worker<P: Process>(
    ctl: &PoolCtl,
    cells: &[Mutex<&mut ShardCell<P>>],
    env: WorkerEnv<'_>,
    max_events: u64,
    stop_all: bool,
) {
    let mut my_epoch = 0u64;
    loop {
        // Park until the next superstep opens (or shutdown).
        {
            let mut e = plock(&ctl.epoch);
            while *e == my_epoch && !ctl.shutdown.load(Ordering::Relaxed) {
                e = ctl.epoch_cv.wait(e).unwrap_or_else(|p| p.into_inner());
            }
            if ctl.shutdown.load(Ordering::Relaxed) {
                return;
            }
            my_epoch = *e;
        }
        loop {
            ctl.barrier.wait(); // W0: window descriptor published
            match ctl.cmd.load(Ordering::Relaxed) {
                CMD_PARK => {
                    // Acknowledge before parking: the coordinator may
                    // not overwrite `cmd` (for the next superstep's
                    // first window) until every worker has read the
                    // park command — a worker that missed it would
                    // stay in the window loop one barrier round out
                    // of step with the rest of the pool.
                    ctl.barrier.wait();
                    break;
                }
                CMD_SHUTDOWN => return,
                _ => {}
            }
            let window_end = Time(ctl.window_end.load(Ordering::Relaxed));
            let r = catch_unwind(AssertUnwindSafe(|| {
                for cell in cells {
                    plock(cell).phase1(
                        window_end,
                        &ctl.flush_edges,
                        &ctl.total_drained,
                        &ctl.any_crash,
                        &ctl.undecided_touched,
                    );
                }
            }));
            if let Err(p) = r {
                plock(&ctl.panic).get_or_insert(p);
            }
            ctl.barrier.wait(); // W1: gate statistics complete
                                // Every worker evaluates the identical gate from the
                                // now-complete shared statistics.
            let commit_ok = !ctl.any_crash.load(Ordering::Relaxed)
                && ctl.events_before.load(Ordering::Relaxed)
                    + ctl.total_drained.load(Ordering::Relaxed)
                    <= max_events
                && (!stop_all
                    || ctl.undecided_touched.load(Ordering::Relaxed)
                        < ctl.undecided_before.load(Ordering::Relaxed));
            let r = catch_unwind(AssertUnwindSafe(|| {
                for cell in cells {
                    let mut cell = plock(cell);
                    if commit_ok {
                        cell.phase2_commit(&env);
                    } else {
                        cell.phase2_abort();
                    }
                }
            }));
            if let Err(p) = r {
                plock(&ctl.panic).get_or_insert(p);
            }
            ctl.barrier.wait(); // W2: phases done; coordinator commits
        }
    }
}

/// The engine's execution-wide knobs and lookup tables — everything
/// immutable while a run is in flight, so the coordinator and the
/// pool workers can share it by plain reference.
struct Shared {
    topo: Topology,
    ids: Vec<NodeId>,
    /// Balanced block partition of slots onto shards.
    shard_map: ShardMap,
    /// The scheduler's declared minimum delay — the conservative
    /// window length.
    lookahead: u64,
    /// Worker-thread budget for parallel window stepping; effective
    /// parallelism is `min(threads, shards)`, and 1 keeps the merged
    /// single-threaded drain.
    threads: usize,
    /// Superstep batch policy for the persistent pool.
    window_batch: WindowBatch,
    /// Test hook: forced pool size (bypasses the
    /// `available_parallelism` cap).
    pool_workers: Option<usize>,
    max_time: Time,
    max_events: u64,
    message_id_budget: Option<usize>,
}

/// The engine's global mutable state — everything that is *not*
/// owned by a single shard. Only the single-threaded coordinator
/// paths touch it; parallel-window workers see shard cells only.
struct Core {
    scheduler: Box<dyn Scheduler>,
    /// Engine-global event-id allocator: ids double as the
    /// deterministic `(time, class, seq)` tie-break, so they must be
    /// allocated in scheduling order across all shards.
    next_event_id: u64,
    /// Cancellations that caught their event in a mailbox (in transit
    /// between shards); folded into `queue_cancellations`.
    mailbox_cancels: u64,
    /// Shard whose event is currently being processed; routes the
    /// events that processing schedules.
    current_shard: u32,
    ledger: BcastLedger,
    now: Time,
    started: bool,
    bcast_seq: u64,
    /// Recycled event-id vectors (the per-broadcast cancellation
    /// lists), so steady-state broadcasting allocates nothing.
    events_pool: Vec<Vec<(EventId, u32)>>,
    /// Recycled neighbor-list buffer for `start_broadcast`.
    neighbor_scratch: Vec<Slot>,
    /// Per-destination-shard scratch for `commit_broadcast_events`:
    /// the arena handle this broadcast already imported into each
    /// shard (so later deliveries to the same shard retain instead of
    /// re-cloning). Cleared after every broadcast.
    import_scratch: Vec<Option<PayloadHandle>>,
    /// True only while the ordered commit of a parallel window runs:
    /// routes own-shard pushes into the cells' `pending` staging.
    defer_local_pushes: bool,
    engine_rng: SmallRng,
    undecided: usize,
    stop_when_all_decided: bool,
    trace: Trace,
    metrics: Metrics,
    unreliable: Option<(UnreliableOverlay, f64)>,
}

/// A running (or runnable) simulation: the immutable `Shared`
/// tables, the global `Core`, and one `ShardCell` per shard
/// (`cells.len() == 1` is the serial fast path — no routing, no
/// windows).
pub struct Sim<P: Process> {
    sh: Shared,
    core: Core,
    cells: Vec<ShardCell<P>>,
}

/// One borrow of the whole engine: the immutable shared tables, the
/// global core, and `&mut` access to every shard cell. All engine
/// logic lives here; [`Sim`] entry points construct one via
/// [`Sim::exec`], and the pooled coordinator constructs them over
/// lock guards between barrier rounds. The indirection (`&mut [&mut
/// ShardCell]`) is what lets the same methods run over plain cells
/// and over locked ones.
struct Exec<'e, 'c, P: Process> {
    sh: &'e Shared,
    core: &'e mut Core,
    cells: &'e mut [&'c mut ShardCell<P>],
}

impl<P: Process> Sim<P> {
    /// Runs `f` over an [`Exec`] borrowing this simulation whole.
    fn exec<R>(&mut self, f: impl FnOnce(&mut Exec<'_, '_, P>) -> R) -> R {
        let mut refs: Vec<&mut ShardCell<P>> = self.cells.iter_mut().collect();
        f(&mut Exec {
            sh: &self.sh,
            core: &mut self.core,
            cells: &mut refs,
        })
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.sh.topo
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// The id assigned to `slot`.
    pub fn id_of(&self, slot: Slot) -> NodeId {
        self.sh.ids[slot.0]
    }

    /// Immutable access to a process (for state inspection between
    /// [`Sim::run_until`] calls, e.g. indistinguishability checks).
    pub fn process(&self, slot: Slot) -> &P {
        let cell = &self.cells[self.sh.shard_map.shard_of(slot.0)];
        &cell.procs[slot.0 - cell.base]
    }

    /// Whether `slot` has crashed.
    pub fn is_crashed(&self, slot: Slot) -> bool {
        self.core.ledger.is_crashed(slot.0)
    }

    /// Per-slot decisions so far, gathered across shards in slot
    /// order.
    pub fn decisions(&self) -> Vec<Option<Decision>> {
        self.cells
            .iter()
            .flat_map(|c| c.decisions.iter().copied())
            .collect()
    }

    /// Counters so far.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// The event trace (empty unless enabled at build time).
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Number of shards this simulation runs on (1 = serial).
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of worker threads parallel windows may use — the
    /// configured budget capped at the shard count (1 = merged
    /// single-threaded windows).
    pub fn thread_count(&self) -> usize {
        self.sh.threads.min(self.cells.len())
    }

    /// The conservative window length (the scheduler's declared
    /// minimum delay).
    pub fn lookahead(&self) -> u64 {
        self.sh.lookahead
    }

    /// The slot range shard `shard` owns.
    pub fn shard_slots(&self, shard: usize) -> std::ops::Range<usize> {
        self.sh.shard_map.slots_of(shard)
    }

    /// The ledger's shard-local summary for `shard` (crash/watch/
    /// obligation counts over its slot range) — the imbalance view.
    pub fn shard_ledger_view(&self, shard: usize) -> LedgerShardView {
        let range = self.sh.shard_map.slots_of(shard);
        self.core.ledger.shard_view(range.start, range.end)
    }

    /// `true` when every non-crashed node has decided.
    pub fn all_alive_decided(&self) -> bool {
        self.core.undecided == 0
    }

    /// Runs to completion and reports.
    pub fn run(&mut self) -> RunReport {
        let outcome = self.run_inner(None);
        RunReport {
            outcome,
            end_time: self.core.now,
            decisions: self.decisions(),
            metrics: self.core.metrics.clone(),
        }
    }

    /// Processes all events up to and including virtual time `until`,
    /// ignoring the stop-on-all-decided rule (used for lockstep
    /// inspection of executions).
    pub fn run_until(&mut self, until: Time) -> RunOutcome {
        let saved = self.core.stop_when_all_decided;
        self.core.stop_when_all_decided = false;
        let outcome = self.run_inner(Some(until));
        self.core.stop_when_all_decided = saved;
        if self.core.now < until {
            self.core.now = until;
        }
        outcome
    }

    /// Runs one external callback against a live node — the open-loop
    /// injection seam. Call only while the engine is *paused* between
    /// [`Sim::run_until`] calls; the callback runs at the current
    /// virtual time with a full [`Context`] (it may broadcast, decide,
    /// draw randomness), and any broadcast it requests is scheduled
    /// through the normal path — event ids from the engine-global
    /// counter, deliveries routed to shard queues or cross-shard
    /// mailboxes — so a fixed injection schedule stays byte-identical
    /// across queue cores, shard counts, and thread counts.
    ///
    /// On the first call (or the first `run*` call, whichever comes
    /// first) all processes are started. Injections into crashed nodes
    /// are ignored; returns `false` in that case and `true` when the
    /// callback ran.
    pub fn inject<F>(&mut self, slot: Slot, f: F) -> bool
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        if !self.core.started {
            self.exec(|ex| ex.start_procs());
        }
        if self.core.ledger.is_crashed(slot.0) {
            return false;
        }
        let shard = self.sh.shard_map.shard_of(slot.0) as u32;
        self.exec(|ex| {
            ex.core.current_shard = shard;
            ex.dispatch(slot, f);
        });
        true
    }

    fn run_inner(&mut self, until: Option<Time>) -> RunOutcome {
        let s = self.cells.len();
        // The pool only pays off with real hardware parallelism:
        // below two available cores every window would serialize on
        // one CPU anyway, so the merged inline loop (identical
        // execution, no barrier or wakeup cost) is strictly better.
        // The test hook bypasses the cap to exercise the pool
        // protocol deterministically on any machine.
        let nworkers = if s > 1 && self.sh.threads > 1 {
            match self.sh.pool_workers {
                Some(k) => k.clamp(1, s),
                None => self
                    .sh
                    .threads
                    .min(s)
                    .min(
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1),
                    )
                    .max(1),
            }
        } else {
            1
        };
        let outcome = if s == 1 {
            self.exec(|ex| ex.run_loop_serial(until))
        } else if nworkers > 1 {
            self.run_pooled(until, nworkers)
        } else {
            self.exec(|ex| ex.run_loop_sharded(until))
        };
        // Queue-core counters are folded into the metrics whenever the
        // loop yields, so reports always carry up-to-date figures. The
        // pushes figure is the engine-global allocator (every event
        // ever scheduled, on any shard); cancellations count tombstones
        // on every shard's queue plus events caught in transit in a
        // mailbox — together byte-identical to the serial figures.
        self.core.metrics.queue_pushes = self.core.next_event_id;
        self.core.metrics.queue_cancellations = self
            .cells
            .iter()
            .map(|c| c.queue.cancelled_total())
            .sum::<u64>()
            + self.core.mailbox_cancels;
        self.core.metrics.queue_bucket_overflows =
            self.cells.iter().map(|c| c.queue.bucket_overflows()).sum();
        // Payload-custody counters live in the per-shard arenas
        // (workers own theirs during parallel windows); assigned, not
        // accumulated, because the arenas count cumulatively.
        self.core.metrics.payload_clones = self.cells.iter().map(|c| c.arena.clones()).sum();
        self.core.metrics.payload_moves = self.cells.iter().map(|c| c.arena.moves()).sum();
        self.core.metrics.arena_bytes_peak = self.cells.iter().map(|c| c.arena.bytes_peak()).sum();
        outcome
    }
}

/// How one parallel-coordinator planning pass (run under all cell
/// locks) resolved: stop the run, a window already drained inline,
/// or a window to hand to the pool.
enum Plan {
    Stop(RunOutcome),
    Continue,
    Parallel {
        window_end: Time,
        events_before: u64,
        undecided_before: u64,
    },
}

impl<P: Process> Sim<P> {
    /// The persistent-pool parallel coordinator (`S > 1`, `nworkers >
    /// 1`).
    ///
    /// Spawns `nworkers` pool workers **once** (ceil-partitioning the
    /// shards into contiguous groups — [`Metrics::worker_spawns`]
    /// counts them) and then drives conservative windows to
    /// completion. Each window either executes in parallel — three
    /// barrier rounds against the pool, then a single-threaded
    /// ordered commit — or drains inline on this thread: eligibility
    /// is the same commit-gate precondition as before (no armed crash
    /// machinery, window inside every horizon), and on top of it the
    /// adaptive serial gate skips the pool for windows following a
    /// sub-[`SERIAL_WINDOW_MIN_EVENTS`] window. Workers park on a
    /// condvar between supersteps; one wakeup covers up to
    /// `window_batch` consecutive parallel windows. Every stop path —
    /// normal outcomes, coordinator panics (e.g. a lookahead
    /// violation caught mid-commit), and re-raised worker panics —
    /// shuts the pool down before the scope joins, so the engine
    /// never deadlocks on a barrier.
    fn run_pooled(&mut self, until: Option<Time>, nworkers: usize) -> RunOutcome {
        if !self.core.started {
            self.exec(|ex| ex.start_procs());
        }
        let s = self.cells.len();
        if self.core.metrics.shard_busy_ns.len() != s {
            self.core.metrics.shard_busy_ns = vec![0; s];
            self.core.metrics.shard_barrier_wait_ns = vec![0; s];
        }
        let chunk = s.div_ceil(nworkers);
        // Ceil-sized chunks can cover the shards in fewer groups than
        // `nworkers` (6 shards on 4 threads is three groups of two);
        // spawn — and count — only the groups that exist.
        let groups = s.div_ceil(chunk);
        self.core.metrics.worker_spawns += groups as u64;
        let batch_cap = self.sh.window_batch.cap().max(1);
        let stop_all = self.core.stop_when_all_decided;
        let max_events = self.sh.max_events;
        let trace_enabled = self.core.trace.is_enabled();
        let sh = &self.sh;
        let core = &mut self.core;
        let env = WorkerEnv {
            ids: &sh.ids,
            shard_map: &sh.shard_map,
            budget: sh.message_id_budget,
            trace_enabled,
        };
        let locks: Vec<Mutex<&mut ShardCell<P>>> = self.cells.iter_mut().map(Mutex::new).collect();
        let ctl = PoolCtl {
            barrier: Barrier::new(groups + 1),
            cmd: AtomicU8::new(CMD_PARK),
            window_end: AtomicU64::new(0),
            events_before: AtomicU64::new(0),
            undecided_before: AtomicU64::new(0),
            total_drained: AtomicU64::new(0),
            undecided_touched: AtomicU64::new(0),
            flush_edges: AtomicU64::new(0),
            any_crash: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            epoch: Mutex::new(0),
            epoch_cv: Condvar::new(),
            panic: Mutex::new(None),
        };
        // Whether a superstep is open — i.e. the workers are inside
        // their barrier loop (waiting at W0) rather than parked on
        // the condvar. Decides which shutdown handshake to use.
        let epoch_open = std::cell::Cell::new(false);
        let result = crossbeam::thread::scope(|sc| {
            let ctl = &ctl;
            for lo in (0..s).step_by(chunk) {
                let hi = (lo + chunk).min(s);
                let group = &locks[lo..hi];
                sc.spawn(move |_| pool_worker(ctl, group, env, max_events, stop_all));
            }
            let r = catch_unwind(AssertUnwindSafe(|| {
                let mut windows_in_epoch = 0usize;
                // The serial gate keys off the previous window's
                // event count; MAX sends the first window to the
                // pool.
                let mut last_window_events = u64::MAX;
                loop {
                    // Plan under all cell locks; the guards must drop
                    // before any barrier round.
                    let plan = {
                        let mut guards: Vec<MutexGuard<'_, &mut ShardCell<P>>> =
                            locks.iter().map(plock).collect();
                        let mut refs: Vec<&mut ShardCell<P>> =
                            guards.iter_mut().map(|g| &mut ***g).collect();
                        let mut ex = Exec {
                            sh,
                            core,
                            cells: &mut refs,
                        };
                        ex.plan_window(until, &mut last_window_events)
                    };
                    let (window_end, events_before, undecided_before) = match plan {
                        Plan::Stop(outcome) => return outcome,
                        Plan::Continue => continue,
                        Plan::Parallel {
                            window_end,
                            events_before,
                            undecided_before,
                        } => (window_end, events_before, undecided_before),
                    };
                    // Superstep management: close a full batch with a
                    // PARK round, open a new one with an epoch bump.
                    if epoch_open.get() && windows_in_epoch >= batch_cap {
                        ctl.cmd.store(CMD_PARK, Ordering::Relaxed);
                        ctl.barrier.wait();
                        // Second rendezvous: workers acknowledge the
                        // park command between the two rounds, so the
                        // CMD_WINDOW store below cannot overwrite it
                        // before a slow worker reads it.
                        ctl.barrier.wait();
                        epoch_open.set(false);
                    }
                    if !epoch_open.get() {
                        core.metrics.superstep_count += 1;
                        core.metrics.worker_wakeups += groups as u64;
                        {
                            let mut e = plock(&ctl.epoch);
                            *e += 1;
                            ctl.epoch_cv.notify_all();
                        }
                        epoch_open.set(true);
                        windows_in_epoch = 0;
                    }
                    // Publish the descriptor and run the three
                    // barrier rounds.
                    ctl.window_end.store(window_end.ticks(), Ordering::Relaxed);
                    ctl.events_before.store(events_before, Ordering::Relaxed);
                    ctl.undecided_before
                        .store(undecided_before, Ordering::Relaxed);
                    ctl.total_drained.store(0, Ordering::Relaxed);
                    ctl.undecided_touched.store(0, Ordering::Relaxed);
                    ctl.flush_edges.store(0, Ordering::Relaxed);
                    ctl.any_crash.store(false, Ordering::Relaxed);
                    ctl.cmd.store(CMD_WINDOW, Ordering::Relaxed);
                    let t0 = Instant::now();
                    ctl.barrier.wait(); // W0: descriptor out
                    ctl.barrier.wait(); // W1: gate statistics in
                    ctl.barrier.wait(); // W2: phases done, cells quiescent
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    windows_in_epoch += 1;
                    // Re-lock the cells and absorb the window.
                    if let Some(p) = plock(&ctl.panic).take() {
                        resume_unwind(p);
                    }
                    let committed = !ctl.any_crash.load(Ordering::Relaxed)
                        && events_before + ctl.total_drained.load(Ordering::Relaxed) <= max_events
                        && (!stop_all
                            || ctl.undecided_touched.load(Ordering::Relaxed) < undecided_before);
                    let mut guards: Vec<MutexGuard<'_, &mut ShardCell<P>>> =
                        locks.iter().map(plock).collect();
                    let mut refs: Vec<&mut ShardCell<P>> =
                        guards.iter_mut().map(|g| &mut ***g).collect();
                    let mut ex = Exec {
                        sh,
                        core,
                        cells: &mut refs,
                    };
                    ex.absorb_parallel_window(
                        committed,
                        elapsed,
                        ctl.flush_edges.load(Ordering::Relaxed),
                    );
                    if committed {
                        last_window_events = ex.core.metrics.events - events_before;
                    } else {
                        // The gate refused the window: the workers
                        // flushed their inboxes and pushed the
                        // drained events back (keys and ids intact),
                        // so the merged drain — no re-flush — replays
                        // it in the exact serial order.
                        if let Some(outcome) = ex.drain_window_merged(window_end, until) {
                            return outcome;
                        }
                        last_window_events = ex.core.metrics.events - events_before;
                    }
                }
            }));
            // Shut the pool down on every exit path — normal stop or
            // unwind — so the scope's implicit join cannot deadlock.
            if epoch_open.get() {
                ctl.cmd.store(CMD_SHUTDOWN, Ordering::Relaxed);
                ctl.barrier.wait();
            } else {
                let _e = plock(&ctl.epoch);
                ctl.shutdown.store(true, Ordering::Relaxed);
                ctl.epoch_cv.notify_all();
            }
            r
        })
        .expect("persistent pool workers");
        match result {
            Ok(outcome) => outcome,
            Err(p) => resume_unwind(p),
        }
    }
}

impl<P: Process> Exec<'_, '_, P> {
    /// Starts every non-crashed process (first `run`/`run_until` call
    /// only). Shared by every loop flavor; routing of the broadcasts
    /// the starts issue follows `current_shard`.
    fn start_procs(&mut self) {
        self.core.started = true;
        for i in 0..self.sh.topo.len() {
            if !self.core.ledger.is_crashed(i) {
                self.core.current_shard = self.sh.shard_map.shard_of(i) as u32;
                self.dispatch(Slot(i), |p, ctx| p.on_start(ctx));
            }
        }
    }

    /// The serial (`S = 1`) hot loop: one queue, no routing, no
    /// windows — the exact pre-sharding fast path.
    fn run_loop_serial(&mut self, until: Option<Time>) -> RunOutcome {
        if !self.core.started {
            self.start_procs();
        }
        loop {
            if self.core.stop_when_all_decided && self.core.undecided == 0 {
                return RunOutcome::AllDecided;
            }
            let Some(next_time) = self.cells[0].queue.peek_time() else {
                return if self.core.undecided == 0 {
                    RunOutcome::AllDecided
                } else {
                    RunOutcome::Quiescent
                };
            };
            if let Some(limit) = until {
                if next_time > limit {
                    return RunOutcome::MaxTime;
                }
            }
            if next_time > self.sh.max_time {
                return RunOutcome::MaxTime;
            }
            if self.core.metrics.events >= self.sh.max_events {
                return RunOutcome::EventLimit;
            }
            let ev = self.cells[0].queue.pop().expect("peeked");
            self.core.now = ev.time;
            self.core.metrics.events += 1;
            self.process_event(ev.id, ev.payload);
        }
    }

    /// The conservative time-window coordinator (`S > 1`, merged
    /// stepping).
    ///
    /// Protocol per iteration: flush every cross-shard mailbox into
    /// its destination queue (and any local pushes a previous pooled
    /// run deferred), open a window `[W, W + lookahead)` at the
    /// global minimum head time, and drain all shard heads due in
    /// the window in global `(time, class, seq)` order. The lookahead
    /// guarantees nothing processed inside the window schedules into
    /// it, so mailboxes stay untouched until the next boundary, and
    /// the merged order — hence the trace, decisions, and counters —
    /// is byte-identical to the serial loop's. See [`super::shard`].
    fn run_loop_sharded(&mut self, until: Option<Time>) -> RunOutcome {
        debug_assert!(self.sh.lookahead >= 1, "checked at build time");
        if !self.core.started {
            self.start_procs();
        }
        loop {
            if self.core.stop_when_all_decided && self.core.undecided == 0 {
                return RunOutcome::AllDecided;
            }
            self.flush_mailboxes();
            self.flush_local_pending();
            let Some(window_start) = self.min_head_time() else {
                return if self.core.undecided == 0 {
                    RunOutcome::AllDecided
                } else {
                    RunOutcome::Quiescent
                };
            };
            if let Some(limit) = until {
                if window_start > limit {
                    return RunOutcome::MaxTime;
                }
            }
            if window_start > self.sh.max_time {
                return RunOutcome::MaxTime;
            }
            let window_end = Time(window_start.ticks().saturating_add(self.sh.lookahead - 1));
            self.core.metrics.shard_window_advances += 1;
            if let Some(outcome) = self.drain_window_merged(window_end, until) {
                return outcome;
            }
        }
    }

    /// One planning pass of the pooled coordinator, run under all
    /// cell locks: decides whether the run stops, steps a window
    /// inline (commit-gate ineligible, or skipped by the adaptive
    /// serial gate), or hands a window descriptor to the pool.
    /// `last_window_events` carries the serial gate's estimate across
    /// calls (updated by inline windows here and by parallel windows
    /// in the caller).
    fn plan_window(&mut self, until: Option<Time>, last_window_events: &mut u64) -> Plan {
        if self.core.stop_when_all_decided && self.core.undecided == 0 {
            return Plan::Stop(RunOutcome::AllDecided);
        }
        // The window start is computed over queues, mailboxes, and
        // deferred pushes *before* flushing: the workers (or the
        // merged fallback) flush as their first act, and an unflushed
        // entry has the same time either way.
        let window_start = self.min_pending_time();
        let horizon_stop = match window_start {
            None => Some(if self.core.undecided == 0 {
                RunOutcome::AllDecided
            } else {
                RunOutcome::Quiescent
            }),
            Some(t) if until.is_some_and(|limit| t > limit) || t > self.sh.max_time => {
                Some(RunOutcome::MaxTime)
            }
            Some(_) => None,
        };
        if let Some(outcome) = horizon_stop {
            // The merged loop flushes at the top of every round —
            // including the final one that discovers the stop. Mirror
            // it, so flush accounting and post-run queue state stay
            // byte-identical (and a later `run*` call resumes from
            // the same place either way).
            self.flush_mailboxes();
            self.flush_local_pending();
            return Plan::Stop(outcome);
        }
        let window_start = window_start.expect("stop paths handled above");
        let window_end = Time(window_start.ticks().saturating_add(self.sh.lookahead - 1));
        self.core.metrics.shard_window_advances += 1;
        // A window may run in parallel only when (a) no mid-broadcast
        // crash machinery is armed — crash flags frozen,
        // `note_delivery` a no-op — and (b) it cannot cross the time
        // horizon, so no step inside it can be the one that stops the
        // run on time.
        let bounded =
            window_end <= self.sh.max_time && until.is_none_or(|limit| window_end <= limit);
        let eligible = bounded && self.core.ledger.parallel_step_safe();
        if !eligible || *last_window_events < SERIAL_WINDOW_MIN_EVENTS {
            if eligible {
                // Eligible but skipped purely as wake-policy: the
                // merged drain below is byte-identical to what the
                // pool would have produced.
                self.core.metrics.serial_window_shortcuts += 1;
            }
            self.flush_mailboxes();
            self.flush_local_pending();
            let before = self.core.metrics.events;
            return match self.drain_window_merged(window_end, until) {
                Some(outcome) => Plan::Stop(outcome),
                None => {
                    *last_window_events = self.core.metrics.events - before;
                    Plan::Continue
                }
            };
        }
        Plan::Parallel {
            window_end,
            events_before: self.core.metrics.events,
            undecided_before: self.core.undecided as u64,
        }
    }

    /// Drains one open window in global `(time, class, seq)` order on
    /// the coordinator thread — the sharded engine's inner loop, also
    /// the fallback the pooled coordinator uses for windows the
    /// commit gate cannot prove stop-free. Mailboxes (and any
    /// deferred local pushes) must already be flushed. Returns
    /// `Some(outcome)` when the run stops mid-window, `None` when the
    /// window drains and the next one may open.
    fn drain_window_merged(&mut self, window_end: Time, until: Option<Time>) -> Option<RunOutcome> {
        loop {
            if self.core.stop_when_all_decided && self.core.undecided == 0 {
                return Some(RunOutcome::AllDecided);
            }
            let Some((shard, next_time)) = self.min_head_in_window(window_end) else {
                return None; // window drained; open the next one
            };
            if let Some(limit) = until {
                if next_time > limit {
                    return Some(RunOutcome::MaxTime);
                }
            }
            if next_time > self.sh.max_time {
                return Some(RunOutcome::MaxTime);
            }
            if self.core.metrics.events >= self.sh.max_events {
                return Some(RunOutcome::EventLimit);
            }
            let ev = self.cells[shard].queue.pop().expect("peeked");
            self.core.now = ev.time;
            self.core.metrics.events += 1;
            self.core.metrics.per_shard_events[shard] += 1;
            self.core.current_shard = shard as u32;
            self.process_event(ev.id, ev.payload);
        }
    }

    /// One engine step: dispatch a popped event to its handler. The
    /// per-shard step function every loop flavor shares. (`id` routes
    /// cross-shard deliveries to their imported payload clone.)
    fn process_event(&mut self, id: EventId, ev: EventKind) {
        match ev {
            EventKind::Crash { node } => self.handle_crash(node),
            EventKind::Receive {
                to,
                from,
                bcast,
                unreliable,
            } => self.handle_receive(id, to, from, bcast, unreliable),
            EventKind::Ack { node, bcast } => self.handle_ack(node, bcast),
        }
    }

    /// Drains every cross-shard mailbox into its destination queue
    /// (entries keep their scheduling-time ids, so pop order is
    /// unaffected by drain order). Counts one flush per non-empty
    /// edge.
    fn flush_mailboxes(&mut self) {
        for i in 0..self.cells.len() {
            let cell = &mut *self.cells[i];
            let (inbox, queue) = (&mut cell.inbox, &mut cell.queue);
            for mb in inbox.iter_mut() {
                if mb.is_empty() {
                    continue;
                }
                self.core.metrics.shard_mailbox_flushes += 1;
                mb.drain_into(|e: MailEntry<EventKind>| {
                    queue.push_at(e.time, e.class, e.id, e.payload);
                });
            }
        }
    }

    /// The earliest head time across all shard queues.
    fn min_head_time(&mut self) -> Option<Time> {
        self.cells
            .iter_mut()
            .filter_map(|c| c.queue.peek_time())
            .min()
    }

    /// The earliest pending time anywhere — queue heads, in-transit
    /// mailbox entries, and deferred local pushes. Equals what
    /// [`Exec::min_head_time`] would report after a flush, without
    /// flushing (the pooled coordinator flushes inside the workers).
    fn min_pending_time(&mut self) -> Option<Time> {
        self.cells
            .iter_mut()
            .flat_map(|c| {
                let head = c.queue.peek_time();
                let mailed = c.inbox.iter().filter_map(|mb| mb.min_time()).min();
                let pending = c.pending.iter().map(|e| e.time).min();
                [head, mailed, pending]
            })
            .flatten()
            .min()
    }

    /// Pushes every deferred own-shard entry into its queue (the
    /// merged-path counterpart of the workers' phase-1 flush).
    /// Unlike mailbox flushes these are not counted — the serial
    /// engine pushed them directly at schedule time.
    fn flush_local_pending(&mut self) {
        for cell in self.cells.iter_mut() {
            let cell = &mut **cell;
            let (pending, queue) = (&mut cell.pending, &mut cell.queue);
            for e in pending.drain(..) {
                queue.push_at(e.time, e.class, e.id, e.payload);
            }
        }
    }

    /// The shard holding the globally smallest `(time, class, seq)`
    /// head due at or before `window_end`, with that head's time.
    fn min_head_in_window(&mut self, window_end: Time) -> Option<(usize, Time)> {
        let mut best: Option<((Time, u8, u64), usize)> = None;
        for (i, c) in self.cells.iter_mut().enumerate() {
            if let Some(key) = c.queue.peek_key() {
                if key.0 <= window_end && best.is_none_or(|(b, _)| key < b) {
                    best = Some((key, i));
                }
            }
        }
        best.map(|((t, ..), i)| (i, t))
    }

    /// Absorbs one pool-executed window after its last barrier:
    /// wall-clock and flush accounting either way, and — when the
    /// gate committed — the order-independent counter sums plus the
    /// ordered commit, which replays step records in global key order
    /// (cursor merge over the per-shard key-sorted lists),
    /// re-creating the serial trace and broadcast/event-id/RNG
    /// sequences exactly. Own-shard pushes are deferred into the
    /// cells' `pending` staging for the next window-boundary flush.
    fn absorb_parallel_window(&mut self, committed: bool, elapsed: u64, flush_edges: u64) {
        let s = self.cells.len();
        // Mailbox-flush accounting and wall-clock timing apply
        // whether or not the window committed: the flushes happened,
        // and the workers did the work.
        self.core.metrics.shard_mailbox_flushes += flush_edges;
        let mut decided_total = 0u64;
        let mut end_time: Option<Time> = None;
        let mut recs: Vec<Vec<StepRec<P::Msg>>> = Vec::with_capacity(s);
        let mut traces: Vec<Vec<TraceEvent>> = Vec::with_capacity(s);
        for shard in 0..s {
            let cell = &mut *self.cells[shard];
            let out = std::mem::take(&mut cell.out);
            self.core.metrics.shard_busy_ns[shard] += out.busy_ns;
            self.core.metrics.shard_barrier_wait_ns[shard] += elapsed.saturating_sub(out.busy_ns);
            if !committed {
                continue;
            }
            // Order-independent commits: plain sums.
            self.core.metrics.events += out.events;
            self.core.metrics.per_shard_events[shard] += out.events;
            self.core.metrics.deliveries += out.deliveries;
            self.core.metrics.unreliable_deliveries += out.unreliable_deliveries;
            self.core.metrics.acks += out.acks;
            self.core.metrics.busy_discards += out.busy_discards;
            decided_total += out.decided;
            end_time = end_time.max(out.last_time);
            recs.push(std::mem::take(&mut cell.scratch.records));
            traces.push(std::mem::take(&mut cell.scratch.trace_buf));
        }
        if !committed {
            return;
        }
        // The gate guarantees a worker-dispatched node is alive, so
        // every new decision decrements `undecided` — and strictly
        // fewer than `undecided_before` can have decided.
        self.core.undecided -= decided_total as usize;
        self.core.defer_local_pushes = true;
        let mut cursors = vec![0usize; s];
        loop {
            let mut best: Option<((Time, u8, u64), usize)> = None;
            for (shard, rl) in recs.iter().enumerate() {
                if let Some(rec) = rl.get(cursors[shard]) {
                    if best.is_none_or(|(k, _)| rec.key < k) {
                        best = Some((rec.key, shard));
                    }
                }
            }
            let Some((key, shard)) = best else { break };
            let rec = &mut recs[shard][cursors[shard]];
            cursors[shard] += 1;
            for ev in &traces[shard][rec.trace_start..rec.trace_end] {
                self.core.trace.push(*ev);
            }
            if let Some((slot, msg)) = rec.broadcast.take() {
                self.core.now = key.0;
                self.core.current_shard = shard as u32;
                self.commit_deferred_broadcast(slot, msg);
            }
        }
        self.core.defer_local_pushes = false;
        if let Some(t) = end_time {
            self.core.now = t;
        }
        for (shard, (mut r, mut t)) in recs.into_iter().zip(traces).enumerate() {
            r.clear();
            t.clear();
            let cell = &mut *self.cells[shard];
            cell.scratch.records = r;
            cell.scratch.trace_buf = t;
        }
    }
}

impl<P: Process> Exec<'_, '_, P> {
    /// Allocates the next event id and routes `kind` at `time`: into
    /// the owning shard's queue directly, or into the destination's
    /// inbound mailbox when the target slot lives on another shard.
    /// Returns the id and the destination shard (the cancellation
    /// route).
    fn schedule(&mut self, time: Time, kind: EventKind) -> (EventId, u32) {
        let id = EventId(self.core.next_event_id);
        self.core.next_event_id += 1;
        let class = kind.class();
        if self.cells.len() == 1 {
            self.cells[0].queue.push_at(time, class, id, kind);
            return (id, 0);
        }
        let dst = self.sh.shard_map.shard_of(kind.target().0) as u32;
        let src = self.core.current_shard;
        if dst == src {
            let cell = &mut *self.cells[dst as usize];
            if self.core.defer_local_pushes {
                // Parallel-window commit: own-shard pushes are staged
                // here and flushed at the next window boundary,
                // keeping queue mutation off the serial commit path.
                // Not a mailbox flush — never counted.
                cell.pending.push(MailEntry {
                    time,
                    class,
                    id,
                    payload: kind,
                });
            } else {
                cell.queue.push_at(time, class, id, kind);
            }
        } else {
            self.core.metrics.cross_shard_deliveries += 1;
            self.cells[dst as usize].inbox[src as usize].push(MailEntry {
                time,
                class,
                id,
                payload: kind,
            });
        }
        (id, dst)
    }

    /// Cancels one scheduled event wherever it lives: on the
    /// destination shard's queue (O(1) tombstone), or — when it is
    /// still in transit between `src` and `dst` — in the mailbox. Ids
    /// that already fired are a no-op in both places.
    fn cancel_event(&mut self, id: EventId, dst: u32, src: u32) {
        if self.cells[dst as usize].queue.cancel(id) {
            return;
        }
        if dst != src && self.cells[dst as usize].inbox[src as usize].cancel(id) {
            self.core.mailbox_cancels += 1;
        }
    }

    fn handle_crash(&mut self, node: Slot) {
        // Crashes can cancel queued events, but cancellation never
        // searches the deferred own-shard staging: the coordinator
        // only defers pushes inside a window the gate proved
        // crash-free, and flushes the staging before any merged
        // fallback runs.
        debug_assert!(
            self.cells.iter().all(|c| c.pending.is_empty()),
            "crash processed with deferred local pushes outstanding"
        );
        if !self.core.ledger.mark_crashed(node.0) {
            return;
        }
        let shard = self.sh.shard_map.shard_of(node.0);
        let (was_undecided, outstanding) = {
            let cell = &mut *self.cells[shard];
            let li = node.0 - cell.base;
            // Keep the engine-owned crash mirror in lockstep with the
            // ledger (workers read the mirror during parallel
            // windows).
            cell.crashed[li] = true;
            (cell.decisions[li].is_none(), cell.outstanding[li].take())
        };
        self.core.metrics.crashes += 1;
        self.core.trace.push(TraceEvent::Crash {
            time: self.core.now,
            slot: node,
        });
        if was_undecided {
            self.core.undecided -= 1;
        }
        if let Some(BcastId(b)) = outstanding {
            self.cancel_broadcast(node, b);
        }
    }

    /// Voids a crashed sender's in-flight broadcast: every still-
    /// pending delivery and the ack are cancelled wherever they live —
    /// queue tombstones on their destination shards, or removal from a
    /// mailbox for entries still in transit — so they simply never
    /// fire.
    fn cancel_broadcast(&mut self, sender: Slot, bcast: u64) {
        // All of this broadcast's events were scheduled from the
        // sender's shard; that is the mailbox row to search for
        // in-transit entries. Every still-pending own-shard reference
        // dies with the sender's arena slot at once.
        let src = self.sh.shard_map.shard_of(sender.0) as u32;
        let entry = {
            let cell = &mut *self.cells[src as usize];
            let li = sender.0 - cell.base;
            let Some(idx) = cell.inflight[li].iter().position(|e| e.bcast == bcast) else {
                return;
            };
            let entry = cell.inflight[li].swap_remove(idx);
            cell.arena.discard_all(entry.payload);
            entry
        };
        for &(id, dst) in &entry.events {
            self.cancel_event(id, dst, src);
            if dst != src {
                // Cross-shard deliveries hold a reference on the
                // destination shard's imported arena slot; drop it
                // with the event (the last one frees the slot).
                let cell = &mut *self.cells[dst as usize];
                if let Some(h) = cell.imported.remove(&id) {
                    cell.arena.discard(h);
                }
            }
        }
        self.recycle(entry.events);
    }

    /// Returns an event-id vector to the pool for reuse.
    fn recycle(&mut self, mut events: Vec<(EventId, u32)>) {
        if self.core.events_pool.len() < self.sh.topo.len() {
            events.clear();
            self.core.events_pool.push(events);
        }
    }

    fn handle_receive(
        &mut self,
        id: EventId,
        to: Slot,
        from: Slot,
        bcast: BcastId,
        unreliable: bool,
    ) {
        // The receiver may have crashed after this delivery was
        // scheduled; the message is silently lost (and never cloned).
        // The lost delivery still consumes its slot in any
        // mid-broadcast crash countdown, so the sender's planned crash
        // fires even when watched deliveries target dead receivers —
        // the contract shared with the threaded ether, whose prefix
        // over all neighbors likewise burns slots on dead receivers
        // (see Admission::PartialThenCrash).
        let to_crashed = self.core.ledger.is_crashed(to.0);
        let from_shard = self.sh.shard_map.shard_of(from.0);
        let to_shard = self.sh.shard_map.shard_of(to.0);
        let (msg, retired) = if from_shard == to_shard {
            // Own-shard delivery: the sender's in-flight entry names
            // the arena slot holding the payload (the common case,
            // and the only case at S=1). The arena moves the payload
            // out on the last reference, clones otherwise, and never
            // copies for a crashed receiver.
            let cell = &mut *self.cells[from_shard];
            let li = from.0 - cell.base;
            let idx = cell.inflight[li]
                .iter()
                .position(|e| e.bcast == bcast.0)
                .expect("message for pending delivery");
            let h = cell.inflight[li][idx].payload;
            let (msg, last) = if to_crashed {
                (None, cell.arena.discard(h))
            } else {
                let (m, last) = cell.arena.release(h);
                (Some(m), last)
            };
            let retired = last.then(|| cell.inflight[li].swap_remove(idx).events);
            (msg, retired)
        } else {
            // Cross-shard delivery: the payload was imported into the
            // destination shard's arena at schedule time (one clone
            // per destination shard, shared by its deliveries), so
            // this step never touches the sender's shard-owned
            // in-flight entry (the parallel stepper's ownership
            // contract).
            let cell = &mut *self.cells[to_shard];
            let h = cell
                .imported
                .remove(&id)
                .expect("imported payload for cross-shard delivery");
            if to_crashed {
                cell.arena.discard(h);
                (None, None)
            } else {
                (Some(cell.arena.release(h).0), None)
            }
        };
        if let Some(events) = retired {
            self.recycle(events);
        }
        if to_crashed {
            if !unreliable && self.core.ledger.note_delivery(bcast.0) {
                self.handle_crash(from);
            }
            return;
        }
        let msg = msg.expect("payload for a live receiver");
        self.core.metrics.deliveries += u64::from(!unreliable);
        self.core.metrics.unreliable_deliveries += u64::from(unreliable);
        self.core.trace.push(TraceEvent::Deliver {
            time: self.core.now,
            from,
            to,
            unreliable,
        });
        self.dispatch(to, |p, ctx| p.on_receive(msg, ctx));
        // Mid-broadcast crash: the sender dies immediately after this
        // delivery; the rest of the broadcast never happens.
        if !unreliable && self.core.ledger.note_delivery(bcast.0) {
            self.handle_crash(from);
        }
    }

    fn handle_ack(&mut self, node: Slot, bcast: BcastId) {
        let shard = self.sh.shard_map.shard_of(node.0);
        let retired = {
            let cell = &mut *self.cells[shard];
            let li = node.0 - cell.base;
            let mut retired = None;
            if let Some(idx) = cell.inflight[li].iter().position(|e| e.bcast == bcast.0) {
                let h = cell.inflight[li][idx].payload;
                if cell.arena.discard(h) {
                    retired = Some(cell.inflight[li].swap_remove(idx).events);
                }
            }
            // A crashed sender's ack event is cancelled with its
            // broadcast, so this only fires for live nodes.
            debug_assert!(!cell.crashed[li], "ack for a crashed node");
            debug_assert_eq!(cell.outstanding[li], Some(bcast));
            cell.outstanding[li] = None;
            retired
        };
        if let Some(events) = retired {
            self.recycle(events);
        }
        self.core.metrics.acks += 1;
        self.core.trace.push(TraceEvent::Ack {
            time: self.core.now,
            slot: node,
        });
        self.dispatch(node, |p, ctx| p.on_ack(ctx));
    }

    /// Runs one process callback with a fresh context, then services
    /// any broadcast it requested and records any new decision.
    fn dispatch<F>(&mut self, slot: Slot, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        let shard = self.sh.shard_map.shard_of(slot.0);
        let mut outbox: Option<P::Msg> = None;
        let had_decision;
        {
            let cell = &mut *self.cells[shard];
            let li = slot.0 - cell.base;
            had_decision = cell.decisions[li].is_some();
            let mut ctx = Context {
                id: self.sh.ids[slot.0],
                now: self.core.now,
                busy: cell.outstanding[li].is_some(),
                outbox: &mut outbox,
                decision: &mut cell.decisions[li],
                ts_seq: &mut cell.ts_seqs[li],
                busy_discards: &mut self.core.metrics.busy_discards,
                rng: &mut cell.rngs[li],
            };
            f(&mut cell.procs[li], &mut ctx);
        }
        if let Some(m) = outbox {
            self.start_broadcast(slot, m);
        }
        if !had_decision {
            let decision = {
                let cell = &*self.cells[shard];
                cell.decisions[slot.0 - cell.base]
            };
            if let Some(d) = decision {
                self.core.trace.push(TraceEvent::Decide {
                    time: d.time,
                    slot,
                    value: d.value,
                });
                if !self.core.ledger.is_crashed(slot.0) {
                    self.core.undecided -= 1;
                }
            }
        }
    }

    /// Broadcast accounting shared by the immediate and deferred entry
    /// points: the O(1) message-size budget assertion plus the
    /// broadcast counters. Returns the message's id count.
    fn note_broadcast_metrics(&mut self, slot: Slot, msg: &P::Msg) -> usize {
        let ids = msg.id_count();
        if let Some(budget) = self.sh.message_id_budget {
            assert!(
                ids <= budget,
                "message from {} carries {ids} ids, exceeding the O(1) budget of {budget}: {msg:?}",
                self.sh.ids[slot.0],
            );
        }
        self.core.metrics.broadcasts += 1;
        self.core.metrics.per_slot_broadcasts[slot.0] += 1;
        self.core.metrics.max_message_ids = self.core.metrics.max_message_ids.max(ids);
        self.core.metrics.total_message_ids += ids as u64;
        ids
    }

    /// Accepts a broadcast requested during serial or merged event
    /// processing: records it, assigns the next broadcast id, and
    /// schedules its deliveries and ack.
    fn start_broadcast(&mut self, slot: Slot, msg: P::Msg) {
        debug_assert!(
            !self.core.ledger.is_crashed(slot.0),
            "crashed node broadcast"
        );
        let ids = self.note_broadcast_metrics(slot, &msg);
        self.core.trace.push(TraceEvent::Broadcast {
            time: self.core.now,
            slot,
            ids,
        });
        let bcast = BcastId(self.core.bcast_seq);
        self.core.bcast_seq += 1;
        {
            let cell = &mut *self.cells[self.sh.shard_map.shard_of(slot.0)];
            let li = slot.0 - cell.base;
            debug_assert!(cell.outstanding[li].is_none(), "double broadcast");
            cell.outstanding[li] = Some(bcast);
        }
        self.commit_broadcast_events(slot, msg, bcast);
    }

    /// Second half of a broadcast a parallel-window worker already
    /// dispatched: the worker ran the process callback, recorded the
    /// [`TraceEvent::Broadcast`], and parked [`DEFERRED_BCAST`] as the
    /// node's outstanding id; the coordinator replays the deferred
    /// halves in global step order, so the broadcast/event-id/RNG
    /// sequences come out exactly as a serial run's.
    fn commit_deferred_broadcast(&mut self, slot: Slot, msg: P::Msg) {
        debug_assert!(
            !self.core.ledger.is_crashed(slot.0),
            "crashed node broadcast"
        );
        self.note_broadcast_metrics(slot, &msg);
        let bcast = BcastId(self.core.bcast_seq);
        self.core.bcast_seq += 1;
        {
            let cell = &mut *self.cells[self.sh.shard_map.shard_of(slot.0)];
            let li = slot.0 - cell.base;
            debug_assert_eq!(
                cell.outstanding[li],
                Some(DEFERRED_BCAST),
                "deferred broadcast without its worker-side placeholder"
            );
            cell.outstanding[li] = Some(bcast);
        }
        self.commit_broadcast_events(slot, msg, bcast);
    }

    /// Registers one cross-shard delivery's payload with destination
    /// shard `dst`: the broadcast's first event into `dst` clones the
    /// payload into that shard's arena (memoized in `import_scratch`),
    /// every later one just retains the shared slot, and each event id
    /// maps to the handle in the destination's imported table.
    fn import_payload(&mut self, msg: &P::Msg, id: EventId, dst: u32) {
        let dst = dst as usize;
        let cell = &mut *self.cells[dst];
        let h = match self.core.import_scratch[dst] {
            Some(h) => {
                cell.arena.retain(h);
                h
            }
            None => {
                let h = cell.arena.insert_cloned(msg, 1);
                self.core.import_scratch[dst] = Some(h);
                h
            }
        };
        cell.imported.insert(id, h);
    }

    /// Plans and schedules one accepted broadcast's deliveries and
    /// ack, routing payload custody per the shard-ownership split: the
    /// sender's arena slot refcounts only own-shard events, and each
    /// destination shard a delivery crosses into gets **one** payload
    /// clone in its own arena, shared by refcount among that shard's
    /// deliveries and keyed per event id in its imported table.
    fn commit_broadcast_events(&mut self, slot: Slot, msg: P::Msg, bcast: BcastId) {
        // Reuse the scratch neighbor buffer (the scheduler borrows it
        // while `self` stays mutable for the queue pushes below).
        let now = self.core.now;
        let mut neighbors = std::mem::take(&mut self.core.neighbor_scratch);
        neighbors.clear();
        neighbors.extend_from_slice(self.sh.topo.neighbors(slot));
        let plan = self.core.scheduler.plan(now, slot, &neighbors);
        if let Err(e) = plan.validate(neighbors.len(), self.core.scheduler.f_ack()) {
            panic!("scheduler produced an invalid plan for {slot}: {e}");
        }
        if self.cells.len() > 1 {
            // The conservative windows are only sound if every plan
            // honors the declared lookahead; a scheduler that
            // undercuts its own min_delay() would let an event sneak
            // into an already-open window.
            let floor = plan
                .receive_delays
                .iter()
                .copied()
                .chain([plan.ack_delay])
                .min()
                .unwrap_or(plan.ack_delay);
            assert!(
                floor >= self.sh.lookahead,
                "scheduler violated its declared lookahead for {slot}: plans a delay of \
                 {floor} ticks but min_delay() promised >= {}",
                self.sh.lookahead
            );
        }

        let src_shard = self.sh.shard_map.shard_of(slot.0) as u32;
        let mut refs = 0u32;
        let mut events = self.core.events_pool.pop().unwrap_or_default();
        events.reserve(neighbors.len() + 1);
        for (i, &nbr) in neighbors.iter().enumerate() {
            let kind = EventKind::Receive {
                to: nbr,
                from: slot,
                bcast,
                unreliable: false,
            };
            let (id, dst) = self.schedule(now + plan.receive_delays[i], kind);
            if dst == src_shard {
                refs += 1;
            } else {
                self.import_payload(&msg, id, dst);
            }
            events.push((id, dst));
        }
        let ack = EventKind::Ack { node: slot, bcast };
        let (id, dst) = self.schedule(now + plan.ack_delay, ack);
        debug_assert_eq!(dst, src_shard, "ack routed off the sender's shard");
        refs += 1;
        events.push((id, dst));

        // Take the overlay out while sampling so `schedule` can borrow
        // the exec mutably (no clone on the hot path). Overlay delays
        // are >= 1, which the build-time lookahead clamp accounts for.
        if let Some((overlay, p)) = self.core.unreliable.take() {
            let f_ack = self.core.scheduler.f_ack().max(1);
            for nbr in overlay.neighbors(slot) {
                if self.core.engine_rng.gen_bool(p) {
                    let delay = self.core.engine_rng.gen_range(1..=f_ack);
                    let kind = EventKind::Receive {
                        to: nbr,
                        from: slot,
                        bcast,
                        unreliable: true,
                    };
                    let (id, dst) = self.schedule(now + delay, kind);
                    if dst == src_shard {
                        refs += 1;
                    } else {
                        self.import_payload(&msg, id, dst);
                    }
                    events.push((id, dst));
                }
            }
            self.core.unreliable = Some((overlay, p));
        }

        // The ack always lands on the sender's shard, so refs >= 1 and
        // the sender's arena slot is live until at least the ack (or a
        // cancellation).
        {
            let cell = &mut *self.cells[src_shard as usize];
            let payload = cell.arena.insert(msg, refs);
            let li = slot.0 - cell.base;
            cell.inflight[li].push(InFlight {
                bcast: bcast.0,
                payload,
                events,
            });
        }
        // Reset the per-destination import memo for the next broadcast
        // (O(S); S is small and this runs once per broadcast).
        for slot_memo in &mut self.core.import_scratch {
            *slot_memo = None;
        }

        // Resolve any planned mid-broadcast crash against this
        // broadcast via the shared ledger.
        match self.core.ledger.admit_broadcast(slot.0, bcast.0) {
            Admission::Deliver => {}
            Admission::CrashImmediately => self.handle_crash(slot),
            Admission::PartialThenCrash { delivered } => {
                assert!(
                    delivered <= neighbors.len(),
                    "mid-broadcast crash wants {delivered} deliveries but {slot} has {} neighbors",
                    neighbors.len()
                );
            }
        }
        self.core.neighbor_scratch = neighbors;
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::sched::sync::SynchronousScheduler;

    /// Floods a token; decides 1 on first receive, or 0 at start for
    /// the initiator.
    struct Flood {
        initiator: bool,
        relayed: bool,
    }

    #[derive(Clone, Debug)]
    struct Token;
    impl Payload for Token {
        fn id_count(&self) -> usize {
            0
        }
    }

    impl Process for Flood {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.initiator {
                self.relayed = true;
                ctx.broadcast(Token);
                ctx.decide(0);
            }
        }
        fn on_receive(&mut self, _m: Token, ctx: &mut Context<'_, Token>) {
            if !self.relayed {
                self.relayed = true;
                ctx.broadcast(Token);
            }
            if ctx.decided().is_none() {
                ctx.decide(1);
            }
        }
        fn on_ack(&mut self, _ctx: &mut Context<'_, Token>) {}
    }

    fn flood_sim(topo: Topology) -> Sim<Flood> {
        SimBuilder::new(topo, |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .build()
    }

    #[test]
    fn flood_crosses_line_in_d_rounds() {
        let mut sim = flood_sim(Topology::line(6));
        let report = sim.run();
        assert!(report.all_decided());
        // Node i (i >= 1) receives the token at round i.
        for i in 1..6 {
            assert_eq!(report.decisions[i].unwrap().time, Time(i as u64));
        }
        assert_eq!(report.metrics.broadcasts, 6);
        // The run stops the instant the last node decides; acks still
        // in the heap at that point are never processed.
        assert!(report.metrics.acks >= 4);
    }

    #[test]
    fn single_hop_flood_takes_one_round() {
        let mut sim = flood_sim(Topology::clique(5));
        let report = sim.run();
        assert!(report.all_decided());
        assert_eq!(report.max_decision_time(), Some(Time(1)));
        // Each delivery of the initial broadcast plus relays.
        assert!(report.metrics.deliveries >= 4);
    }

    #[test]
    fn run_until_pauses_mid_execution() {
        let mut sim = flood_sim(Topology::line(8));
        sim.run_until(Time(3));
        assert_eq!(sim.now(), Time(3));
        // Nodes 1..=3 decided, the rest not yet.
        assert!(sim.decisions()[3].is_some());
        assert!(sim.decisions()[4].is_none());
        let report = sim.run();
        assert!(report.all_decided());
    }

    #[test]
    fn crash_at_time_halts_node() {
        let mut sim = SimBuilder::new(Topology::line(4), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(2),
            time: Time(1),
        }]))
        .build();
        let report = sim.run();
        // Node 2 crashes as the token reaches node 1; the flood dies there.
        assert_eq!(report.metrics.crashes, 1);
        assert!(report.decisions[1].is_some());
        assert!(report.decisions[3].is_none());
        assert_eq!(report.outcome, RunOutcome::Quiescent);
    }

    #[test]
    fn crash_at_time_zero_excludes_node() {
        let mut sim = SimBuilder::new(Topology::clique(3), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(1),
            time: Time::ZERO,
        }]))
        .build();
        let report = sim.run();
        assert!(report.all_decided());
        assert!(report.decisions[1].is_none());
        assert!(report.decisions[2].is_some());
    }

    /// Records every received token.
    struct Counter {
        received: usize,
        emit: bool,
    }

    impl Process for Counter {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            if self.emit {
                ctx.broadcast(Token);
            }
        }
        fn on_receive(&mut self, _m: Token, _ctx: &mut Context<'_, Token>) {
            self.received += 1;
        }
        fn on_ack(&mut self, _ctx: &mut Context<'_, Token>) {}
    }

    #[test]
    fn mid_broadcast_crash_delivers_to_prefix_only() {
        // Clique of 5; node 0 broadcasts and crashes after exactly 2
        // deliveries. Exactly two other nodes get the message.
        let mut sim = SimBuilder::new(Topology::clique(5), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 2,
        }]))
        .build();
        let report = sim.run();
        assert_eq!(report.metrics.crashes, 1);
        let total: usize = (1..5).map(|i| sim.process(Slot(i)).received).sum();
        assert_eq!(total, 2, "exactly the allowed prefix was delivered");
        // The sender never got an ack.
        assert_eq!(report.metrics.acks, 0);
    }

    #[test]
    fn mid_broadcast_crash_with_zero_deliveries() {
        let mut sim = SimBuilder::new(Topology::clique(4), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 0,
        }]))
        .build();
        let report = sim.run();
        let total: usize = (1..4).map(|i| sim.process(Slot(i)).received).sum();
        assert_eq!(total, 0);
        assert_eq!(report.metrics.crashes, 1);
    }

    /// Broadcasts forever; used to exercise busy-discard and horizons.
    struct Chatter;
    impl Process for Chatter {
        type Msg = Token;
        fn on_start(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token);
            ctx.broadcast(Token); // discarded: already busy
        }
        fn on_receive(&mut self, _m: Token, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token); // discarded whenever busy
        }
        fn on_ack(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.broadcast(Token);
        }
    }

    #[test]
    fn busy_broadcasts_are_discarded_and_horizon_stops() {
        let mut sim = SimBuilder::new(Topology::clique(3), |_| Chatter)
            .scheduler(SynchronousScheduler::new(1))
            .max_time(Time(50))
            .build();
        let report = sim.run();
        assert_eq!(report.outcome, RunOutcome::MaxTime);
        assert!(report.metrics.busy_discards > 0);
        // One broadcast per node per round, including the start round
        // and the round at the horizon itself.
        assert_eq!(report.metrics.broadcasts, 3 * 51);
    }

    #[test]
    fn trace_records_event_sequence() {
        let mut sim = SimBuilder::new(Topology::line(2), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .trace(true)
        .build();
        sim.run();
        let events = sim.trace().events();
        assert!(matches!(
            events[0],
            TraceEvent::Broadcast { slot: Slot(0), .. }
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Deliver {
                from: Slot(0),
                to: Slot(1),
                ..
            }
        )));
        assert!(sim.trace().decisions().count() >= 2);
    }

    #[test]
    fn deterministic_across_identical_builds() {
        let run = |seed| {
            let mut sim = SimBuilder::new(Topology::random_connected(12, 0.2, 3), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(RandomScheduler::new(5, seed))
            .seed(seed)
            .build();
            let r = sim.run();
            (r.end_time, r.metrics.deliveries, r.metrics.broadcasts)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// Message carrying a configurable id count.
    #[derive(Clone, Debug)]
    struct Wide(usize);
    impl Payload for Wide {
        fn id_count(&self) -> usize {
            self.0
        }
    }

    struct WideSender(usize);
    impl Process for WideSender {
        type Msg = Wide;
        fn on_start(&mut self, ctx: &mut Context<'_, Wide>) {
            ctx.broadcast(Wide(self.0));
        }
        fn on_receive(&mut self, _m: Wide, _ctx: &mut Context<'_, Wide>) {}
        fn on_ack(&mut self, ctx: &mut Context<'_, Wide>) {
            ctx.decide(0);
        }
    }

    #[test]
    fn id_budget_allows_within_budget() {
        let mut sim = SimBuilder::new(Topology::clique(2), |_| WideSender(3))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(4)
            .build();
        let report = sim.run();
        assert!(report.all_decided());
        assert_eq!(report.metrics.max_message_ids, 3);
    }

    #[test]
    #[should_panic(expected = "exceeding the O(1) budget")]
    fn id_budget_panics_on_violation() {
        let mut sim = SimBuilder::new(Topology::clique(2), |_| WideSender(9))
            .scheduler(SynchronousScheduler::new(1))
            .message_id_budget(4)
            .build();
        sim.run();
    }

    #[test]
    fn ack_arrives_after_all_deliveries() {
        // With the random scheduler over many seeds, a node's ack is
        // always processed after its message reached all neighbors:
        // deliveries of broadcast b never follow b's ack.
        for seed in 0..20 {
            let mut sim = SimBuilder::new(Topology::clique(6), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(RandomScheduler::new(9, seed))
            .trace(true)
            .build();
            sim.run();
            let mut acked = std::collections::HashSet::new();
            for ev in sim.trace().events() {
                match *ev {
                    TraceEvent::Ack { slot, .. } => {
                        acked.insert(slot);
                    }
                    TraceEvent::Deliver { from, .. } => {
                        assert!(
                            !acked.contains(&from),
                            "seed {seed}: delivery from {from} after its ack"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn custom_ids_rejected_when_duplicated() {
        let build =
            || SimBuilder::new(Topology::clique(2), |_| Chatter).ids(vec![NodeId(1), NodeId(1)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(build));
        assert!(result.is_err());
    }

    #[test]
    fn mid_broadcast_crash_fires_even_with_dead_receivers() {
        // clique(3): slot 1 is dead at t=0 and slot 0's first
        // broadcast is watched with delivered=2. One of the two
        // allowed delivery slots falls on the dead receiver; the
        // planned sender crash must still fire (matching the threaded
        // ether, which crashes the sender up front), with exactly one
        // real delivery and no ack.
        let mut sim = SimBuilder::new(Topology::clique(3), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![
            CrashSpec::AtTime {
                slot: Slot(1),
                time: Time::ZERO,
            },
            CrashSpec::MidBroadcast {
                slot: Slot(0),
                nth_broadcast: 0,
                delivered: 2,
            },
        ]))
        .build();
        let report = sim.run();
        assert!(sim.is_crashed(Slot(0)), "planned sender crash skipped");
        assert_eq!(report.metrics.crashes, 1, "time-zero crash is uncounted");
        assert_eq!(report.metrics.deliveries, 1);
        assert_eq!(sim.process(Slot(2)).received, 1);
        assert_eq!(report.metrics.acks, 0, "interrupted broadcast acked");
    }

    /// A run configuration whose observables we compare across shard
    /// counts: trace bytes, decisions, and the semantic counters.
    fn observables(report: &RunReport, sim: &Sim<Flood>) -> impl PartialEq + std::fmt::Debug {
        (
            report.outcome,
            report.end_time,
            report.decisions.clone(),
            report.metrics.broadcasts,
            report.metrics.deliveries,
            report.metrics.acks,
            report.metrics.crashes,
            report.metrics.events,
            report.metrics.queue_pushes,
            report.metrics.queue_cancellations,
            sim.trace().clone(),
        )
    }

    /// The sharded-engine contract: for every shard count and both
    /// queue cores, the trace and report are byte-identical to serial.
    #[test]
    fn sharded_runs_are_byte_identical_to_serial() {
        for core in QueueCoreKind::all() {
            for topo in [
                Topology::line(9),
                Topology::clique(6),
                Topology::random_connected(14, 0.2, 3),
            ] {
                let run = |shards: usize| {
                    let mut sim = SimBuilder::new(topo.clone(), |s| Flood {
                        initiator: s.0 == 0,
                        relayed: false,
                    })
                    .scheduler(RandomScheduler::new(5, 11))
                    .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
                        slot: Slot(topo.len() - 1),
                        time: Time(2),
                    }]))
                    .queue_core(core)
                    .shards(shards)
                    .trace(true)
                    .build();
                    let report = sim.run();
                    (observables(&report, &sim), sim.shard_count())
                };
                let (serial, s1) = run(1);
                assert_eq!(s1, 1);
                for shards in [2usize, 3, 7] {
                    let (sharded, actual) = run(shards);
                    assert_eq!(
                        serial, sharded,
                        "{core} core, {shards} shards ({actual} effective) diverged from serial"
                    );
                }
            }
        }
    }

    /// Mid-broadcast crashes reach across shards: the countdown fires
    /// on a delivery processed by one shard, crashes the sender on
    /// another, and the remaining events — including any still in a
    /// mailbox — are cancelled. Counters must match serial exactly.
    #[test]
    fn sharded_mid_broadcast_crash_matches_serial() {
        let run = |shards: usize| {
            let mut sim = SimBuilder::new(Topology::clique(6), |s| Counter {
                received: 0,
                emit: s.0 == 0,
            })
            .scheduler(SynchronousScheduler::new(1))
            .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
                slot: Slot(0),
                nth_broadcast: 0,
                delivered: 2,
            }]))
            .shards(shards)
            .trace(true)
            .build();
            let report = sim.run();
            (
                report.metrics.deliveries,
                report.metrics.acks,
                report.metrics.crashes,
                report.metrics.queue_cancellations,
                sim.trace().clone(),
            )
        };
        let serial = run(1);
        assert_eq!(serial.0, 2, "exactly the allowed prefix");
        for shards in [2usize, 3, 6] {
            assert_eq!(serial, run(shards), "{shards} shards");
        }
    }

    /// `run_until` pause/resume crosses window boundaries without
    /// losing mailbox contents or disturbing the merged order.
    #[test]
    fn sharded_run_until_matches_serial() {
        let run = |shards: usize| {
            let mut sim = flood_sim(Topology::line(8));
            let mut sim2 = SimBuilder::new(Topology::line(8), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(SynchronousScheduler::new(1))
            .shards(shards)
            .build();
            sim.run_until(Time(3));
            sim2.run_until(Time(3));
            assert_eq!(sim.now(), sim2.now());
            assert_eq!(sim.decisions(), sim2.decisions(), "{shards} shards paused");
            let (a, b) = (sim.run(), sim2.run());
            assert_eq!(a.decisions, b.decisions, "{shards} shards resumed");
            assert_eq!(a.metrics.events, b.metrics.events);
        };
        for shards in [2usize, 4] {
            run(shards);
        }
    }

    /// Sharded runs populate the coordinator counters; serial runs
    /// leave them zero.
    #[test]
    fn shard_counters_surface_in_metrics() {
        // Shard counts pinned explicitly: this test's "serial" leg
        // must stay serial even under an `AMACL_SHARDS` env default.
        let run = |shards: usize| {
            let mut sim = SimBuilder::new(Topology::ring(8), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(SynchronousScheduler::new(1))
            .shards(shards)
            .build();
            sim.run().metrics
        };
        let serial = run(1);
        assert_eq!(serial.cross_shard_deliveries, 0);
        assert_eq!(serial.shard_window_advances, 0);
        assert_eq!(serial.shard_mailbox_flushes, 0);
        let sharded = run(4);
        assert!(sharded.cross_shard_deliveries > 0, "{sharded:?}");
        assert!(sharded.shard_window_advances > 0, "{sharded:?}");
        assert!(sharded.shard_mailbox_flushes > 0, "{sharded:?}");
        assert_eq!(sharded.per_shard_events.len(), 4);
        assert_eq!(sharded.per_shard_events.iter().sum::<u64>(), sharded.events);
        assert!(sharded.shard_skew() >= 1.0);
    }

    /// Shard counts beyond the node count clamp instead of creating
    /// empty shards.
    #[test]
    fn shard_count_clamps_to_node_count() {
        let mut sim = SimBuilder::new(Topology::clique(3), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .shards(64)
        .build();
        assert_eq!(sim.shard_count(), 3);
        assert!(sim.run().all_decided());
    }

    /// A scheduler declaring zero lookahead is rejected at build time
    /// with a clear error — the conservative engine must not deadlock
    /// on it. Serial builds still accept it.
    #[test]
    fn zero_lookahead_scheduler_is_rejected_when_sharded() {
        struct ZeroLookahead;
        impl Scheduler for ZeroLookahead {
            fn f_ack(&self) -> u64 {
                4
            }
            fn min_delay(&self) -> u64 {
                0
            }
            fn plan(&mut self, _now: Time, _sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
                BroadcastPlan {
                    receive_delays: vec![1; neighbors.len()],
                    ack_delay: 1,
                }
            }
        }
        use super::super::sched::BroadcastPlan;
        let build = |shards: usize| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                SimBuilder::new(Topology::clique(4), |s| Flood {
                    initiator: s.0 == 0,
                    relayed: false,
                })
                .scheduler(ZeroLookahead)
                .shards(shards)
                .build()
            }))
        };
        // Serial: zero lookahead is irrelevant, the build succeeds.
        assert!(build(1).is_ok());
        // Sharded: rejected with a message naming the problem.
        let err = match build(2) {
            Ok(_) => panic!("zero-lookahead sharded build must be rejected"),
            Err(e) => e,
        };
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("zero lookahead"),
            "panic message should name the problem: {msg}"
        );
    }

    /// A scheduler whose plans undercut its declared lookahead is
    /// caught by the per-broadcast check instead of corrupting the
    /// window protocol.
    #[test]
    #[should_panic(expected = "violated its declared lookahead")]
    fn lookahead_violations_are_caught() {
        struct Overpromise;
        impl Scheduler for Overpromise {
            fn f_ack(&self) -> u64 {
                8
            }
            fn min_delay(&self) -> u64 {
                4 // promises 4, plans 1
            }
            fn plan(&mut self, _now: Time, _sender: Slot, neighbors: &[Slot]) -> BroadcastPlan {
                BroadcastPlan {
                    receive_delays: vec![1; neighbors.len()],
                    ack_delay: 1,
                }
            }
        }
        use super::super::sched::BroadcastPlan;
        let mut sim = SimBuilder::new(Topology::clique(4), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(Overpromise)
        .shards(2)
        .build();
        sim.run();
    }

    /// The max-delay adversary declares `F_ack` lookahead, so the
    /// coordinator batches a whole round per window.
    #[test]
    fn wide_lookahead_batches_windows() {
        let mut sim = SimBuilder::new(Topology::clique(5), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(crate::sim::sched::stall::MaxDelayScheduler::new(8))
        .shards(2)
        .build();
        assert_eq!(sim.lookahead(), 8);
        let report = sim.run();
        assert!(report.all_decided());
        assert!(
            report.metrics.shard_window_advances <= report.metrics.events,
            "{:?}",
            report.metrics
        );
    }

    /// The ledger's shard view summarizes per-shard crash state.
    #[test]
    fn shard_ledger_view_reports_crashes() {
        let mut sim = SimBuilder::new(Topology::clique(6), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
            slot: Slot(5),
            time: Time::ZERO,
        }]))
        .shards(2)
        .build();
        sim.run();
        let first = sim.shard_ledger_view(0);
        let last = sim.shard_ledger_view(1);
        assert_eq!(first.crashed, 0);
        assert_eq!(last.crashed, 1, "slot 5 lives in the last shard");
        assert_eq!(first.slots + last.slots, 6);
        assert_eq!(last.alive(), last.slots - 1);
    }

    #[test]
    fn sender_crash_cancels_pending_events() {
        // Node 0 broadcasts at t=0 (deliveries at t=1 under the
        // synchronous scheduler) but crashes at t=0 via an AtTime
        // spec processed after its start callback... instead use a
        // mid-broadcast watch with 1 of 4 deliveries: the remaining 3
        // deliveries and the ack are cancelled on the queue, never
        // popped.
        let mut sim = SimBuilder::new(Topology::clique(5), |s| Counter {
            received: 0,
            emit: s.0 == 0,
        })
        .scheduler(SynchronousScheduler::new(1))
        .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
            slot: Slot(0),
            nth_broadcast: 0,
            delivered: 1,
        }]))
        .build();
        let report = sim.run();
        assert_eq!(report.metrics.crashes, 1);
        // 1 delivery fired; 3 deliveries + 1 ack cancelled.
        assert_eq!(report.metrics.deliveries, 1);
        assert_eq!(report.metrics.acks, 0);
    }

    /// The parallel stepper's contract: for every shard count, thread
    /// count, and queue core, trace and report stay byte-identical to
    /// serial. The time-zero crash event forces at least one merged
    /// fallback window, so both paths are exercised in one run.
    #[test]
    fn threaded_runs_are_byte_identical_to_serial() {
        for core in QueueCoreKind::all() {
            for topo in [
                Topology::line(9),
                Topology::clique(6),
                Topology::random_connected(14, 0.2, 3),
            ] {
                let run = |shards: usize, threads: usize| {
                    let mut sim = SimBuilder::new(topo.clone(), |s| Flood {
                        initiator: s.0 == 0,
                        relayed: false,
                    })
                    .scheduler(RandomScheduler::new(5, 11))
                    .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
                        slot: Slot(topo.len() - 1),
                        time: Time(2),
                    }]))
                    .queue_core(core)
                    .shards(shards)
                    .threads(threads)
                    .trace(true)
                    .build();
                    let report = sim.run();
                    (observables(&report, &sim), sim.thread_count())
                };
                let (serial, _) = run(1, 1);
                for shards in [2usize, 3, 7] {
                    for threads in [2usize, 4] {
                        let (threaded, actual) = run(shards, threads);
                        assert_eq!(
                            serial, threaded,
                            "{core} core, {shards} shards x {threads} threads \
                             ({actual} effective) diverged from serial"
                        );
                    }
                }
            }
        }
    }

    /// Mid-broadcast crash machinery arms the ledger, so
    /// `parallel_step_safe` steers those windows to the merged
    /// fallback — and the counters still match serial exactly.
    #[test]
    fn threaded_mid_broadcast_crash_matches_serial() {
        let run = |shards: usize, threads: usize| {
            let mut sim = SimBuilder::new(Topology::clique(6), |s| Counter {
                received: 0,
                emit: s.0 == 0,
            })
            .scheduler(SynchronousScheduler::new(1))
            .crashes(CrashPlan::new(vec![CrashSpec::MidBroadcast {
                slot: Slot(0),
                nth_broadcast: 0,
                delivered: 2,
            }]))
            .shards(shards)
            .threads(threads)
            .trace(true)
            .build();
            let report = sim.run();
            (
                report.metrics.deliveries,
                report.metrics.acks,
                report.metrics.crashes,
                report.metrics.queue_cancellations,
                sim.trace().clone(),
            )
        };
        let serial = run(1, 1);
        assert_eq!(serial.0, 2, "exactly the allowed prefix");
        for shards in [2usize, 3, 6] {
            assert_eq!(serial, run(shards, 4), "{shards} shards, 4 threads");
        }
    }

    /// `run_until` pause/resume under the parallel stepper: the time
    /// horizon forces merged fallbacks near the limit, and the resumed
    /// run still matches the serial engine step for step.
    #[test]
    fn threaded_run_until_matches_serial() {
        for threads in [2usize, 4] {
            let mut sim = flood_sim(Topology::line(8));
            let mut sim2 = SimBuilder::new(Topology::line(8), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(SynchronousScheduler::new(1))
            .shards(4)
            .threads(threads)
            .build();
            sim.run_until(Time(3));
            sim2.run_until(Time(3));
            assert_eq!(sim.now(), sim2.now());
            assert_eq!(
                sim.decisions(),
                sim2.decisions(),
                "{threads} threads paused"
            );
            let (a, b) = (sim.run(), sim2.run());
            assert_eq!(a.decisions, b.decisions, "{threads} threads resumed");
            assert_eq!(a.metrics.events, b.metrics.events);
        }
    }

    /// The deterministic metrics of a pooled run equal the
    /// single-threaded sharded run's field for field, and the
    /// wall-clock worker timings (excluded from that equality) are
    /// populated with one entry per shard. The forced pool size
    /// exercises real parked workers regardless of host parallelism.
    #[test]
    fn threaded_metrics_match_sharded_and_time_the_workers() {
        let run = |threads: usize| {
            let mut builder = SimBuilder::new(Topology::ring(8), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(SynchronousScheduler::new(1))
            .shards(4)
            .threads(threads);
            if threads > 1 {
                builder = builder.debug_force_pool_workers(2);
            }
            let mut sim = builder.build();
            sim.run().metrics
        };
        let sharded = run(1);
        let threaded = run(4);
        assert_eq!(sharded, threaded, "deterministic counters diverged");
        assert!(sharded.shard_busy_ns.is_empty(), "timers without threads");
        assert_eq!(sharded.worker_spawns, 0, "workers without threads");
        assert_eq!(threaded.shard_busy_ns.len(), 4);
        assert_eq!(threaded.shard_barrier_wait_ns.len(), 4);
        assert!(threaded.worker_spawns > 0, "pool never spawned");
        assert!(threaded.superstep_count > 0, "pool never woke");
        let pct = threaded.barrier_pct();
        assert!((0.0..=100.0).contains(&pct), "barrier_pct {pct}");
    }

    /// Thread counts beyond the shard count clamp: workers own whole
    /// shards, so extra threads would have nothing to hold.
    #[test]
    fn thread_count_clamps_to_shard_count() {
        let mut sim = SimBuilder::new(Topology::clique(6), |s| Flood {
            initiator: s.0 == 0,
            relayed: false,
        })
        .scheduler(SynchronousScheduler::new(1))
        .shards(2)
        .threads(16)
        .build();
        assert_eq!(sim.thread_count(), 2);
        assert!(sim.run().all_decided());
    }

    /// Unreliable-overlay sampling draws from the engine RNG in
    /// commit order, so overlay runs stay byte-identical across
    /// thread counts (including the RNG-dependent trace).
    #[test]
    fn threaded_unreliable_overlay_matches_serial() {
        let base = Topology::line(6);
        let overlay = UnreliableOverlay::new(&base, &[(0, 2), (0, 3), (1, 4)]);
        let run = |shards: usize, threads: usize| {
            let mut sim = SimBuilder::new(base.clone(), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(SynchronousScheduler::new(3))
            .unreliable(overlay.clone(), 0.5)
            .shards(shards)
            .threads(threads)
            .stop_when_all_decided(false)
            .trace(true)
            .build();
            let report = sim.run();
            (
                observables(&report, &sim),
                report.metrics.unreliable_deliveries,
            )
        };
        let (serial, extra) = run(1, 1);
        assert!(extra > 0, "overlay never fired; the test is vacuous");
        for threads in [2usize, 3] {
            assert_eq!(serial, run(3, threads).0, "{threads} threads");
        }
    }

    /// An event limit that lands mid-window trips the commit gate, so
    /// the merged fallback stops at exactly the serial event count.
    #[test]
    fn threaded_event_limit_matches_serial() {
        let run = |shards: usize, threads: usize| {
            let mut sim = SimBuilder::new(Topology::clique(6), |s| Flood {
                initiator: s.0 == 0,
                relayed: false,
            })
            .scheduler(SynchronousScheduler::new(1))
            .max_events(7)
            .shards(shards)
            .threads(threads)
            .stop_when_all_decided(false)
            .trace(true)
            .build();
            let report = sim.run();
            (report.outcome, report.metrics.events, sim.trace().clone())
        };
        let serial = run(1, 1);
        assert_eq!(serial.0, RunOutcome::EventLimit);
        assert_eq!(serial, run(3, 4), "event limit diverged under threads");
    }

    /// A dense pooled sim: clique(64) `Chatter` keeps every window
    /// above [`SERIAL_WINDOW_MIN_EVENTS`], so parallel windows (and
    /// the pool protocol) actually run even with the serial gate on.
    fn dense_pool_sim(batch: WindowBatch, max_time: u64) -> Sim<Chatter> {
        SimBuilder::new(Topology::clique(64), |_| Chatter)
            .scheduler(SynchronousScheduler::new(1))
            .max_time(Time(max_time))
            .shards(4)
            .threads(4)
            .window_batch(batch)
            .debug_force_pool_workers(2)
            .build()
    }

    /// The tentpole invariant: one `run` call spawns the pool exactly
    /// once (O(1) in the window count), and supersteps batch several
    /// windows per wakeup — strictly fewer wakeups than windows.
    #[test]
    fn pool_spawns_once_per_run_and_batches_windows() {
        let mut sim = dense_pool_sim(WindowBatch::Fixed(4), 10);
        let report = sim.run();
        assert_eq!(report.outcome, RunOutcome::MaxTime);
        let m = &report.metrics;
        // 4 shards on 2 forced workers = 2 groups, spawned once.
        assert_eq!(m.worker_spawns, 2, "thread spawns must be O(1) per run");
        // 10 windows (the start broadcasts land at t = 1, so windows
        // open at t = 1..=10) at batch 4 → 3 supersteps.
        assert_eq!(m.shard_window_advances, 10);
        assert_eq!(m.superstep_count, 3, "batching collapsed wakeups");
        assert_eq!(m.worker_wakeups, m.superstep_count * 2);
        assert_eq!(m.serial_window_shortcuts, 0, "every window is dense");
        // And the pooled execution matches the merged sharded one.
        let mut inline = SimBuilder::new(Topology::clique(64), |_| Chatter)
            .scheduler(SynchronousScheduler::new(1))
            .max_time(Time(10))
            .shards(4)
            .build();
        assert_eq!(inline.run().metrics, report.metrics, "pool diverged");
    }

    /// Window batching is pure wake-policy: every batch size (and
    /// auto) yields byte-identical traces and deterministic metrics,
    /// with the same window sequence; only the wakeup accounting
    /// moves.
    #[test]
    fn window_batch_sizes_are_observably_identical() {
        let run = |batch: WindowBatch| {
            let mut sim = SimBuilder::new(Topology::clique(64), |_| Chatter)
                .scheduler(SynchronousScheduler::new(1))
                .max_time(Time(8))
                .shards(4)
                .threads(4)
                .window_batch(batch)
                .debug_force_pool_workers(2)
                .trace(true)
                .build();
            let report = sim.run();
            (report.metrics, sim.trace().clone())
        };
        let baseline = run(WindowBatch::Fixed(1));
        // Batch 1 parks after every window: one superstep per window.
        assert_eq!(
            baseline.0.superstep_count, baseline.0.shard_window_advances,
            "batch 1 must wake the pool once per window"
        );
        for batch in [
            WindowBatch::Fixed(2),
            WindowBatch::Fixed(8),
            WindowBatch::Auto,
        ] {
            let other = run(batch);
            assert_eq!(baseline.0, other.0, "{batch:?} diverged");
            assert_eq!(baseline.1, other.1, "{batch:?} trace diverged");
            assert!(
                other.0.superstep_count < other.0.shard_window_advances,
                "{batch:?} never batched"
            );
        }
    }

    /// A crash event landing mid-superstep fails the commit gate: the
    /// window aborts to the merged path verbatim, and the whole run —
    /// trace included — stays byte-identical to serial.
    #[test]
    fn superstep_gate_failure_mid_batch_aborts_to_merged() {
        #[derive(Clone, Copy, PartialEq)]
        enum Mode {
            Serial,
            Inline,
            Pooled,
        }
        let run = |mode: Mode| {
            let mut builder = SimBuilder::new(Topology::clique(16), |_| Chatter)
                .scheduler(SynchronousScheduler::new(1))
                .crashes(CrashPlan::new(vec![CrashSpec::AtTime {
                    slot: Slot(3),
                    time: Time(5),
                }]))
                .max_time(Time(12))
                .trace(true);
            if mode != Mode::Serial {
                builder = builder.shards(4);
            }
            if mode == Mode::Pooled {
                builder = builder
                    .threads(4)
                    .window_batch(WindowBatch::Fixed(8))
                    .debug_force_pool_workers(2);
            }
            let mut sim = builder.build();
            let report = sim.run();
            (report.outcome, report.metrics, sim.trace().clone())
        };
        let serial = run(Mode::Serial);
        let inline = run(Mode::Inline);
        let pooled = run(Mode::Pooled);
        // The trace is the byte-identity artifact across every shard
        // and thread count; metrics carry shard-topology counters, so
        // they are compared against the merged run at the same S.
        assert_eq!(serial.0, pooled.0);
        assert_eq!(serial.2, pooled.2, "crash-window trace diverged");
        assert_eq!(inline.0, pooled.0);
        assert_eq!(inline.1, pooled.1, "crash-window abort diverged");
        assert_eq!(pooled.1.crashes, 1, "the planned crash never fired");
        assert!(
            pooled.1.superstep_count > 0,
            "the crash test never exercised the pool"
        );
    }

    /// Every early stop condition — a `run_until` horizon and an
    /// event limit — shuts the pool down cleanly (parked or
    /// mid-superstep), and the next `run*` call spawns a fresh pool
    /// that picks up exactly where the last one stopped.
    #[test]
    fn pool_shuts_down_on_early_stop() {
        let mut sim = dense_pool_sim(WindowBatch::Fixed(4), 20);
        assert_eq!(sim.run_until(Time(5)), RunOutcome::MaxTime);
        let spawns_after_first = sim.metrics().worker_spawns;
        assert_eq!(spawns_after_first, 2, "first run_until spawns one pool");
        assert_eq!(sim.run_until(Time(9)), RunOutcome::MaxTime);
        assert_eq!(
            sim.metrics().worker_spawns,
            spawns_after_first + 2,
            "resume spawns a fresh pool once"
        );
        // An event limit mid-superstep: the gate aborts the window,
        // the merged path stops at the exact count, the pool shuts
        // down on the way out.
        let mut inline = SimBuilder::new(Topology::clique(64), |_| Chatter)
            .scheduler(SynchronousScheduler::new(1))
            .max_time(Time(20))
            .shards(4)
            .max_events(10_000)
            .stop_when_all_decided(false)
            .build();
        let want = inline.run();
        assert_eq!(want.outcome, RunOutcome::EventLimit);
        let mut capped = SimBuilder::new(Topology::clique(64), |_| Chatter)
            .scheduler(SynchronousScheduler::new(1))
            .max_time(Time(20))
            .shards(4)
            .threads(4)
            .window_batch(WindowBatch::Fixed(4))
            .debug_force_pool_workers(2)
            .max_events(10_000)
            .stop_when_all_decided(false)
            .build();
        let got = capped.run();
        assert_eq!(got.outcome, RunOutcome::EventLimit);
        assert_eq!(got.metrics, want.metrics, "event-limit stop diverged");
    }
}
